"""Gradient statistics study: compressibility and SID fits (Figures 2, 7, 8 style).

Trains the ResNet20-CIFAR10 proxy with Top-k compression, captures the
gradient vector at an early and a late iteration, and reports:

* the power-law decay exponent of the sorted magnitudes (Definition 1),
* the best-k sparsification error at a few sparsity levels,
* the goodness of fit of the three SIDs, with and without error feedback.

Run with:  python examples/gradient_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.harness import format_table, gradient_fit_study
from repro.stats import sparsification_error_curve


def main(*, capture_at: tuple[int, ...] = (4, 30), num_workers: int = 4) -> None:
    rows_fit = []
    rows_comp = []
    for use_ec in (False, True):
        study = gradient_fit_study(
            "resnet20-cifar10",
            use_error_feedback=use_ec,
            capture_iterations=capture_at,
            iterations=max(capture_at) + 5,
            num_workers=num_workers,
            seed=0,
        )
        for iteration in sorted(study.snapshots):
            report = study.fits[iteration]
            for sid, quality in (
                ("exponential", report.exponential),
                ("gamma", report.gamma),
                ("gpareto", report.gpareto),
            ):
                rows_fit.append(
                    {
                        "error_feedback": "on" if use_ec else "off",
                        "iteration": iteration,
                        "sid": sid,
                        "ks_distance": quality.ks_statistic,
                        "tail_q_rel_err": quality.tail_quantile_rel_error,
                    }
                )
            comp = study.compressibility[iteration]
            gradient = study.snapshots[iteration]
            ks = np.array([0.001, 0.01, 0.1]) * gradient.size
            errors = sparsification_error_curve(gradient, ks.astype(int))
            rows_comp.append(
                {
                    "error_feedback": "on" if use_ec else "off",
                    "iteration": iteration,
                    "decay_exponent_p": comp.decay_exponent,
                    "compressible": comp.is_compressible,
                    "sigma_k@0.1%": errors[0] / np.linalg.norm(gradient),
                    "sigma_k@1%": errors[1] / np.linalg.norm(gradient),
                    "sigma_k@10%": errors[2] / np.linalg.norm(gradient),
                }
            )

    print(format_table(rows_comp, title="Gradient compressibility (Figure 7 style)"))
    print()
    print(format_table(rows_fit, title="SID goodness of fit (Figures 2 and 8 style)"))
    print(
        "\nThe decay exponent stays above 0.5 (gradients are compressible) and the SIDs track"
        "\nthe empirical distribution; fitting is slightly looser once error feedback folds the"
        "\nprevious residual back into the gradient, as the paper observes in Figure 8."
    )


if __name__ == "__main__":
    main()
