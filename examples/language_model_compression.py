"""Distributed LSTM language-model training with gradient compression (PTB proxy).

Reproduces the shape of the paper's headline experiment (Figure 3a-c): on a
communication-bound RNN benchmark, threshold-based compression at ratio 0.001
speeds training up by an order of magnitude over the dense baseline, while
SIDCo additionally avoids Top-k's compression overhead.

Run with:  python examples/language_model_compression.py
"""

from __future__ import annotations

from repro.harness import compare_compressors, extract_traces, format_series, format_speedup_summary


def main(*, iterations: int = 60, num_workers: int = 4) -> None:
    compressors = ("topk", "dgc", "sidco-e")
    ratio = 0.001
    print(f"Training the LSTM-PTB proxy benchmark with {num_workers} workers (this takes ~10 seconds)...\n")
    comparison = compare_compressors(
        "lstm-ptb",
        compressors,
        (ratio,),
        num_workers=num_workers,
        iterations=iterations,
        seed=0,
    )

    print(f"Baseline (no compression): total simulated time {comparison.baseline.metrics.total_time:.1f} s, "
          f"final loss {comparison.baseline.metrics.final_loss:.3f}\n")
    print(format_speedup_summary(comparison.rows))

    print("\nLoss vs simulated wall-clock time:")
    baseline_trace = extract_traces(comparison.baseline)
    print(format_series("  baseline", baseline_trace.wall_times, baseline_trace.losses, max_points=8))
    for name in compressors:
        trace = extract_traces(comparison.runs[(name, ratio)])
        print(format_series(f"  {name}", trace.wall_times, trace.losses, max_points=8))

    print("\nRunning-average achieved compression ratio (target 0.001):")
    for name in compressors:
        trace = extract_traces(comparison.runs[(name, ratio)], window=10)
        xs = trace.iterations[: len(trace.running_ratio)]
        print(format_series(f"  {name}", xs, trace.running_ratio, max_points=8))


if __name__ == "__main__":
    main()
