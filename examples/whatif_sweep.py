"""What-if sweeps and auto-tuning: pick the knobs for a job declaratively.

Two demonstrations of the sweep engine:

1. **What-if sweep** — a VGG16-scale workload (Table 1's largest vision
   model) swept over compressor x ratio x overlap on the ``ethernet-4x8``
   preset, rendered as one table.  This replaces the hand-written
   script-per-question workflow: the question *is* the ``SweepSpec``.
2. **Auto-tune** — ``autotune`` searches the full default grid (compressor,
   ratio, bucket bytes, overlap, collective algorithm, dedup) plus local
   ratio/bucket refinement, and reports the best config with its provenance:
   every evaluated point is in the trace.

Run with:  PYTHONPATH=src python examples/whatif_sweep.py
"""

from __future__ import annotations

from repro.harness import (
    SweepCache,
    SweepSpec,
    WorkloadSpec,
    autotune,
    format_sweep_table,
    run_sweep,
)

#: VGG16-scale planning workload: ~14M gradient elements, 75% of a dense
#: baseline iteration spent communicating on the Ethernet cluster.
DIMENSION = 14_000_000
COMM_OVERHEAD = 0.75
PROXY_ELEMENTS = 2**15
PRESET = "ethernet-4x8"


def main(*, dimension: int = DIMENSION, proxy_elements: int = PROXY_ELEMENTS) -> None:
    workload = WorkloadSpec(
        name="vgg16-scale",
        dimension=dimension,
        comm_overhead=COMM_OVERHEAD,
        proxy_elements=proxy_elements,
    )
    cache = SweepCache()

    # 1. A declarative what-if question: which compressor/ratio/overlap?
    spec = SweepSpec(
        workloads=(workload,),
        axes={
            "topology": (PRESET,),
            "compressor": ("topk", "dgc", "sidco-e"),
            "ratio": (0.1, 0.01, 0.001),
            "overlap": ("none", "comm+compress"),
        },
    )
    result = run_sweep(spec, cache=cache)
    print(
        format_sweep_table(
            result,
            title=f"what-if sweep: {workload.name} on {PRESET} "
            f"({len(result.records)} points)",
        )
    )

    # 2. Auto-tune over the full default grid with local refinement.
    tuned = autotune(workload, PRESET, cache=cache)
    print()
    print(f"autotune best config ({tuned.queries} points evaluated):")
    defaults_hidden = ("topology", "scheduler_backend", "cross_bucket_pipeline")
    for knob, value in tuned.best_config.items():
        if knob not in defaults_hidden:
            print(f"  {knob:<22} {value}")
    metrics = tuned.best.metrics
    print(f"  -> iteration {metrics['iteration_seconds'] * 1e3:.2f} ms, "
          f"{metrics['speedup_vs_dense']:.2f}x vs the dense baseline "
          f"({metrics['dense_baseline_seconds'] * 1e3:.2f} ms)")
    stats = cache.stats()
    print(f"  cache: {stats['hits']} hits / {stats['misses']} misses "
          "(rerunning this script's queries warm is near-free)")


if __name__ == "__main__":
    main()
