"""Serialized vs overlapped iteration time across the compressor registry.

Prices one synchronous training iteration of a 25M-parameter model (ResNet-50
class, Table 1's 72% communication overhead) for every sparsifying compressor
in the registry, under the three overlap policies of the event-driven
iteration schedule:

* ``none``          — compute, compression and communication serialise (the
  closed-form sum the paper's conservative model uses),
* ``comm``          — each bucket's all-gather overlaps later buckets'
  compression,
* ``comm+compress`` — compression additionally starts at each bucket's
  gradient-ready point during backprop (DDP/Horovod-style pipelining).

Run with:  PYTHONPATH=src python examples/overlap_timeline.py
"""

from __future__ import annotations

from repro.compressors import available_compressors, create_compressor
from repro.distributed import TimelineModel, compute_time_for_overhead
from repro.distributed.network import CLUSTER_ETHERNET_10G
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline
from repro.harness import format_table

DIMENSION = 25_000_000
SAMPLE = 2_000_000  # gradient actually materialised; traces scale linearly
RATIO = 0.001
NUM_WORKERS = 8
COMM_OVERHEAD = 0.72


def main(*, dimension: int = DIMENSION, sample: int = SAMPLE) -> None:
    compute = compute_time_for_overhead(
        CLUSTER_ETHERNET_10G, NUM_WORKERS, dimension, COMM_OVERHEAD
    )
    timeline = TimelineModel(
        network=CLUSTER_ETHERNET_10G,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=NUM_WORKERS,
        model_dimension=sample,
        dimension_scale=dimension / sample,
    )
    gradient = realistic_gradient(sample, seed=0)
    baseline = timeline.baseline_iteration().total

    rows = []
    names = [n for n in available_compressors() if n != "none" and not n.endswith("-bucketed")]
    for name in sorted(names):
        pipeline = CompressionPipeline(create_compressor(name))
        for _ in range(2):  # settle adaptive stage controllers
            result = pipeline.compress(gradient, RATIO)
        timings = {
            policy: timeline.compressed_iteration([result], overlap=policy)
            for policy in ("none", "comm", "comm+compress")
        }
        rows.append(
            {
                "compressor": name,
                "serialized_s": timings["none"].total,
                "comm_overlap_s": timings["comm"].total,
                "full_overlap_s": timings["comm+compress"].total,
                "saved_pct": 100.0 * timings["comm+compress"].overlap_saving,
                "speedup_vs_dense": baseline / timings["comm+compress"].total,
            }
        )

    print(
        format_table(
            rows,
            columns=[
                "compressor",
                "serialized_s",
                "comm_overlap_s",
                "full_overlap_s",
                "saved_pct",
                "speedup_vs_dense",
            ],
            title=(
                f"one iteration, {dimension:,} params, ratio={RATIO}, "
                f"{NUM_WORKERS} workers on {CLUSTER_ETHERNET_10G.name} "
                f"(dense baseline {baseline:.3f}s)"
            ),
        )
    )
    print(
        "\nReading the table: 'serialized_s' is the old flat sum; overlapping the"
        "\nper-bucket all-gathers ('comm_overlap_s') helps modestly, and also starting"
        "\ncompression at each bucket's gradient-ready point ('full_overlap_s') hides"
        "\nmost of the compression cost behind backprop — which is where the paper's"
        "\nwall-clock speedups come from."
    )


if __name__ == "__main__":
    main()
