"""Quickstart: compress a gradient with SIDCo and compare against the baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import available_compressors, create_compressor
from repro.gradients import realistic_gradient
from repro.harness import format_table
from repro.perfmodel import CPU_XEON, GPU_V100, estimate_latency


def main(*, dimension: int = 1_000_000, settle_steps: int = 12) -> None:
    print("Available compressors:", ", ".join(available_compressors()))

    # A synthetic gradient with the statistics of a real DNN gradient:
    # a dominant near-zero bulk plus a heavy informative tail (Property 1/2).
    gradient = realistic_gradient(dimension, seed=0)
    target_ratio = 0.001
    print(f"\nCompressing a {dimension:,}-element gradient to ratio {target_ratio} (k = {int(target_ratio * dimension)})\n")

    rows = []
    for name in ("topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"):
        compressor = create_compressor(name)
        # Adaptive compressors (SIDCo) tune their stage count over a few calls,
        # exactly as they would over training iterations.
        for step in range(settle_steps):
            result = compressor.compress(realistic_gradient(dimension, seed=step + 1), target_ratio)
        result = compressor.compress(gradient, target_ratio)
        rows.append(
            {
                "compressor": name,
                "kept_elements": result.achieved_k,
                "khat_over_k": result.estimation_quality,
                "volume_reduction": result.sparse.volume_reduction(),
                "est_gpu_ms": estimate_latency(result, GPU_V100) * 1e3,
                "est_cpu_ms": estimate_latency(result, CPU_XEON) * 1e3,
            }
        )
    print(format_table(rows, title="Compression at a glance"))

    # Reconstruction error of the SIDCo selection vs exact Top-k.
    sidco = create_compressor("sidco-e")
    for step in range(settle_steps):
        sidco.compress(realistic_gradient(dimension, seed=step + 50), target_ratio)
    sidco_result = sidco.compress(gradient, target_ratio)
    topk_result = create_compressor("topk").compress(gradient, target_ratio)
    sidco_err = np.linalg.norm(sidco_result.sparse.to_dense() - gradient)
    topk_err = np.linalg.norm(topk_result.sparse.to_dense() - gradient)
    print(
        f"\nSparsification error  ||g - C(g)||_2 :  SIDCo-E {sidco_err:.4e}   exact Top-k {topk_err:.4e}"
        f"   (ratio {sidco_err / topk_err:.3f})"
    )


if __name__ == "__main__":
    main()
