"""Compression micro-benchmark report (Figure 1 / 14-17 style).

Sweeps the paper's compressor line-up over model-sized gradients on the
GPU-like and CPU-like device models and prints speed-up-over-Top-k, latency,
and threshold-estimation quality tables.

Run with:  python examples/microbenchmark_report.py
"""

from __future__ import annotations

from repro.gradients import MODEL_DIMENSIONS
from repro.harness import format_table, run_microbenchmark


def main(
    *, models: tuple[str, ...] = ("vgg16", "resnet50", "lstm-ptb"), sample_size: int = 300_000
) -> None:
    for model in models:
        dimension = MODEL_DIMENSIONS[model]
        rows = run_microbenchmark(dimension, ratios=(0.1, 0.01, 0.001), sample_size=sample_size, seed=0)
        print(
            format_table(
                rows,
                columns=["compressor", "device", "ratio", "latency_seconds", "speedup_over_topk", "estimation_quality"],
                title=f"\n=== {model} ({dimension:,} parameters) ===",
            )
        )
    print(
        "\nReading the tables: on the GPU device every scheme beats exact Top-k and SIDCo-E"
        "\nis the fastest; on the CPU device DGC's per-element random sampling makes it slower"
        "\nthan Top-k while the threshold estimators keep their advantage (Figure 1 of the paper)."
    )


if __name__ == "__main__":
    main()
