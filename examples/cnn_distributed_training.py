"""Distributed CNN training with compression, with and without error feedback.

Trains the VGG16-CIFAR10 proxy benchmark (60% communication overhead) with
SIDCo at an aggressive ratio, comparing error feedback on/off and showing the
per-iteration time breakdown (compute / compression / communication) that
drives the end-to-end speed-ups.

Run with:  python examples/cnn_distributed_training.py
"""

from __future__ import annotations

from repro.distributed import DistributedTrainer, TrainerConfig
from repro.harness import format_table, get_benchmark


def train(use_error_feedback: bool, *, iterations: int = 60, num_workers: int = 4):
    config = get_benchmark("vgg16-cifar10")
    dataset = config.build_proxy_dataset(seed=0)
    model = config.build_proxy_model(seed=1)
    trainer_config = TrainerConfig(
        num_workers=num_workers,
        batch_size=config.proxy_batch_size,
        iterations=iterations,
        ratio=0.001,
        lr=config.proxy_lr,
        use_error_feedback=use_error_feedback,
        warmup_iterations=min(5, iterations // 2),
        seed=0,
        compute_seconds=config.compute_seconds(num_workers=num_workers),
        dimension_scale=config.dimension_scale(),
    )
    trainer = DistributedTrainer(model, dataset, "sidco-e", trainer_config)
    return trainer.run(evaluate_on=dataset)


def main(*, iterations: int = 60, num_workers: int = 4) -> None:
    print(f"Training the VGG16-CIFAR10 proxy with SIDCo-E at ratio 0.001 ({num_workers} workers)...\n")
    rows = []
    for use_ec in (True, False):
        result = train(use_ec, iterations=iterations, num_workers=num_workers)
        breakdown = result.metrics.component_breakdown()
        rows.append(
            {
                "error_feedback": "on" if use_ec else "off",
                "final_loss": result.metrics.final_loss,
                "train_accuracy": result.final_evaluation["accuracy"],
                "achieved_ratio": result.metrics.estimation_quality()[0] * 0.001,
                "sim_time_s": result.metrics.total_time,
                "compute_s": breakdown["compute"],
                "compression_s": breakdown["compression"],
                "communication_s": breakdown["communication"],
            }
        )
    print(format_table(rows, title="SIDCo-E on VGG16-CIFAR10 proxy: error feedback ablation"))
    print(
        "\nError feedback recovers the information dropped by aggressive sparsification,"
        "\nwhich is why the paper enables it for every compressor."
    )


if __name__ == "__main__":
    main()
