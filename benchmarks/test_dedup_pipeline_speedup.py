"""Sparse-aware pipelined hierarchical collectives: dedup + chunk overlap.

PR 3's hierarchical all-gather serialises its intra/inter phases and ships
every worker's sparse payload across the slow inter-node link verbatim.  This
benchmark demonstrates the two refinements on top of it:

* **per-node dedup** — the node leader's reduce collapses overlapping top-k
  indices before they cross the inter-node link, shrinking the node aggregate
  from ``D`` payloads to the expected index union
  (:class:`~repro.distributed.SparseAggregateModel`, uniform random-k closed
  form), and
* **chunk pipelining** — ``pipeline_chunks > 1`` overlaps the intra-node
  gather/broadcast with the inter-node exchange chunk-by-chunk, making the
  cost latency + max-dominated instead of a pure phase sum.

Acceptance bar: >= 1.3x iteration-time speedup vs the PR-3 serial
hierarchical pricing on the ``ethernet-4x8`` preset at the paper's densest
compression ratio (0.1), with the serial knobs-off configuration still
reproducing the PR-3 numbers bit-for-bit.  A ``torus-2d`` scenario (4x4
Ethernet torus priced through the same two-level decomposition) diversifies
the topology mix.  Results land in ``BENCH_dedup.json`` at the repo root.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_dedup_pipeline_speedup.py -v``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compressors import create_compressor
from repro.distributed import (
    CollectiveModel,
    SparseAggregateModel,
    TimelineModel,
    compute_time_for_overhead,
    get_topology,
)
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline
from repro.tensor.sparse import FLOAT_BYTES

#: The acceptance-scale model (matches the overlap/topology benchmarks).
DIMENSION = 25_000_000
SPARSE_ELEMENT_BYTES = 2 * FLOAT_BYTES
#: Paper compression ratios the dedup/pipelining knobs are evaluated at.
RATIOS = (0.1, 0.05, 0.01)
#: The ratio the >= 1.3x acceptance bar is pinned at (densest paper ratio:
#: uniform random-k dedup is overlap-driven, so it bites hardest here).
ACCEPTANCE_RATIO = 0.1
COMM_OVERHEAD = 0.72
CHUNK_SWEEP = (1, 2, 4, 8, 16)
PIPELINE_CHUNKS = 8

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_dedup.json"

#: PR-3 golden pin: serial no-dedup hierarchical all-gather of a 2 MB payload
#: on ethernet-4x8 (captured at commit 534f47a); the knobs-off model must
#: reproduce it bit-for-bit.
PR3_SERIAL_TOTAL_2MB = 0.12003761904761905

SCENARIOS = ("ethernet-4x8", "torus-2d")


def _serial_model(preset: str) -> CollectiveModel:
    return CollectiveModel(get_topology(preset), allgather_algorithm="hierarchical")


def _tuned_model(preset: str, chunks: int = PIPELINE_CHUNKS) -> CollectiveModel:
    return CollectiveModel(
        get_topology(preset),
        allgather_algorithm="hierarchical",
        pipeline_chunks=chunks,
        allgather_dedup=SparseAggregateModel("uniform"),
    )


def _timeline(collective: CollectiveModel) -> TimelineModel:
    topology = collective.topology
    compute = compute_time_for_overhead(
        topology.inter_node, topology.num_workers, DIMENSION, COMM_OVERHEAD
    )
    return TimelineModel(
        network=topology.inter_node,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=topology.num_workers,
        model_dimension=DIMENSION,
        collective=collective,
    )


@pytest.fixture(scope="module")
def worker_results():
    gradient = realistic_gradient(DIMENSION, seed=0)
    pipeline = CompressionPipeline(create_compressor("topk"))
    result = pipeline.compress(gradient, ACCEPTANCE_RATIO)
    assert result.metadata["num_buckets"] > 1
    return [result]


def test_knobs_off_reproduces_pr3_bit_for_bit():
    model = CollectiveModel(
        get_topology("ethernet-4x8"),
        allgather_algorithm="hierarchical",
        pipeline_chunks=1,
        allgather_dedup=None,
    )
    assert model.allgather_cost(2_000_000.0).total == PR3_SERIAL_TOTAL_2MB


@pytest.mark.parametrize("preset", SCENARIOS)
@pytest.mark.parametrize("ratio", RATIOS)
def test_dedup_and_pipelining_beat_serial_at_every_ratio(preset, ratio):
    payload = ratio * DIMENSION * SPARSE_ELEMENT_BYTES
    serial = _serial_model(preset).allgather_cost(payload)
    tuned = _tuned_model(preset).allgather_cost(payload, density=ratio)
    assert tuned.total < serial.total
    assert tuned.dedup_ratio > 1.0
    # The win decomposes: dedup moves fewer inter-node bytes, pipelining
    # overlaps what remains with the intra-node phases.
    serial_inter = sum(p.volume_bytes for p in serial.phases if p.name == "inter-allgather")
    tuned_inter = sum(p.volume_bytes for p in tuned.phases if p.name == "inter-allgather")
    assert tuned_inter < serial_inter


@pytest.mark.parametrize("preset", SCENARIOS)
def test_acceptance_speedup_at_paper_density(preset):
    payload = ACCEPTANCE_RATIO * DIMENSION * SPARSE_ELEMENT_BYTES
    serial = _serial_model(preset).allgather_cost(payload)
    tuned = _tuned_model(preset).allgather_cost(payload, density=ACCEPTANCE_RATIO)
    assert serial.total / tuned.total >= 1.3, (
        f"dedup+pipelining must clear 1.3x vs PR-3 serial hierarchical on {preset}"
    )


def test_iteration_time_speedup_clears_1_3x(worker_results):
    serial = _timeline(_serial_model("ethernet-4x8")).compressed_iteration(
        worker_results, overlap="comm"
    )
    tuned = _timeline(_tuned_model("ethernet-4x8")).compressed_iteration(
        worker_results, overlap="comm"
    )
    assert tuned.dedup_ratio > 1.0
    speedup = serial.total / tuned.total
    assert speedup >= 1.3, (
        f"end-to-end iteration speedup {speedup:.3f}x below the 1.3x acceptance bar"
    )
    # Pipelined placements ride in the schedule trace, per link.
    links = {p.link for e in tuned.schedule.events for p in e.phases}
    assert links == {"infiniband-100g", "ethernet-10g"}


def test_emit_dedup_bench_artifact(worker_results, emit_artifact):
    scenarios = []
    for preset in SCENARIOS:
        topology = get_topology(preset)
        rows = []
        for ratio in RATIOS:
            payload = ratio * DIMENSION * SPARSE_ELEMENT_BYTES
            serial = _serial_model(preset).allgather_cost(payload)
            tuned = _tuned_model(preset).allgather_cost(payload, density=ratio)
            sweep = {
                chunks: _tuned_model(preset, chunks).allgather_cost(payload, density=ratio).total
                for chunks in CHUNK_SWEEP
            }
            rows.append(
                {
                    "ratio": ratio,
                    "payload_bytes_per_worker": payload,
                    "pr3_serial_seconds": serial.total,
                    "dedup_pipelined_seconds": tuned.total,
                    "speedup": serial.total / tuned.total,
                    "achieved_dedup_ratio": tuned.dedup_ratio,
                    "pipeline_chunk_sweep_seconds": sweep,
                }
            )
        scenarios.append(
            {
                "topology": {
                    "name": topology.name,
                    "num_nodes": topology.num_nodes,
                    "devices_per_node": topology.devices_per_node,
                    "inter_node": topology.inter_node.name,
                    "intra_node": topology.intra_node.name,
                },
                "allgather": rows,
            }
        )

    serial = _timeline(_serial_model("ethernet-4x8")).compressed_iteration(
        worker_results, overlap="comm"
    )
    tuned = _timeline(_tuned_model("ethernet-4x8")).compressed_iteration(
        worker_results, overlap="comm"
    )
    artifact = {
        "benchmark": "dedup_pipeline_speedup",
        "dimension": DIMENSION,
        "dedup_assumption": "uniform",
        "pipeline_chunks": PIPELINE_CHUNKS,
        "pr3_golden_serial_2mb_seconds": PR3_SERIAL_TOTAL_2MB,
        "scenarios": scenarios,
        "compressed_iteration": {
            "topology": "ethernet-4x8",
            "compressor": "topk",
            "ratio": ACCEPTANCE_RATIO,
            "overlap": "comm",
            "num_buckets": worker_results[0].metadata["num_buckets"],
            "pr3_serial_iteration_seconds": serial.total,
            "dedup_pipelined_iteration_seconds": tuned.total,
            "speedup": serial.total / tuned.total,
            "achieved_dedup_ratio": tuned.dedup_ratio,
        },
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "dedup_pipeline_speedup",
        params={
            key: artifact[key]
            for key in ("dimension", "dedup_assumption", "pipeline_chunks")
        },
        metrics={
            "compressed_iteration_speedup": artifact["compressed_iteration"]["speedup"],
            "achieved_dedup_ratio": artifact["compressed_iteration"]["achieved_dedup_ratio"],
        },
        records=[
            {
                "workload": "dedup_pipeline_speedup",
                "config": {"topology": scenario["topology"]["name"], "ratio": row["ratio"]},
                "metrics": {
                    "pr3_serial_seconds": row["pr3_serial_seconds"],
                    "dedup_pipelined_seconds": row["dedup_pipelined_seconds"],
                    "speedup": row["speedup"],
                    "achieved_dedup_ratio": row["achieved_dedup_ratio"],
                },
            }
            for scenario in scenarios
            for row in scenario["allgather"]
        ],
        legacy=artifact,
    )
    assert written["compressed_iteration"]["speedup"] >= 1.3
    for scenario in written["scenarios"]:
        assert all(row["speedup"] > 1.0 for row in scenario["allgather"])
