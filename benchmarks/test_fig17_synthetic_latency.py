"""Figure 17: absolute compression latency for synthetic tensors (0.26M - 260M elements)."""

import pytest

from repro.harness import format_table, run_synthetic_size_sweep

SIZES = (260_000, 2_600_000, 26_000_000, 260_000_000)


@pytest.fixture(scope="module")
def results():
    return run_synthetic_size_sweep(sizes=SIZES, ratios=(0.001,), sample_size=300_000, warmup_calls=10, seed=0)


def _latency(rows, compressor, device):
    return next(r.latency_seconds for r in rows if r.compressor == compressor and r.device == device)


def test_fig17_synthetic_latency(benchmark, results):
    benchmark.pedantic(
        lambda: run_synthetic_size_sweep(sizes=(260_000,), ratios=(0.001,), sample_size=100_000, warmup_calls=4),
        rounds=1,
        iterations=1,
    )
    for size, rows in results.items():
        print(f"\nFigure 17 — {size/1e6:.2f}M-element tensor (latency seconds)")
        print(format_table(rows, columns=["compressor", "device", "latency_seconds"]))

    # Latency scales roughly linearly (about 10x per decade) for every scheme;
    # the smallest tensors are partially launch-overhead bound, so the lower
    # bound is loose there.
    for device in ("gpu-v100", "cpu-xeon"):
        for compressor in ("topk", "dgc", "sidco-e"):
            latencies = [_latency(results[s], compressor, device) for s in SIZES]
            for smaller, larger in zip(latencies, latencies[1:]):
                assert 3.0 < larger / smaller < 20.0

    # At the largest size, CPU Top-k costs seconds while GPU SIDCo costs
    # milliseconds — the gap the paper's Figure 17 spans.
    assert _latency(results[260_000_000], "topk", "cpu-xeon") > 1.0
    assert _latency(results[260_000_000], "sidco-e", "gpu-v100") < 0.2
