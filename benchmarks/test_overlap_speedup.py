"""Overlap-aware iteration schedule: simulated speedup over serialised pricing.

The event-driven schedule simulator overlaps bucket *i*'s all-gather with
bucket *i+1*'s compression (``overlap="comm"``) and additionally starts
compressing each bucket at its gradient-ready point during backprop
(``overlap="comm+compress"``).  This module demonstrates the acceptance bar on
a 25M-element gradient (Figure 16's large-tensor class):

* simulated overlapped iteration time <= serialised iteration time for every
  policy, strictly lower for the overlap policies on a multi-bucket workload,
* ``overlap="none"`` reproduces the closed-form component sum exactly.

It also emits a ``BENCH_overlap.json`` artifact at the repository root with
the per-policy iteration times and overlap savings, so the benchmark
trajectory of the overlap refactor is recorded alongside the code.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_overlap_speedup.py -v``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compressors import create_compressor
from repro.distributed import OVERLAP_POLICIES, TimelineModel, compute_time_for_overhead
from repro.distributed.network import CLUSTER_ETHERNET_10G
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline

#: The acceptance-scale gradient (matches the pipeline-throughput benchmark).
DIMENSION = 25_000_000
RATIO = 0.001
NUM_WORKERS = 8
#: ResNet-50-like communication-overhead fraction (Table 1).
COMM_OVERHEAD = 0.72

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_overlap.json"


@pytest.fixture(scope="module")
def timeline():
    compute = compute_time_for_overhead(
        CLUSTER_ETHERNET_10G, NUM_WORKERS, DIMENSION, COMM_OVERHEAD
    )
    return TimelineModel(
        network=CLUSTER_ETHERNET_10G,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=NUM_WORKERS,
        model_dimension=DIMENSION,
    )


@pytest.fixture(scope="module")
def worker_results():
    gradient = realistic_gradient(DIMENSION, seed=0)
    pipeline = CompressionPipeline(create_compressor("sidco-e"))
    # Two warm-up calls bring the stage controller to steady state.
    for _ in range(2):
        result = pipeline.compress(gradient, RATIO)
    return [result]


def test_overlapped_iteration_never_slower_than_serialized(timeline, worker_results):
    assert worker_results[0].metadata["num_buckets"] > 1
    timings = {
        policy: timeline.compressed_iteration(worker_results, overlap=policy)
        for policy in OVERLAP_POLICIES
    }
    serialized = timings["none"].total
    assert timings["none"].total == pytest.approx(timings["none"].serialized)
    for policy in ("comm", "comm+compress"):
        assert timings[policy].total <= serialized
        assert timings[policy].total < serialized, (
            f"{policy} must strictly beat serialised pricing on a multi-bucket workload"
        )
        assert timings[policy].serialized == pytest.approx(serialized)
    assert timings["comm+compress"].total <= timings["comm"].total


def test_emit_overlap_bench_artifact(timeline, worker_results, emit_artifact):
    result = worker_results[0]
    timings = {
        policy: timeline.compressed_iteration(worker_results, overlap=policy)
        for policy in OVERLAP_POLICIES
    }
    serialized = timings["none"].total
    artifact = {
        "benchmark": "overlap_speedup",
        "dimension": DIMENSION,
        "ratio": RATIO,
        "num_workers": NUM_WORKERS,
        "comm_overhead": COMM_OVERHEAD,
        "compressor": result.metadata.get("sid", "sidco-e"),
        "num_buckets": result.metadata["num_buckets"],
        "compute_seconds": timeline.compute_seconds,
        "policies": {
            policy: {
                "iteration_seconds": timing.total,
                "serialized_seconds": timing.serialized,
                "overlap_saving": timing.overlap_saving,
                "speedup_vs_serialized": serialized / timing.total if timing.total else 1.0,
            }
            for policy, timing in timings.items()
        },
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "overlap_speedup",
        params={
            key: artifact[key]
            for key in ("dimension", "ratio", "num_workers", "comm_overhead", "compressor")
        },
        metrics={
            "comm_compress_speedup_vs_serialized": artifact["policies"]["comm+compress"][
                "speedup_vs_serialized"
            ],
        },
        records=[
            {"workload": "overlap_speedup", "config": {"overlap": policy}, "metrics": metrics}
            for policy, metrics in artifact["policies"].items()
        ],
        legacy=artifact,
    )
    assert written["policies"]["comm+compress"]["iteration_seconds"] <= serialized
