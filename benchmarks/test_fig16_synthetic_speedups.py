"""Figure 16: compression speed-up over Top-k for synthetic tensors (0.26M - 260M elements)."""

import pytest

from repro.harness import format_table, run_synthetic_size_sweep, speedup_matrix

SIZES = (260_000, 2_600_000, 26_000_000, 260_000_000)
RATIOS = (0.01, 0.001)


@pytest.fixture(scope="module")
def results():
    return run_synthetic_size_sweep(sizes=SIZES, ratios=RATIOS, sample_size=300_000, warmup_calls=10, seed=0)


def test_fig16_synthetic_speedups(benchmark, results):
    benchmark.pedantic(
        lambda: run_synthetic_size_sweep(sizes=(260_000,), ratios=(0.01,), sample_size=100_000, warmup_calls=4),
        rounds=1,
        iterations=1,
    )
    for size, rows in results.items():
        print(f"\nFigure 16 — {size/1e6:.2f}M-element tensor")
        print(format_table(rows, columns=["compressor", "device", "ratio", "speedup_over_topk"]))

    for size in SIZES:
        gpu = speedup_matrix(results[size], "gpu-v100")
        cpu = speedup_matrix(results[size], "cpu-xeon")
        for ratio in RATIOS:
            assert gpu[("sidco-e", ratio)] > 1.0
            assert cpu[("sidco-e", ratio)] > 1.0
            assert cpu[("dgc", ratio)] < 1.0

    # The GPU advantage of threshold estimation grows with tensor size and
    # saturates for huge tensors (Figure 16 shows similar bars from 2.6M up).
    gains = [speedup_matrix(results[s], "gpu-v100")[("sidco-e", 0.001)] for s in SIZES]
    assert gains[1] > gains[0]
    assert gains[-1] == pytest.approx(gains[-2], rel=0.25)
