"""Topology-aware collectives: hierarchical vs flat sparse all-gather.

The paper's two fabrics (Appendix D) differ by ~17x in effective collective
bandwidth: TCP 10 Gbps Ethernet between servers vs 100 Gbps InfiniBand inside
an 8-GPU node.  On a two-level cluster built from both — the ``ethernet-4x8``
preset, 4 nodes x 8 devices — a topology-oblivious ring all-gather pays
``N-1 = 31`` inter-node steps, while the hierarchical algorithm gathers
intra-node first and runs the Ethernet ring over ``M-1 = 3`` node aggregates.

This module demonstrates the acceptance bar:

* hierarchical sparse all-gather strictly beats flat all-gather on the
  ``ethernet-4x8`` preset at every paper compression ratio (the intra-node
  fabric clears the derived crossover factor),
* threaded through ``TimelineModel``, a bucketed compressed iteration gets
  strictly cheaper communication, with per-phase events in the schedule trace,

and emits a ``BENCH_topology.json`` artifact at the repository root recording
the per-ratio speedups.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_topology_speedup.py -v``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compressors import create_compressor
from repro.distributed import (
    CollectiveModel,
    TimelineModel,
    compute_time_for_overhead,
    get_topology,
    hierarchical_crossover_factor,
)
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline
from repro.tensor.sparse import FLOAT_BYTES

#: The acceptance-scale model (matches the overlap/pipeline benchmarks).
DIMENSION = 25_000_000
#: Sparse payload bytes per element: value + index.
SPARSE_ELEMENT_BYTES = 2 * FLOAT_BYTES
RATIOS = (0.1, 0.01, 0.001)
COMM_OVERHEAD = 0.72

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_topology.json"

TOPOLOGY = get_topology("ethernet-4x8")
FLAT = CollectiveModel(TOPOLOGY, allgather_algorithm="flat-allgather")
HIERARCHICAL = CollectiveModel(TOPOLOGY, allgather_algorithm="hierarchical")


def _timeline(collective: CollectiveModel) -> TimelineModel:
    compute = compute_time_for_overhead(
        TOPOLOGY.inter_node, TOPOLOGY.num_workers, DIMENSION, COMM_OVERHEAD
    )
    return TimelineModel(
        network=TOPOLOGY.inter_node,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=TOPOLOGY.num_workers,
        model_dimension=DIMENSION,
        collective=collective,
    )


@pytest.fixture(scope="module")
def worker_results():
    gradient = realistic_gradient(DIMENSION, seed=0)
    pipeline = CompressionPipeline(create_compressor("sidco-e"))
    for _ in range(2):  # warm the stage controller to steady state
        result = pipeline.compress(gradient, 0.001)
    return [result]


def test_preset_clears_crossover():
    ratio = TOPOLOGY.intra_node.bytes_per_second / TOPOLOGY.inter_node.bytes_per_second
    assert ratio > hierarchical_crossover_factor(TOPOLOGY)


@pytest.mark.parametrize("ratio", RATIOS)
def test_hierarchical_beats_flat_at_every_paper_ratio(ratio):
    payload = ratio * DIMENSION * SPARSE_ELEMENT_BYTES
    flat = FLAT.allgather_cost(payload)
    hier = HIERARCHICAL.allgather_cost(payload)
    assert hier.total < flat.total, (
        f"hierarchical must beat flat all-gather on {TOPOLOGY.name} at ratio {ratio}"
    )
    # The win comes from the inter-node fabric: 3 node-aggregate steps vs 31
    # per-device steps.
    inter_volume = sum(p.volume_bytes for p in hier.phases if p.link == TOPOLOGY.inter_node.name)
    assert inter_volume < sum(p.volume_bytes for p in flat.phases)


def test_timeline_iteration_cheaper_with_hierarchical(worker_results):
    assert worker_results[0].metadata["num_buckets"] > 1
    flat_timing = _timeline(FLAT).compressed_iteration(worker_results, overlap="comm")
    hier_timing = _timeline(HIERARCHICAL).compressed_iteration(worker_results, overlap="comm")
    assert hier_timing.communication < flat_timing.communication
    assert hier_timing.total < flat_timing.total
    # Per-phase events ride in the schedule trace.
    phases = {p.name for e in hier_timing.schedule.events for p in e.phases}
    assert phases == {"intra-gather", "inter-allgather", "intra-broadcast"}


def test_emit_topology_bench_artifact(worker_results, emit_artifact):
    rows = []
    for ratio in RATIOS:
        payload = ratio * DIMENSION * SPARSE_ELEMENT_BYTES
        flat = FLAT.allgather_cost(payload)
        hier = HIERARCHICAL.allgather_cost(payload)
        rows.append(
            {
                "ratio": ratio,
                "payload_bytes_per_worker": payload,
                "flat_allgather_seconds": flat.total,
                "hierarchical_seconds": hier.total,
                "speedup": flat.total / hier.total,
                "hierarchical_phases": [
                    {
                        "name": p.name,
                        "link": p.link,
                        "seconds": p.seconds,
                        "volume_bytes": p.volume_bytes,
                    }
                    for p in hier.phases
                ],
            }
        )
    flat_timing = _timeline(FLAT).compressed_iteration(worker_results, overlap="comm")
    hier_timing = _timeline(HIERARCHICAL).compressed_iteration(worker_results, overlap="comm")
    artifact = {
        "benchmark": "topology_speedup",
        "topology": {
            "name": TOPOLOGY.name,
            "num_nodes": TOPOLOGY.num_nodes,
            "devices_per_node": TOPOLOGY.devices_per_node,
            "inter_node": TOPOLOGY.inter_node.name,
            "intra_node": TOPOLOGY.intra_node.name,
            "crossover_factor": hierarchical_crossover_factor(TOPOLOGY),
            "effective_bandwidth_ratio": TOPOLOGY.intra_node.bytes_per_second
            / TOPOLOGY.inter_node.bytes_per_second,
        },
        "dimension": DIMENSION,
        "allgather": rows,
        "compressed_iteration": {
            "compressor": "sidco-e",
            "num_buckets": worker_results[0].metadata["num_buckets"],
            "overlap": "comm",
            "flat_iteration_seconds": flat_timing.total,
            "hierarchical_iteration_seconds": hier_timing.total,
            "speedup": flat_timing.total / hier_timing.total,
        },
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "topology_speedup",
        params={"dimension": DIMENSION, "topology": artifact["topology"]},
        metrics={
            "compressed_iteration_speedup": artifact["compressed_iteration"]["speedup"],
        },
        records=[
            {
                "workload": "topology_speedup",
                "config": {"topology": TOPOLOGY.name, "ratio": row["ratio"]},
                "metrics": {
                    "flat_allgather_seconds": row["flat_allgather_seconds"],
                    "hierarchical_seconds": row["hierarchical_seconds"],
                    "speedup": row["speedup"],
                },
            }
            for row in rows
        ],
        legacy=artifact,
    )
    assert all(row["speedup"] > 1.0 for row in written["allgather"])
    assert written["compressed_iteration"]["speedup"] > 1.0
