"""Figure 3: RNN training — LSTM-PTB and LSTM-AN4.

(a/d) normalised training speed-up, (b/e) normalised average throughput,
(c/f) threshold-estimation quality, for the compressor line-up at delta=0.001
(the most communication-saving, most error-prone ratio).
"""

import pytest

from repro.harness import format_speedup_summary

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")
RATIO = 0.001


@pytest.mark.parametrize("benchmark_name", ["lstm-ptb", "lstm-an4"])
def test_fig3_rnn_training(benchmark, benchmark_name):
    comparison = benchmark.pedantic(
        lambda: cached_comparison(benchmark_name, COMPRESSORS, (RATIO,), iterations=50),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 3 — {benchmark_name} at ratio {RATIO}")
    print(format_speedup_summary(comparison.rows))

    rows = {r.compressor: r for r in comparison.rows}

    # Compression pays off on these communication-bound RNN benchmarks.
    assert rows["sidco-e"].speedup_vs_baseline > 1.5
    assert rows["sidco-e"].throughput_vs_baseline > 2.0

    # SIDCo's throughput is at least on par with every baseline compressor,
    # and clearly above exact Top-k (the paper's headline ordering).
    for name in ("topk", "dgc", "redsync", "gaussiank"):
        assert rows["sidco-e"].throughput_vs_baseline >= rows[name].throughput_vs_baseline * 0.9
    assert rows["sidco-e"].throughput_vs_baseline > rows["topk"].throughput_vs_baseline

    # Estimation quality: SIDCo tracks the target ratio; Top-k is exact by
    # construction; the Gaussian-based heuristics drift further.
    assert 0.5 < rows["topk"].estimation_quality < 1.5
    sidco_err = abs(rows["sidco-e"].estimation_quality - 1.0)
    heuristic_err = max(
        abs(rows["redsync"].estimation_quality - 1.0),
        abs(rows["gaussiank"].estimation_quality - 1.0),
    )
    assert sidco_err < heuristic_err + 2.5  # quick-scale runs include the adaptation warm-up
