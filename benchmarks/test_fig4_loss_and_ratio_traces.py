"""Figure 4: training-loss and threshold-estimation traces at ratio 0.001 (PTB, AN4).

The paper shows (a/c) training loss vs iteration and (b/d) the per-iteration
normalised compression ratio, highlighting that SIDCo and DGC stay on target
while RedSync fluctuates and GaussianKSGD collapses toward zero.
"""

import numpy as np
import pytest

from repro.harness import extract_traces, format_series

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")
RATIO = 0.001


@pytest.mark.parametrize("benchmark_name", ["lstm-ptb", "lstm-an4"])
def test_fig4_traces(benchmark, benchmark_name):
    comparison = benchmark.pedantic(
        lambda: cached_comparison(benchmark_name, COMPRESSORS, (RATIO,), iterations=50),
        rounds=1,
        iterations=1,
    )

    traces = {name: extract_traces(comparison.runs[(name, RATIO)], window=10) for name in COMPRESSORS}
    for name, trace in traces.items():
        print("\n" + format_series(f"{benchmark_name} loss[{name}]", trace.iterations, trace.losses))
        print(format_series(f"{benchmark_name} ratio[{name}]", trace.iterations[: len(trace.running_ratio)], trace.running_ratio))

    # Loss decreases over training for the well-behaved compressors.
    for name in ("topk", "dgc", "sidco-e"):
        losses = traces[name].losses
        assert losses[-10:].mean() < losses[:10].mean()

    # SIDCo's running-average ratio converges to the target after the stage
    # controller settles; the ratio trace stays positive and bounded.
    sidco_ratio = traces["sidco-e"].running_ratio
    assert 0.3 * RATIO < sidco_ratio[-1] < 3.0 * RATIO

    # RedSync / GaussianKSGD traces deviate further from the target than SIDCo's.
    sidco_err = abs(sidco_ratio[-1] / RATIO - 1.0)
    for name in ("redsync", "gaussiank"):
        heuristic_ratio = traces[name].running_ratio
        heuristic_err = abs(heuristic_ratio[-1] / RATIO - 1.0)
        assert heuristic_err > sidco_err or np.isclose(heuristic_err, sidco_err, atol=0.5)
