"""Figure 18: all SIDCo variants (SIDCo-E, SIDCo-GP, SIDCo-P) across benchmarks.

Appendix F shows that the three SID choices perform similarly: all of them
track the target ratio and none is slower than Top-k or DGC.
"""

import pytest

from repro.harness import format_speedup_summary

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "sidco-e", "sidco-gp", "sidco-p")
RATIO = 0.001


@pytest.mark.parametrize("benchmark_name", ["lstm-ptb", "vgg16-cifar10"])
def test_fig18_all_sid_variants(benchmark, benchmark_name):
    comparison = benchmark.pedantic(
        lambda: cached_comparison(benchmark_name, COMPRESSORS, (RATIO,), iterations=50),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 18 — {benchmark_name} with all SIDCo variants (ratio {RATIO})")
    print(format_speedup_summary(comparison.rows))
    rows = {r.compressor: r for r in comparison.rows}

    variant_throughputs = [rows[v].throughput_vs_baseline for v in ("sidco-e", "sidco-gp", "sidco-p")]

    # All three variants beat exact Top-k on throughput.
    for throughput in variant_throughputs:
        assert throughput > rows["topk"].throughput_vs_baseline

    # The variants are close to each other (the paper: "quite similar").
    assert max(variant_throughputs) / min(variant_throughputs) < 1.5

    # And all of them keep the achieved ratio in a sane band around the target.
    for variant in ("sidco-e", "sidco-gp", "sidco-p"):
        assert 0.2 < rows[variant].estimation_quality < 5.0
