"""Figure 10: training loss versus (simulated) wall-clock time.

For a communication-bound benchmark, compression reaches any given loss level
earlier in wall-clock time than the dense baseline, and SIDCo's curve is at
least as far left as Top-k's.
"""


from repro.harness import extract_traces, format_series

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "sidco-e")
RATIO = 0.001


def test_fig10_loss_vs_walltime(benchmark):
    comparison = benchmark.pedantic(
        lambda: cached_comparison("lstm-ptb", COMPRESSORS, (RATIO,), iterations=50),
        rounds=1,
        iterations=1,
    )

    baseline_trace = extract_traces(comparison.baseline)
    traces = {name: extract_traces(comparison.runs[(name, RATIO)]) for name in COMPRESSORS}
    print("\n" + format_series("baseline loss vs time", baseline_trace.wall_times, baseline_trace.losses))
    for name, trace in traces.items():
        print(format_series(f"{name} loss vs time", trace.wall_times, trace.losses))

    # Target: just above the loss level the baseline reaches at the end of its
    # run (the smoothed curve needs a little slack to cross it).
    target_loss = comparison.baseline.metrics.final_loss * 1.1

    baseline_time = comparison.baseline.metrics.time_to_loss(target_loss)
    sidco_time = comparison.runs[("sidco-e", RATIO)].metrics.time_to_loss(target_loss)
    assert baseline_time is not None

    # SIDCo reaches the same loss level much earlier in wall-clock time.
    if sidco_time is not None:
        assert sidco_time < baseline_time
    else:
        # If the compressed run has not reached the target yet, it must at least
        # be progressing with far cheaper iterations.
        assert comparison.runs[("sidco-e", RATIO)].metrics.total_time < comparison.baseline.metrics.total_time / 2
