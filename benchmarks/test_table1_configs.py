"""Table 1: benchmark suite summary.

Regenerates the rows of Table 1 (model dimension, batch size, learning rate,
epochs, communication overhead, optimizer, quality metric) from the config
registry and times the registry construction itself.
"""

from repro.harness import format_table, table1_rows


def test_table1_rows(benchmark):
    rows = benchmark(table1_rows)
    print("\n" + format_table(rows, title="Table 1 — benchmark suite"))
    assert len(rows) == 6
    by_name = {r["benchmark"]: r for r in rows}
    assert by_name["lstm-ptb"]["parameters"] == 66_034_000
    assert by_name["lstm-ptb"]["comm_overhead"] == 0.94
    assert by_name["vgg19-imagenet"]["parameters"] == 143_671_337
    assert by_name["resnet20-cifar10"]["comm_overhead"] == 0.10
