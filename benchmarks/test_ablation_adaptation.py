"""Ablation: stage-adaptation policy — tolerance band, cadence, and direction.

Compares the default (robust) adaptation rule against the literal pseudocode
direction printed in the paper's Algorithm 1, and sweeps the adaptation
cadence Q, measuring the steady-state estimation quality each policy reaches.
"""

import numpy as np
import pytest

from repro.core import SIDCo, StageControllerConfig
from repro.gradients import realistic_gradient
from repro.harness import format_table

RATIO = 0.001
ITERATIONS = 60


def _steady_state_quality(config: StageControllerConfig) -> tuple[float, int]:
    compressor = SIDCo("exponential", controller=config)
    qualities = []
    for i in range(ITERATIONS):
        gradient = realistic_gradient(120_000, seed=200 + i)
        qualities.append(compressor.compress(gradient, RATIO).estimation_quality)
    return float(np.mean(qualities[-15:])), compressor.num_stages


@pytest.fixture(scope="module")
def policies():
    return {
        "default (robust, Q=5)": _steady_state_quality(StageControllerConfig()),
        "paper pseudocode direction": _steady_state_quality(
            StageControllerConfig(paper_pseudocode_direction=True)
        ),
        "fast cadence Q=1": _steady_state_quality(StageControllerConfig(adaptation_interval=1)),
        "slow cadence Q=20": _steady_state_quality(StageControllerConfig(adaptation_interval=20)),
        "tight tolerance 5%": _steady_state_quality(StageControllerConfig(eps_high=0.05, eps_low=0.05)),
    }


def test_ablation_adaptation_policy(benchmark, policies):
    benchmark.pedantic(
        lambda: _steady_state_quality(StageControllerConfig()), rounds=1, iterations=1
    )
    rows = [
        {"policy": name, "steady_state_khat_over_k": quality, "final_stages": stages}
        for name, (quality, stages) in policies.items()
    ]
    print("\n" + format_table(rows, title="Ablation — stage adaptation policies (ratio 0.001)"))

    default_quality, default_stages = policies["default (robust, Q=5)"]
    paper_quality, paper_stages = policies["paper pseudocode direction"]

    # The robust rule converges to the target with more than one stage.
    assert abs(default_quality - 1.0) < 0.3
    assert default_stages >= 2

    # The literal pseudocode direction cannot escape single-stage fitting on
    # these gradients and ends far from the target — the inconsistency the
    # stage controller documentation calls out.
    assert paper_stages == 1
    assert abs(paper_quality - 1.0) > abs(default_quality - 1.0)

    # Faster cadence converges at least as well; slower cadence still gets there.
    assert abs(policies["fast cadence Q=1"][0] - 1.0) < 0.3
    assert abs(policies["slow cadence Q=20"][0] - 1.0) < 1.0
    assert abs(policies["tight tolerance 5%"][0] - 1.0) < 0.3
