"""Scheduler throughput: batched-NumPy core vs the scalar loop reference.

PR 7 keeps the loop scheduler as the bit-for-bit reference and adds a
vectorized backend that prices all buckets as one ``(bucket, phase)``
:class:`~repro.distributed.topology.PhaseTable` and schedules them with
:func:`~repro.distributed.schedule.simulate_iteration_arrays`.  The loop
pays O(buckets) object churn per call — ``CollectiveCost``/``BucketTask``
construction and validation, per-phase ``PhaseEvent`` objects — which is
what a parameter sweep over schedules actually spends its time on.

This benchmark times the hot path both sweeps share,
``TimelineModel.schedule_iteration`` with precomputed compression seconds,
on the 128-node ``fat-tree-128`` preset (1024 workers, 7 phase columns)
with a ~96-bucket top-k pipeline result.

Acceptance bar: the vectorized backend schedules >= 10x more iterations
per second than the loop on the serial-lane policy, and both backends
return bit-identical schedules.  The cross-bucket row is reported without
a bar: per-link template fitting is a sequential recurrence both backends
share in scalar form (reassociating it would change IEEE rounding and
break the equality contract), so its speedup is structurally modest.
Results land in ``BENCH_sched_throughput.json`` at the repo root.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_sched_throughput.py -v``.
Setting ``SIDCO_SMOKE_DIMENSION`` (e.g. ``500000``) shrinks the gradient for
a CI execution smoke: the equality assertions still run, the throughput bar
and the artifact write are skipped (timings at toy scale are all overhead).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.compressors import create_compressor
from repro.distributed import (
    CollectiveModel,
    IterationSchedule,
    ScheduleArrays,
    SparseAggregateModel,
    TimelineModel,
    compute_time_for_overhead,
    get_topology,
)
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline

FULL_DIMENSION = 25_000_000
DIMENSION = int(os.environ.get("SIDCO_SMOKE_DIMENSION", FULL_DIMENSION))
SMOKE = DIMENSION < FULL_DIMENSION

PRESET = "fat-tree-128"
RATIO = 0.05
COMM_OVERHEAD = 0.94
#: 1 MiB buckets — ~96 buckets at the 25M scale, a realistic DDP sweep size.
BUCKET_BYTES = 2**20
#: The vectorized backend must schedule at least this many times more
#: iterations per second than the loop reference (measured ~16x).
MIN_SPEEDUP = 10.0

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sched_throughput.json"


def _timeline(backend: str, *, cross_bucket: bool) -> TimelineModel:
    topology = get_topology(PRESET)
    collective = CollectiveModel(
        topology,
        allgather_algorithm="hierarchical",
        allgather_dedup=SparseAggregateModel("uniform"),
    )
    compute = compute_time_for_overhead(
        topology.inter_node, topology.num_workers, DIMENSION, COMM_OVERHEAD
    )
    return TimelineModel(
        network=topology.inter_node,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=topology.num_workers,
        model_dimension=DIMENSION,
        overlap="comm+compress",
        collective=collective,
        cross_bucket_pipeline=cross_bucket,
        scheduler_backend=backend,
    )


@pytest.fixture(scope="module")
def worker_results():
    gradient = realistic_gradient(DIMENSION, seed=0)
    pipeline = CompressionPipeline(
        create_compressor("topk"),
        bucket_bytes=BUCKET_BYTES if not SMOKE else max(64, DIMENSION * 4 // 16),
    )
    results = [pipeline.compress(gradient, RATIO)]
    assert results[0].metadata["num_buckets"] > 1
    return results


def _seconds_per_call(timeline, results, *, repeats: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        timeline.schedule_iteration(results, compression_seconds=0.01)
    best = float("inf")
    # Best-of-3 batches: robust to scheduler noise on shared CI runners.
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            timeline.schedule_iteration(results, compression_seconds=0.01)
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


@pytest.mark.parametrize("cross_bucket", [False, True])
def test_backends_agree_on_the_benchmark_scenario(cross_bucket, worker_results):
    loop = _timeline("loop", cross_bucket=cross_bucket).schedule_iteration(
        worker_results, compression_seconds=0.01
    )
    vec = _timeline("vectorized", cross_bucket=cross_bucket).schedule_iteration(
        worker_results, compression_seconds=0.01
    )
    assert isinstance(loop, IterationSchedule)
    assert isinstance(vec, ScheduleArrays)
    assert vec.events == loop.events
    assert vec.iteration_seconds == loop.iteration_seconds
    assert vec.link_utilization() == loop.link_utilization()


@pytest.mark.skipif(SMOKE, reason="throughput bar calibrated to the 25M-parameter scale")
def test_vectorized_scheduler_throughput_ratchet(worker_results):
    loop_s = _seconds_per_call(
        _timeline("loop", cross_bucket=False), worker_results, repeats=30
    )
    vec_s = _seconds_per_call(
        _timeline("vectorized", cross_bucket=False), worker_results, repeats=300
    )
    speedup = loop_s / vec_s
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized scheduler {speedup:.1f}x vs loop, below the "
        f"{MIN_SPEEDUP:.0f}x bar on {PRESET} "
        f"(loop {loop_s * 1e3:.3f} ms/call, vectorized {vec_s * 1e3:.3f} ms/call)"
    )


@pytest.mark.skipif(SMOKE, reason="artifact records full-scale numbers only")
def test_emit_sched_throughput_artifact(worker_results, emit_artifact):
    topology = get_topology(PRESET)
    num_buckets = worker_results[0].metadata["num_buckets"]
    rows = []
    for cross_bucket in (False, True):
        loop_s = _seconds_per_call(
            _timeline("loop", cross_bucket=cross_bucket), worker_results, repeats=30
        )
        vec_s = _seconds_per_call(
            _timeline("vectorized", cross_bucket=cross_bucket),
            worker_results,
            repeats=300,
        )
        rows.append(
            {
                "cross_bucket_pipeline": cross_bucket,
                "loop_seconds_per_call": loop_s,
                "vectorized_seconds_per_call": vec_s,
                "loop_schedules_per_second": 1.0 / loop_s,
                "vectorized_schedules_per_second": 1.0 / vec_s,
                "speedup": loop_s / vec_s,
            }
        )

    serial_lane = rows[0]
    artifact = {
        "benchmark": "sched_throughput",
        "dimension": DIMENSION,
        "ratio": RATIO,
        "bucket_bytes": BUCKET_BYTES,
        "num_buckets": num_buckets,
        "overlap": "comm+compress",
        "topology": {
            "name": topology.name,
            "num_nodes": topology.num_nodes,
            "devices_per_node": topology.devices_per_node,
            "num_workers": topology.num_workers,
            "num_levels": topology.num_levels,
        },
        "speedup": serial_lane["speedup"],
        "min_speedup_bar": MIN_SPEEDUP,
        "note": (
            "cross-bucket row shares the scalar per-link template-fitting "
            "recurrence between backends (bit-for-bit contract), so only the "
            "serial-lane row carries the ratchet bar"
        ),
        "scenarios": rows,
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "sched_throughput",
        params={
            key: artifact[key]
            for key in ("dimension", "ratio", "bucket_bytes", "num_buckets", "overlap",
                        "topology", "min_speedup_bar")
        },
        metrics={"speedup": artifact["speedup"]},
        records=[
            {
                "workload": "sched_throughput",
                "config": {
                    "topology": topology.name,
                    "cross_bucket_pipeline": row["cross_bucket_pipeline"],
                },
                "metrics": {
                    key: row[key]
                    for key in ("loop_seconds_per_call", "vectorized_seconds_per_call",
                                "loop_schedules_per_second",
                                "vectorized_schedules_per_second", "speedup")
                },
            }
            for row in rows
        ],
        legacy=artifact,
    )
    assert written["speedup"] >= MIN_SPEEDUP
    for row in written["scenarios"]:
        assert row["speedup"] >= 1.0
