"""Shared fixtures for the paper-reproduction benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md §3 for the index).  Training-based figures run the Table
1 proxy benchmarks at "quick" scale — enough iterations for the comparative
shape (who wins, by roughly what factor) to emerge, small enough that the full
suite finishes in minutes.  Results are cached per session so figures sharing
the same underlying runs (e.g. Figures 3, 4, 9, 10) do not retrain.
"""

from __future__ import annotations

import pytest

from repro.harness import compare_compressors, write_bench_artifact
from repro.harness.training_runs import BenchmarkComparison

#: Quick-scale settings shared by all training-based benchmark modules.
QUICK_WORKERS = 4
QUICK_ITERATIONS = 40

_COMPARISON_CACHE: dict = {}


def cached_comparison(
    benchmark: str,
    compressors: tuple[str, ...],
    ratios: tuple[float, ...],
    *,
    num_workers: int = QUICK_WORKERS,
    iterations: int = QUICK_ITERATIONS,
    seed: int = 0,
    device=None,
) -> BenchmarkComparison:
    """Memoised compare_compressors so related figures reuse training runs."""
    key = (benchmark, compressors, ratios, num_workers, iterations, seed, getattr(device, "name", None))
    if key not in _COMPARISON_CACHE:
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        _COMPARISON_CACHE[key] = compare_compressors(
            benchmark,
            compressors,
            ratios,
            num_workers=num_workers,
            iterations=iterations,
            seed=seed,
            **kwargs,
        )
    return _COMPARISON_CACHE[key]


@pytest.fixture(scope="session")
def comparison_cache():
    """Expose the memoised comparison runner to benchmark modules."""
    return cached_comparison


@pytest.fixture(scope="session")
def emit_artifact():
    """Write one ``BENCH_*`` artifact in the unified schema.

    Wraps :func:`repro.harness.write_bench_artifact`: every emitter passes its
    pre-schema payload as ``legacy=`` (old top-level keys kept for one
    release) plus the envelope's ``params``/``metrics``/``records``, and
    asserts its ratchet bars against the returned disk round-trip.
    """
    return write_bench_artifact
