"""Figure 2: SID fits of ResNet-20 gradients without error compensation.

The paper overlays the empirical PDF/CDF of captured gradients with the three
fitted SIDs at an early and a late iteration.  This bench regenerates the fit
diagnostics (KS distance, tail-quantile error, best-fitting SID) for both
snapshots and checks that the SIDs describe the gradients well at both points
of training.
"""

import pytest

from repro.harness import format_table, gradient_fit_study

EARLY, LATE = 4, 30


@pytest.fixture(scope="module")
def study():
    return gradient_fit_study(
        "resnet20-cifar10",
        use_error_feedback=False,
        capture_iterations=(EARLY, LATE),
        iterations=LATE + 4,
        num_workers=4,
        seed=0,
    )


def test_fig2_sid_fits_without_ec(benchmark, study):
    def fit_snapshot_again():
        from repro.harness.experiments import _fit_snapshot

        return _fit_snapshot(LATE, study.snapshots[LATE])

    benchmark(fit_snapshot_again)

    rows = []
    for iteration, report in study.fits.items():
        for sid, quality in (
            ("exponential", report.exponential),
            ("gamma", report.gamma),
            ("gpareto", report.gpareto),
        ):
            rows.append(
                {
                    "iteration": iteration,
                    "sid": sid,
                    "ks": quality.ks_statistic,
                    "tail_q_rel_err": quality.tail_quantile_rel_error,
                }
            )
    print("\n" + format_table(rows, title="Figure 2 — SID fits (no error compensation)"))

    # The SIDs capture the gradient distribution at both snapshots.
    for report in study.fits.values():
        best_ks = min(report.exponential.ks_statistic, report.gamma.ks_statistic, report.gpareto.ks_statistic)
        assert best_ks < 0.45
    # Gradients stay compressible throughout (Property 1 backs Property 2).
    for comp in study.compressibility.values():
        assert comp.decay_exponent > 0.3
