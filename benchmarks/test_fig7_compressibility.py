"""Figure 7: gradient compressibility validation.

(a) sorted gradient magnitudes follow a power-law decay with exponent > 0.5,
(b) the best-k sparsification error sigma_k decays quickly in k — at the
beginning, middle and end of (proxy) training.
"""

import numpy as np
import pytest

from repro.harness import compressibility_study, format_table


@pytest.fixture(scope="module")
def study():
    return compressibility_study(
        "resnet20-cifar10", capture_iterations=(2, 15, 30), num_ks=40, num_workers=4, seed=0
    )


def test_fig7_compressibility(benchmark, study):
    def diagnose_one_gradient():
        from repro.gradients import realistic_gradient
        from repro.stats import fit_power_law_decay, sparsification_error_curve

        gradient = realistic_gradient(100_000, seed=0)
        report = fit_power_law_decay(gradient)
        curve = sparsification_error_curve(gradient, study.ks[:10])
        return report, curve

    benchmark(diagnose_one_gradient)

    rows = [
        {
            "iteration": it,
            "decay_exponent_p": study.reports[it].decay_exponent,
            "r_squared": study.reports[it].r_squared,
            "compressible": study.reports[it].is_compressible,
        }
        for it in study.iterations
    ]
    print("\n" + format_table(rows, title="Figure 7a — power-law decay of sorted gradients"))

    # Figure 7a: the decay exponent exceeds the 0.5 compressibility threshold.
    for it in study.iterations:
        assert study.reports[it].decay_exponent > 0.5

    # Figure 7b: sigma_k decreases monotonically and hits zero at k = d.
    for it in study.iterations:
        curve = study.error_curves[it]
        assert np.all(np.diff(curve) <= 1e-9)
        assert curve[-1] == pytest.approx(0.0, abs=1e-9)
        # Keeping 10% of elements removes a large share of the energy.
        ten_percent_idx = np.searchsorted(study.ks, 0.1 * study.ks[-1])
        assert curve[ten_percent_idx] < 0.7 * curve[0]
