"""Figure 6: ImageNet-scale training — ResNet50 and VGG19 proxies.

The paper trains under a 5-hour wall-clock budget and compares top-1 accuracy,
throughput and estimation quality.  The simulated equivalent compares the
quality reached per unit of simulated time (the speed-up metric), throughput
and estimation quality on the ImageNet-scale proxy benchmarks.
"""

import pytest

from repro.harness import format_speedup_summary

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")


@pytest.mark.parametrize(
    "benchmark_name,ratio",
    [("resnet50-imagenet", 0.01), ("vgg19-imagenet", 0.001)],
)
def test_fig6_imagenet_proxies(benchmark, benchmark_name, ratio):
    comparison = benchmark.pedantic(
        lambda: cached_comparison(benchmark_name, COMPRESSORS, (ratio,), iterations=40),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 6 — {benchmark_name} at ratio {ratio}")
    print(format_speedup_summary(comparison.rows))
    rows = {r.compressor: r for r in comparison.rows}

    # Both ImageNet models are communication bound (72% / 83% overhead):
    # compression buys substantial throughput, and exact Top-k trails the
    # threshold-estimation methods because of its compression overhead.
    assert rows["sidco-e"].throughput_vs_baseline > 1.5
    assert rows["sidco-e"].throughput_vs_baseline > rows["topk"].throughput_vs_baseline

    # Accuracy-per-time (the paper's accuracy-within-budget comparison): the
    # compressed run still makes quality progress per unit time.  At quick
    # bench scale the absolute accuracy after a few dozen iterations is noisy,
    # so only a loose lower bound is asserted here; EXPERIMENTS.md records the
    # longer-run numbers.
    assert rows["sidco-e"].speedup_vs_baseline > 0.3

    # Estimation quality stays in a sane band for SIDCo.
    assert 0.3 < rows["sidco-e"].estimation_quality < 3.0
