"""Figure 1: compression micro-benchmark on a VGG16-sized gradient.

(a) speed-up over Top-k on GPU, (b) speed-up over Top-k on CPU, (c) threshold
estimation quality (k_hat / k), for ratios {0.1, 0.01, 0.001}.
"""

import pytest

from repro.gradients import MODEL_DIMENSIONS
from repro.harness import format_table, quality_matrix, run_microbenchmark, speedup_matrix

RATIOS = (0.1, 0.01, 0.001)


@pytest.fixture(scope="module")
def rows():
    return run_microbenchmark(
        MODEL_DIMENSIONS["vgg16"], ratios=RATIOS, sample_size=400_000, warmup_calls=12, seed=0
    )


def test_fig1_microbenchmark(benchmark, rows):
    def run_one_ratio():
        return run_microbenchmark(
            MODEL_DIMENSIONS["vgg16"], ratios=(0.001,), sample_size=200_000, warmup_calls=6, seed=1
        )

    benchmark.pedantic(run_one_ratio, rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 1 — VGG16-sized gradient micro-benchmark"))

    gpu = speedup_matrix(rows, "gpu-v100")
    cpu = speedup_matrix(rows, "cpu-xeon")
    quality = quality_matrix(rows)

    # Figure 1a: on GPU every scheme beats Top-k; SIDCo-E is the fastest.
    for ratio in RATIOS:
        for name in ("dgc", "redsync", "gaussiank", "sidco-e"):
            assert gpu[(name, ratio)] > 1.0
        assert gpu[("sidco-e", ratio)] >= max(gpu[(n, ratio)] for n in ("dgc", "redsync", "gaussiank"))
        assert gpu[("sidco-e", ratio)] > 20.0

    # Figure 1b: on CPU DGC drops below Top-k while threshold estimators stay above.
    for ratio in RATIOS:
        assert cpu[("dgc", ratio)] < 1.0
        assert cpu[("sidco-e", ratio)] > 1.0

    # Figure 1c: SIDCo estimates the target ratio accurately; the Gaussian
    # heuristics drift far from it at aggressive ratios.
    assert 0.6 < quality[("sidco-e", 0.001)] < 1.5
    heuristic_error = max(
        abs(quality[("redsync", 0.001)] - 1.0), abs(quality[("gaussiank", 0.001)] - 1.0)
    )
    sidco_error = abs(quality[("sidco-e", 0.001)] - 1.0)
    assert heuristic_error > sidco_error
