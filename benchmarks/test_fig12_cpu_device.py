"""Figure 12: training throughput when the CPU is the compression device.

With compression running on the CPU, DGC's random sampling makes it the
slowest compressor while SIDCo keeps the highest throughput — the device
asymmetry of Figure 1 carried into end-to-end training.
"""


from repro.harness import format_speedup_summary
from repro.perfmodel import CPU_XEON

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "sidco-e")
RATIO = 0.001


def test_fig12_cpu_compression_device(benchmark):
    comparison = benchmark.pedantic(
        lambda: cached_comparison("lstm-ptb", COMPRESSORS, (RATIO,), iterations=40, device=CPU_XEON),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 12 — CPU as the compression device (lstm-ptb, ratio 0.001)")
    print(format_speedup_summary(comparison.rows))
    rows = {r.compressor: r for r in comparison.rows}

    # SIDCo has the highest training throughput on the CPU device.
    assert rows["sidco-e"].throughput_vs_baseline >= rows["topk"].throughput_vs_baseline
    assert rows["sidco-e"].throughput_vs_baseline > rows["dgc"].throughput_vs_baseline

    # DGC is the most penalised by the CPU device (its random sampling is the
    # expensive primitive there) — it falls behind Top-k.
    assert rows["dgc"].throughput_vs_baseline < rows["topk"].throughput_vs_baseline * 1.1
