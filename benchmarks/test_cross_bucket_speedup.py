"""Cross-bucket network pipelining on per-link lanes vs the PR-4 scheduler.

PR 4's iteration scheduler serialises buckets on one network lane as whole
occupancies: while bucket *i*'s inter-node exchange crawls over the slow
Ethernet, the fast intra-node fabric sits idle even though bucket *i+1*'s
intra-node gather could already be running.  ``cross_bucket_pipeline=True``
splits the network into per-link lanes and slides each bucket's phase template
to the earliest time it fits on every fabric it uses.

Two comparisons are reported, both against the **PR-4 scheduler** (serial
network lane) pricing the serial hierarchical all-gather:

* ``scheduler_only_speedup`` — identical collective pricing, only the
  scheduler toggled.  The win equals the intra-phase share of each bucket's
  collective: large on ``torus-2d`` (the row/column fabrics are comparable,
  ~1.5x), structurally modest on ``ethernet-4x8`` (InfiniBand is ~17x the
  effective TCP rate, so intra phases are <10% of a bucket, ~1.09x).
* ``full_stack_speedup`` — the tuned cross-bucket stack (per-link lanes +
  chunk-placed phases + uniform sparse dedup) vs the same PR-4 baseline,
  following the precedent of ``BENCH_dedup.json`` (which compared the tuned
  PR-4 stack against the PR-3 serial one).  ``vs_pr4_tuned_speedup``
  isolates what the new scheduler adds on top of the tuned PR-4 stack.

Acceptance bar: full-stack >= 1.10x on ``ethernet-4x8`` at the paper's
densest ratio (0.1), scheduler-only >= 1.3x on ``torus-2d``, and the
cross-bucket schedule never slower than the serial lane anywhere.  Results
land in ``BENCH_cross_bucket.json`` at the repo root.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_cross_bucket_speedup.py -v``.
Setting ``SIDCO_SMOKE_DIMENSION`` (e.g. ``500000``) shrinks the gradient for a
CI execution smoke: the schedule invariants still run, the speedup bars and
the artifact write are skipped (they are calibrated to the full 25M scale).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.compressors import create_compressor
from repro.distributed import (
    CollectiveModel,
    SparseAggregateModel,
    TimelineModel,
    compute_time_for_overhead,
    get_topology,
)
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100
from repro.pipeline import CompressionPipeline

#: The acceptance-scale model (matches the overlap/topology/dedup benchmarks).
FULL_DIMENSION = 25_000_000
DIMENSION = int(os.environ.get("SIDCO_SMOKE_DIMENSION", FULL_DIMENSION))
SMOKE = DIMENSION < FULL_DIMENSION
#: Paper compression ratios the scheduler is evaluated at; the acceptance
#: bars are pinned at the densest (0.1), where communication dominates.
RATIOS = (0.1, 0.05, 0.01)
ACCEPTANCE_RATIO = 0.1
#: Table 1's most communication-bound row (LSTM-PTB, 94% comm overhead) —
#: the workload the paper's overlap story targets.
COMM_OVERHEAD = 0.94
PIPELINE_CHUNKS = 8

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cross_bucket.json"

SCENARIOS = ("ethernet-4x8", "torus-2d")


def _serial_model(preset: str) -> CollectiveModel:
    """The PR-4 baseline pricing: serial hierarchical phases, knobs off."""
    return CollectiveModel(get_topology(preset), allgather_algorithm="hierarchical")


def _tuned_model(preset: str) -> CollectiveModel:
    """The tuned pricing: chunk-placed phases + uniform sparse dedup."""
    return CollectiveModel(
        get_topology(preset),
        allgather_algorithm="hierarchical",
        pipeline_chunks=PIPELINE_CHUNKS,
        allgather_dedup=SparseAggregateModel("uniform"),
    )


def _timeline(collective: CollectiveModel, *, cross_bucket: bool) -> TimelineModel:
    topology = collective.topology
    compute = compute_time_for_overhead(
        topology.inter_node, topology.num_workers, DIMENSION, COMM_OVERHEAD
    )
    return TimelineModel(
        network=topology.inter_node,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=topology.num_workers,
        model_dimension=DIMENSION,
        collective=collective,
        cross_bucket_pipeline=cross_bucket,
    )


@pytest.fixture(scope="module")
def worker_results():
    gradient = realistic_gradient(DIMENSION, seed=0)
    # The default 4 MiB DDP budget at full scale; a smoke-sized gradient keeps
    # the same ~16-bucket structure so there is still a pipeline to schedule.
    pipeline = CompressionPipeline(
        create_compressor("topk"),
        bucket_bytes=4 * 2**20 if not SMOKE else max(64, DIMENSION * 4 // 16),
    )
    results = {ratio: [pipeline.compress(gradient, ratio)] for ratio in RATIOS}
    assert results[ACCEPTANCE_RATIO][0].metadata["num_buckets"] > 1
    return results


def _timings(preset: str, results, *, tuned: bool):
    model = _tuned_model(preset) if tuned else _serial_model(preset)
    serial_lane = _timeline(model, cross_bucket=False).compressed_iteration(
        results, overlap="comm"
    )
    cross = _timeline(model, cross_bucket=True).compressed_iteration(
        results, overlap="comm"
    )
    return serial_lane, cross


@pytest.mark.parametrize("preset", SCENARIOS)
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("tuned", (False, True))
def test_cross_bucket_never_slower(preset, ratio, tuned, worker_results):
    serial_lane, cross = _timings(preset, worker_results[ratio], tuned=tuned)
    assert cross.total <= serial_lane.total * (1.0 + 1e-9)
    assert cross.cross_bucket_pipeline and not serial_lane.cross_bucket_pipeline
    # Scheduling never reprices the work, it only packs it tighter.
    assert cross.communication == serial_lane.communication
    assert cross.schedule.total_comm_seconds == pytest.approx(
        serial_lane.schedule.total_comm_seconds
    )


@pytest.mark.parametrize("preset", SCENARIOS)
def test_per_link_lanes_raise_utilization(preset, worker_results):
    serial_lane, cross = _timings(preset, worker_results[ACCEPTANCE_RATIO], tuned=False)
    serial_util = serial_lane.schedule.link_utilization()
    cross_util = cross.schedule.link_utilization()
    intra = get_topology(preset).intra_node.name
    assert cross_util[intra]["utilization"] >= serial_util[intra]["utilization"]
    # Same busy seconds per fabric — the window shrank, not the work.
    for link in cross_util:
        assert cross_util[link]["busy_seconds"] == pytest.approx(
            serial_util[link]["busy_seconds"]
        )


@pytest.mark.skipif(SMOKE, reason="speedup bars calibrated to the 25M-parameter scale")
def test_scheduler_only_speedup_on_torus(worker_results):
    serial_lane, cross = _timings("torus-2d", worker_results[ACCEPTANCE_RATIO], tuned=False)
    speedup = serial_lane.total / cross.total
    assert speedup >= 1.3, (
        f"scheduler-only cross-bucket speedup {speedup:.3f}x below 1.3x on torus-2d"
    )


@pytest.mark.skipif(SMOKE, reason="speedup bars calibrated to the 25M-parameter scale")
def test_scheduler_only_gain_bounded_by_intra_share_on_ethernet(worker_results):
    # InfiniBand is ~17x the effective TCP rate on ethernet-4x8, so the
    # hideable intra share caps the same-pricing win below the 1.10x bar —
    # the full-stack comparison below is where that bar is cleared.
    serial_lane, cross = _timings(
        "ethernet-4x8", worker_results[ACCEPTANCE_RATIO], tuned=False
    )
    speedup = serial_lane.total / cross.total
    assert 1.05 <= speedup <= 1.10


@pytest.mark.skipif(SMOKE, reason="speedup bars calibrated to the 25M-parameter scale")
def test_full_stack_acceptance_on_ethernet(worker_results):
    baseline, _ = _timings("ethernet-4x8", worker_results[ACCEPTANCE_RATIO], tuned=False)
    _, cross_tuned = _timings(
        "ethernet-4x8", worker_results[ACCEPTANCE_RATIO], tuned=True
    )
    speedup = baseline.total / cross_tuned.total
    assert speedup >= 1.10, (
        f"full cross-bucket stack {speedup:.3f}x below the 1.10x acceptance bar "
        "vs the PR-4 scheduler on ethernet-4x8"
    )


@pytest.mark.skipif(SMOKE, reason="artifact records full-scale numbers only")
def test_emit_cross_bucket_bench_artifact(worker_results, emit_artifact):
    scenarios = []
    for preset in SCENARIOS:
        topology = get_topology(preset)
        rows = []
        for ratio in RATIOS:
            results = worker_results[ratio]
            pr4_serial, cross_serial = _timings(preset, results, tuned=False)
            pr4_tuned, cross_tuned = _timings(preset, results, tuned=True)
            rows.append(
                {
                    "ratio": ratio,
                    "num_buckets": results[0].metadata["num_buckets"],
                    "pr4_scheduler_seconds": pr4_serial.total,
                    "cross_bucket_seconds": cross_serial.total,
                    "pr4_tuned_seconds": pr4_tuned.total,
                    "cross_bucket_tuned_seconds": cross_tuned.total,
                    "scheduler_only_speedup": pr4_serial.total / cross_serial.total,
                    "full_stack_speedup": pr4_serial.total / cross_tuned.total,
                    "vs_pr4_tuned_speedup": pr4_tuned.total / cross_tuned.total,
                    "link_utilization": {
                        "pr4_scheduler": pr4_serial.schedule.link_utilization(),
                        "cross_bucket": cross_serial.schedule.link_utilization(),
                    },
                }
            )
        scenarios.append(
            {
                "topology": {
                    "name": topology.name,
                    "num_nodes": topology.num_nodes,
                    "devices_per_node": topology.devices_per_node,
                    "inter_node": topology.inter_node.name,
                    "intra_node": topology.intra_node.name,
                },
                "iterations": rows,
            }
        )

    acceptance = next(
        row
        for scenario in scenarios
        if scenario["topology"]["name"] == "ethernet-4x8"
        for row in scenario["iterations"]
        if row["ratio"] == ACCEPTANCE_RATIO
    )
    artifact = {
        "benchmark": "cross_bucket_speedup",
        "dimension": DIMENSION,
        "comm_overhead": COMM_OVERHEAD,
        "overlap": "comm",
        "baseline": "PR-4 scheduler: serial network lane, serial hierarchical phases",
        "tuned_stack": (
            f"cross-bucket per-link lanes + pipeline_chunks={PIPELINE_CHUNKS} "
            "+ uniform dedup"
        ),
        "speedup": acceptance["full_stack_speedup"],
        "scheduler_only_speedup": acceptance["scheduler_only_speedup"],
        "scenarios": scenarios,
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "cross_bucket_speedup",
        params={
            key: artifact[key]
            for key in ("dimension", "comm_overhead", "overlap", "baseline", "tuned_stack")
        },
        metrics={
            "speedup": artifact["speedup"],
            "scheduler_only_speedup": artifact["scheduler_only_speedup"],
        },
        records=[
            {
                "workload": "cross_bucket_speedup",
                "config": {"topology": scenario["topology"]["name"], "ratio": row["ratio"]},
                "metrics": {
                    "pr4_scheduler_seconds": row["pr4_scheduler_seconds"],
                    "cross_bucket_tuned_seconds": row["cross_bucket_tuned_seconds"],
                    "scheduler_only_speedup": row["scheduler_only_speedup"],
                    "full_stack_speedup": row["full_stack_speedup"],
                },
            }
            for scenario in scenarios
            for row in scenario["iterations"]
        ],
        legacy=artifact,
    )
    assert written["speedup"] >= 1.10
    for scenario in written["scenarios"]:
        for row in scenario["iterations"]:
            assert row["scheduler_only_speedup"] >= 1.0 - 1e-9
            assert row["full_stack_speedup"] > 1.0
