"""Figure 14: compression speed-up over Top-k for real model sizes (GPU and CPU).

Covers ResNet20, VGG16, ResNet50 and the PTB LSTM dimensions from Table 1.
"""

import pytest

from repro.harness import format_table, run_model_microbenchmarks, speedup_matrix

MODELS = ("resnet20", "vgg16", "resnet50", "lstm-ptb")
RATIOS = (0.1, 0.01, 0.001)


@pytest.fixture(scope="module")
def results():
    return run_model_microbenchmarks(models=MODELS, ratios=RATIOS, sample_size=300_000, warmup_calls=10, seed=0)


def test_fig14_model_speedups(benchmark, results):
    benchmark.pedantic(
        lambda: run_model_microbenchmarks(models=("resnet20",), ratios=(0.01,), sample_size=100_000, warmup_calls=4),
        rounds=1,
        iterations=1,
    )
    for model, rows in results.items():
        print(f"\nFigure 14 — {model}")
        print(format_table(rows))

    for model in MODELS:
        gpu = speedup_matrix(results[model], "gpu-v100")
        cpu = speedup_matrix(results[model], "cpu-xeon")
        for ratio in RATIOS:
            # GPU: threshold estimation (SIDCo) always beats Top-k and DGC.
            assert gpu[("sidco-e", ratio)] > 1.0
            assert gpu[("sidco-e", ratio)] >= gpu[("dgc", ratio)]
            # CPU: DGC is below Top-k, SIDCo above.
            assert cpu[("dgc", ratio)] < 1.0
            assert cpu[("sidco-e", ratio)] > 1.0

    # Larger models widen SIDCo's GPU advantage over Top-k (launch overheads
    # amortise away and the Top-k selection dominates).
    small_gain = speedup_matrix(results["resnet20"], "gpu-v100")[("sidco-e", 0.001)]
    large_gain = speedup_matrix(results["vgg16"], "gpu-v100")[("sidco-e", 0.001)]
    assert large_gain > small_gain
