"""Figure 15: absolute compression latency for real model sizes (GPU and CPU)."""

import pytest

from repro.gradients import MODEL_DIMENSIONS
from repro.harness import format_table, run_model_microbenchmarks

MODELS = ("resnet20", "vgg16", "resnet50", "lstm-ptb")


@pytest.fixture(scope="module")
def results():
    return run_model_microbenchmarks(models=MODELS, ratios=(0.001,), sample_size=300_000, warmup_calls=10, seed=0)


def _latency(rows, compressor, device):
    return next(r.latency_seconds for r in rows if r.compressor == compressor and r.device == device)


def test_fig15_model_latency(benchmark, results):
    benchmark.pedantic(
        lambda: run_model_microbenchmarks(models=("vgg16",), ratios=(0.001,), sample_size=100_000, warmup_calls=4),
        rounds=1,
        iterations=1,
    )
    for model, rows in results.items():
        print(f"\nFigure 15 — {model} (latency seconds)")
        print(format_table(rows, columns=["compressor", "device", "ratio", "latency_seconds"]))

    # Latency grows with model size for every compressor/device.
    ordered = sorted(MODELS, key=lambda m: MODEL_DIMENSIONS[m])
    for device in ("gpu-v100", "cpu-xeon"):
        for compressor in ("topk", "sidco-e"):
            latencies = [_latency(results[m], compressor, device) for m in ordered]
            assert all(b > a for a, b in zip(latencies, latencies[1:]))

    # CPU compression is slower than GPU compression for the same scheme, and
    # Top-k on the GPU for the LSTM-sized vector costs hundreds of milliseconds
    # (the order of magnitude in the paper's Figure 15d).
    assert _latency(results["lstm-ptb"], "topk", "gpu-v100") > 0.05
    for model in MODELS:
        assert _latency(results[model], "sidco-e", "cpu-xeon") > _latency(results[model], "sidco-e", "gpu-v100")
