"""Figure 8: SID fits of ResNet-20 gradients *with* error compensation.

With EC the compressed-away residual is added back each iteration, so the
distribution the compressor sees is the convolution of the gradient with the
previous residual; the paper notes fitting becomes harder, especially at later
iterations.  This bench regenerates the fits with EC enabled and compares them
against the no-EC fits of Figure 2.
"""

import pytest

from repro.harness import format_table, gradient_fit_study

EARLY, LATE = 4, 30


@pytest.fixture(scope="module")
def studies():
    with_ec = gradient_fit_study(
        "resnet20-cifar10",
        use_error_feedback=True,
        capture_iterations=(EARLY, LATE),
        iterations=LATE + 4,
        num_workers=4,
        seed=0,
    )
    without_ec = gradient_fit_study(
        "resnet20-cifar10",
        use_error_feedback=False,
        capture_iterations=(EARLY, LATE),
        iterations=LATE + 4,
        num_workers=4,
        seed=0,
    )
    return with_ec, without_ec


def test_fig8_sid_fits_with_ec(benchmark, studies):
    with_ec, without_ec = studies

    def refit():
        from repro.harness.experiments import _fit_snapshot

        return _fit_snapshot(LATE, with_ec.snapshots[LATE])

    benchmark(refit)

    rows = []
    for label, study in (("with-EC", with_ec), ("no-EC", without_ec)):
        for iteration, report in study.fits.items():
            rows.append(
                {
                    "variant": label,
                    "iteration": iteration,
                    "best_sid": report.best_sid(),
                    "best_ks": min(
                        report.exponential.ks_statistic,
                        report.gamma.ks_statistic,
                        report.gpareto.ks_statistic,
                    ),
                }
            )
    print("\n" + format_table(rows, title="Figure 8 — SID fits with error compensation"))

    # The SIDs still describe the EC-corrected gradients (the compressor keeps
    # working), even if the fit is somewhat looser than without EC.
    for report in with_ec.fits.values():
        best_ks = min(report.exponential.ks_statistic, report.gamma.ks_statistic, report.gpareto.ks_statistic)
        assert best_ks < 0.6
    # EC-corrected gradients remain compressible.
    for comp in with_ec.compressibility.values():
        assert comp.decay_exponent > 0.25
