"""Compression-ratio x straggler-tolerance tradeoff under fault injection.

The paper's comm-bound argument says aggressive compression shrinks the
communication share of an iteration.  On an unreliable cluster that cuts both
ways, and this benchmark measures the interaction on two fabrics:

* **Compute stragglers** — a worker whose backprop/compress lane runs ``c``
  times slower stretches the cluster iteration by roughly
  ``(c * compute + comm) / (compute + comm)``.  Compression shrinks ``comm``,
  so the *same* straggler hurts *more* at aggressive ratios: compression makes
  the cluster relatively **less** tolerant of compute stragglers.
* **Link degradation** — a worker whose transfers run ``d`` times slower
  stretches the iteration via the comm share instead, so compression
  **protects**: the overhead at ratio 0.01 is below the overhead at 0.1.
* **Mitigation policies** — ``backup-workers`` (cut the slowest k) and the
  SAGN-style ``time-window`` accumulation bound the overhead at the price of
  dropped gradients; ``full-sync`` is today's barrier.

Acceptance bars, each checked on *every* preset:

* homogeneous (severity 1.0, full-sync) points report an overhead of exactly
  1.0 — the fault layer at defaults is bit-for-bit the clean schedule,
* compute-straggler overhead is strictly larger at ratio 0.01 than at 0.1,
* link-degradation overhead is strictly smaller at ratio 0.01 than at 0.1,
* both mitigation policies price at or below the full-sync barrier, and
  ``backup-workers`` strictly cuts the severity-4 straggler's overhead.

Results land in ``BENCH_straggler.json`` at the repo root.  Run with
``PYTHONPATH=src python -m pytest benchmarks/test_straggler_tolerance.py -v``.
Every evaluation is proxy-scale, so ``SIDCO_SMOKE_DIMENSION`` does not shrink
the workload; the CI smoke runs the full assertions and only skips the
artifact write.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import SweepCache, WorkloadSpec, evaluate_point
from repro.harness.sweep import SweepPoint

SMOKE = "SIDCO_SMOKE_DIMENSION" in os.environ

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_straggler.json"

#: Fabrics the tradeoff is measured on: the paper-style two-level Ethernet
#: cluster and the multi-level torus.
PRESETS: tuple[str, ...] = ("ethernet-4x8", "torus-2d")
RATIOS: tuple[float, ...] = (0.1, 0.01)
SEVERITIES: tuple[float, ...] = (1.0, 2.0, 4.0)
LINK_FACTORS: tuple[float, ...] = (4.0,)

#: Mitigation policies compared at every severity (label -> fault knobs).
POLICIES: dict[str, dict] = {
    "full-sync": {"sync_policy": "full-sync"},
    "backup-1": {"sync_policy": "backup-workers", "backup_workers": 1},
    "window-1.25": {"sync_policy": "time-window", "time_window_factor": 1.25},
}

#: The most communication-bound Table 1 job (LSTM-PTB, 94% comm overhead) —
#: where the compression x straggler interaction is largest.
WORKLOAD = WorkloadSpec(name="lstm-ptb", dimension=66_034_000, comm_overhead=0.94)

_CACHE = SweepCache()


def _evaluate(preset: str, ratio: float, **fault_knobs) -> dict:
    point = SweepPoint.from_config(
        WORKLOAD.name, {"topology": preset, "ratio": ratio, **fault_knobs}
    )
    return {
        "config": point.config,
        "metrics": evaluate_point(WORKLOAD, point, cache=_CACHE),
    }


def _grid() -> list[dict]:
    """Every measured cell: presets x ratios x (severities x policies + links)."""
    rows = []
    for preset in PRESETS:
        for ratio in RATIOS:
            for severity in SEVERITIES:
                for label, knobs in POLICIES.items():
                    row = _evaluate(
                        preset, ratio, straggler_severity=severity, **knobs
                    )
                    row["policy"] = label
                    row["fault"] = f"compute-x{severity:g}"
                    rows.append(row)
            for factor in LINK_FACTORS:
                row = _evaluate(preset, ratio, link_degradation=factor)
                row["policy"] = "full-sync"
                row["fault"] = f"link-x{factor:g}"
                rows.append(row)
    return rows


def _overhead(rows, preset, ratio, fault, policy) -> float:
    for row in rows:
        if (
            row["config"]["topology"] == preset
            and row["config"]["ratio"] == ratio
            and row["fault"] == fault
            and row["policy"] == policy
        ):
            return row["metrics"]["straggler_overhead"]
    raise KeyError((preset, ratio, fault, policy))


@pytest.fixture(scope="module")
def grid():
    return _grid()


def test_homogeneous_points_pin_clean_schedule_exactly(grid):
    for preset in PRESETS:
        for ratio in RATIOS:
            for policy in POLICIES:
                row_overhead = _overhead(grid, preset, ratio, "compute-x1", policy)
                assert row_overhead == 1.0, (preset, ratio, policy)


def test_compression_reduces_compute_straggler_tolerance(grid):
    # The same 4x compute straggler hurts strictly more at the aggressive
    # ratio on every fabric: compression shrinks the comm share it hides in.
    for preset in PRESETS:
        mild = _overhead(grid, preset, 0.1, "compute-x4", "full-sync")
        aggressive = _overhead(grid, preset, 0.01, "compute-x4", "full-sync")
        assert aggressive > mild, (preset, mild, aggressive)


def test_compression_protects_against_link_degradation(grid):
    for preset in PRESETS:
        mild = _overhead(grid, preset, 0.1, "link-x4", "full-sync")
        aggressive = _overhead(grid, preset, 0.01, "link-x4", "full-sync")
        assert aggressive < mild, (preset, mild, aggressive)


def test_overhead_monotone_in_severity(grid):
    for preset in PRESETS:
        for ratio in RATIOS:
            overheads = [
                _overhead(grid, preset, ratio, f"compute-x{s:g}", "full-sync")
                for s in SEVERITIES
            ]
            assert overheads == sorted(overheads), (preset, ratio, overheads)


def test_mitigation_policies_bound_the_barrier(grid):
    for preset in PRESETS:
        for ratio in RATIOS:
            for severity in SEVERITIES:
                fault = f"compute-x{severity:g}"
                full = _overhead(grid, preset, ratio, fault, "full-sync")
                for policy in ("backup-1", "window-1.25"):
                    assert _overhead(grid, preset, ratio, fault, policy) <= full
            # Cutting the severity-4 straggler strictly helps.
            fault = "compute-x4"
            assert _overhead(grid, preset, ratio, fault, "backup-1") < _overhead(
                grid, preset, ratio, fault, "full-sync"
            )


@pytest.mark.skipif(SMOKE, reason="artifact records full-scale numbers only")
def test_emit_straggler_bench_artifact(grid, emit_artifact):
    interaction = {}
    for preset in PRESETS:
        compute_factor = _overhead(grid, preset, 0.01, "compute-x4", "full-sync") / _overhead(
            grid, preset, 0.1, "compute-x4", "full-sync"
        )
        link_factor = _overhead(grid, preset, 0.01, "link-x4", "full-sync") / _overhead(
            grid, preset, 0.1, "link-x4", "full-sync"
        )
        mitigation_gain = _overhead(grid, preset, 0.01, "compute-x4", "full-sync") / _overhead(
            grid, preset, 0.01, "compute-x4", "backup-1"
        )
        interaction[preset] = {
            "compute_straggler_interaction": compute_factor,
            "link_degradation_interaction": link_factor,
            "backup_mitigation_gain": mitigation_gain,
        }
        # The artifact must demonstrate a measurable interaction on every
        # preset: compression amplifies compute stragglers (> 1) and dampens
        # link degradation (< 1).
        assert compute_factor > 1.01, (preset, compute_factor)
        assert link_factor < 1.0, (preset, link_factor)
        assert mitigation_gain > 1.0, (preset, mitigation_gain)
    emit_artifact(
        ARTIFACT_PATH,
        "straggler_tolerance",
        params={
            "workload": {
                "name": WORKLOAD.name,
                "dimension": WORKLOAD.dimension,
                "comm_overhead": WORKLOAD.comm_overhead,
                "proxy_elements": WORKLOAD.proxy_elements,
            },
            "presets": list(PRESETS),
            "ratios": list(RATIOS),
            "severities": list(SEVERITIES),
            "link_factors": list(LINK_FACTORS),
            "policies": {label: dict(knobs) for label, knobs in POLICIES.items()},
        },
        metrics={
            f"{preset}:{key}": value
            for preset, entries in interaction.items()
            for key, value in entries.items()
        },
        records=[
            {
                "workload": WORKLOAD.name,
                "policy": row["policy"],
                "fault": row["fault"],
                "config": dict(row["config"]),
                "metrics": dict(row["metrics"]),
            }
            for row in grid
        ],
    )
