"""Ablation: single-stage vs multi-stage threshold fitting (Section 2.3 vs 2.4).

Sweeps the forced number of stages and shows that at aggressive ratios one
stage misplaces the threshold by orders of magnitude while two or more stages
land within the paper's tolerance band — the design choice SIDCo is built on.
"""

import numpy as np
import pytest

from repro.core.threshold import estimate_multi_stage
from repro.gradients import realistic_gradient
from repro.harness import format_table

STAGES = (1, 2, 3, 4)
RATIOS = (0.01, 0.001, 0.0001)


@pytest.fixture(scope="module")
def quality_by_stage():
    out = {}
    for ratio in RATIOS:
        for stages in STAGES:
            qualities = []
            for seed in range(8):
                abs_grad = np.abs(realistic_gradient(150_000, seed=seed))
                estimate = estimate_multi_stage(abs_grad, ratio, "exponential", stages)
                achieved = float(np.mean(abs_grad >= estimate.threshold))
                qualities.append(achieved / ratio)
            out[(ratio, stages)] = float(np.mean(qualities))
    return out


def test_ablation_stage_count(benchmark, quality_by_stage):
    benchmark(
        lambda: estimate_multi_stage(np.abs(realistic_gradient(150_000, seed=0)), 0.001, "exponential", 2)
    )
    rows = [
        {"ratio": ratio, "stages": stages, "khat_over_k": quality_by_stage[(ratio, stages)]}
        for ratio in RATIOS
        for stages in STAGES
    ]
    print("\n" + format_table(rows, title="Ablation — estimation quality vs number of stages"))

    for ratio in RATIOS:
        single = quality_by_stage[(ratio, 1)]
        multi = quality_by_stage[(ratio, 2)]
        # Single-stage fitting badly over-selects at aggressive ratios on
        # mixture gradients; two stages land within ~35% of the target.
        assert abs(multi - 1.0) < abs(single - 1.0)
        assert abs(multi - 1.0) < 0.35
    assert quality_by_stage[(0.0001, 1)] > 10.0  # the failure mode multi-stage fixes

    # Adding further stages never makes things much worse.
    for ratio in RATIOS:
        for stages in (3, 4):
            assert abs(quality_by_stage[(ratio, stages)] - 1.0) < 0.5
