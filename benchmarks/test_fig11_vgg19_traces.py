"""Figure 11: VGG19-ImageNet traces at ratio 0.001.

(a) smoothed compression ratio — SIDCo variants estimate the threshold
accurately while GaussianKSGD collapses and RedSync fluctuates;
(b) training loss over wall time — SIDCo is never behind Top-k.
"""


from repro.harness import extract_traces, format_series

from conftest import cached_comparison

COMPRESSORS = ("topk", "redsync", "gaussiank", "sidco-e")
RATIO = 0.001


def test_fig11_vgg19_traces(benchmark):
    comparison = benchmark.pedantic(
        lambda: cached_comparison("vgg19-imagenet", COMPRESSORS, (RATIO,), iterations=40),
        rounds=1,
        iterations=1,
    )
    traces = {name: extract_traces(comparison.runs[(name, RATIO)], window=8) for name in COMPRESSORS}
    for name, trace in traces.items():
        xs = trace.iterations[: len(trace.running_ratio)]
        print("\n" + format_series(f"vgg19 ratio[{name}]", xs, trace.running_ratio))

    # SIDCo's achieved ratio settles near the target.
    assert 0.3 * RATIO < traces["sidco-e"].running_ratio[-1] < 3.0 * RATIO

    # SIDCo's simulated run time is below Top-k's (same iterations, cheaper compression).
    sidco_time = comparison.runs[("sidco-e", RATIO)].metrics.total_time
    topk_time = comparison.runs[("topk", RATIO)].metrics.total_time
    assert sidco_time < topk_time

    # Loss still decreases under compression.
    losses = traces["sidco-e"].losses
    assert losses[-10:].mean() <= losses[:10].mean()
