"""Compression-call throughput: bucketed vectorized SIDCo vs the unbucketed path.

The bucketed pipeline's batched fitting pass eliminates the unbucketed
compressor's redundant full-vector work (duplicate ``|g|`` passes, shifted-
sample copies, unused moments) and fits every bucket's SID in fused NumPy
reductions.  This module demonstrates the acceptance bar for the pipeline:

* >= 2x compression-call throughput on a 25M-element synthetic gradient,
* with equivalent selection — both paths land inside the stage controller's
  tolerance band around the target ratio.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_pipeline_throughput.py -v``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.compressors import create_compressor
from repro.core.sidco import SIDCo
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100, compression_throughput
from repro.pipeline import CompressionPipeline

#: The acceptance-scale gradient (Figure 16's 26M-element tensor class).
DIMENSION = 25_000_000
RATIO = 0.001
WARMUP_CALLS = 3
TIMED_CALLS = 5


@pytest.fixture(scope="module")
def gradient():
    return realistic_gradient(DIMENSION, seed=0)


def _best_call_seconds(compressor, gradient, ratio=RATIO):
    """Fastest of several timed calls, after warm-up brings the stage
    controller to steady state (so both paths fit the same number of stages)."""
    for _ in range(WARMUP_CALLS):
        result = compressor.compress(gradient, ratio)
    best = float("inf")
    for _ in range(TIMED_CALLS):
        start = time.perf_counter()
        result = compressor.compress(gradient, ratio)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_bucketed_sidco_at_least_2x_throughput(gradient):
    plain = SIDCo("exponential")
    bucketed = create_compressor("sidco-e-bucketed")

    plain_seconds, plain_result = _best_call_seconds(plain, gradient)
    bucketed_seconds, bucketed_result = _best_call_seconds(bucketed, gradient)
    speedup = plain_seconds / bucketed_seconds

    # Equivalent selection: both paths end up inside the controller's band.
    tolerance = plain.controller.config.error_tolerance
    assert abs(plain_result.achieved_ratio / RATIO - 1.0) <= tolerance + 0.05
    assert abs(bucketed_result.achieved_ratio / RATIO - 1.0) <= tolerance + 0.05

    assert bucketed_result.metadata["num_buckets"] > 1
    assert speedup >= 2.0, (
        f"bucketed vectorized SIDCo must be >= 2x faster than the unbucketed path, "
        f"got {speedup:.2f}x ({plain_seconds * 1e3:.1f} ms vs {bucketed_seconds * 1e3:.1f} ms)"
    )


def test_vectorized_beats_per_bucket_scalar_loop():
    # Same bucketing, same thresholds — the only difference is batched versus
    # per-bucket fitting, so any win is pure vectorisation.
    gradient = realistic_gradient(5_000_000, seed=1)
    vectorized = CompressionPipeline(SIDCo("exponential"), bucket_bytes=512 * 1024, vectorized=True)
    loop = CompressionPipeline(SIDCo("exponential"), bucket_bytes=512 * 1024, vectorized=False)
    vec_seconds, vec_result = _best_call_seconds(vectorized, gradient)
    loop_seconds, loop_result = _best_call_seconds(loop, gradient)
    np.testing.assert_array_equal(vec_result.sparse.indices, loop_result.sparse.indices)
    assert vec_seconds < loop_seconds


def test_modelled_throughput_prefers_batched_trace():
    # The device cost model sees the same structure the wall clock does: the
    # batched fast path emits one fused launch per primitive, the scalar loop
    # pays the launch overhead once per bucket.
    gradient = realistic_gradient(2_000_000, seed=2)
    vectorized = CompressionPipeline(SIDCo("exponential"), bucket_bytes=128 * 1024, vectorized=True)
    loop = CompressionPipeline(SIDCo("exponential"), bucket_bytes=128 * 1024, vectorized=False)
    vec_result = vectorized.compress(gradient, RATIO)
    loop_result = loop.compress(gradient, RATIO)
    assert compression_throughput(vec_result, GPU_V100) > compression_throughput(loop_result, GPU_V100)
