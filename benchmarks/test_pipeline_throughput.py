"""Compression-call throughput: the registry's vectorized bucket-axis paths.

PR 1 set the precedent for SIDCo: the bucketed pipeline's batched fitting
pass eliminates the unbucketed compressor's redundant full-vector work and
fits every bucket in fused NumPy passes, clearing a >= 2x call-throughput bar
on a 25M-element gradient.  This module extends that bar registry-wide: every
registry compressor now implements ``fit_all_buckets``, and the heavy
threshold estimators — DGC, RedSync, GaussianK — must each clear the same
ratcheted >= 2x floor against their unbucketed scalar baseline.  The sweep
emits ``BENCH_registry_throughput.json`` at the repo root with per-compressor
unbucketed / per-bucket-loop / vectorized timings.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_pipeline_throughput.py -v``.
Setting ``SIDCO_SMOKE_DIMENSION`` (e.g. ``500000``) shrinks the gradient for a
CI execution smoke: every registry path still executes and stays equivalent,
the speedup floors and the artifact write are skipped (they are calibrated to
the full 25M scale).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compressors import create_compressor
from repro.core.sidco import SIDCo
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100, compression_throughput
from repro.pipeline import CompressionPipeline

#: The acceptance-scale gradient (Figure 16's 26M-element tensor class).
FULL_DIMENSION = 25_000_000
DIMENSION = int(os.environ.get("SIDCO_SMOKE_DIMENSION", FULL_DIMENSION))
SMOKE = DIMENSION < FULL_DIMENSION
RATIO = 0.001
WARMUP_CALLS = 3
TIMED_CALLS = 5
#: Fewer reps for the registry sweep — six compressors, three paths each.
SWEEP_WARMUP = 2
SWEEP_TIMED = 3

#: Registry compressors benchmarked by the sweep ("none" has nothing to fit;
#: the sidco-* variants keep their dedicated PR-1 benchmark below).
SWEEP_NAMES = ("topk", "dgc", "redsync", "gaussiank", "randomk", "hard_threshold")
#: The heavy threshold estimators held to the ratcheted floor.
FLOOR_NAMES = ("dgc", "redsync", "gaussiank")
MIN_SPEEDUP = 2.0

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_registry_throughput.json"


@pytest.fixture(scope="module")
def gradient():
    return realistic_gradient(DIMENSION, seed=0)


def _best_call_seconds(compressor, gradient, ratio=RATIO, warmup=WARMUP_CALLS, timed=TIMED_CALLS):
    """Fastest of several timed calls, after warm-up brings any adaptive
    state (stage controllers, threshold scales) to steady state."""
    for _ in range(warmup):
        result = compressor.compress(gradient, ratio)
    best = float("inf")
    for _ in range(timed):
        start = time.perf_counter()
        result = compressor.compress(gradient, ratio)
        best = min(best, time.perf_counter() - start)
    return best, result


def _bucket_bytes() -> int:
    # The default 4 MiB DDP budget at full scale; a smoke-sized gradient keeps
    # a comparable ~16-bucket structure so the batched paths still batch.
    return 4 * 2**20 if not SMOKE else max(64, DIMENSION * 4 // 16)


@pytest.fixture(scope="module")
def sweep_timings(gradient):
    """Unbucketed / scalar-loop / vectorized call timings per registry name.

    Computed lazily and shared by the floor tests and the artifact emitter so
    each (compressor, path) pair is timed exactly once per session.
    """
    cache: dict[str, dict] = {}

    def measure(name: str) -> dict:
        if name in cache:
            return cache[name]
        unbucketed_s, _ = _best_call_seconds(
            create_compressor(name), gradient, warmup=SWEEP_WARMUP, timed=SWEEP_TIMED
        )
        loop_s, loop_result = _best_call_seconds(
            CompressionPipeline(create_compressor(name), bucket_bytes=_bucket_bytes(), vectorized=False),
            gradient,
            warmup=SWEEP_WARMUP,
            timed=SWEEP_TIMED,
        )
        vec_s, vec_result = _best_call_seconds(
            CompressionPipeline(create_compressor(name), bucket_bytes=_bucket_bytes(), vectorized=True),
            gradient,
            warmup=SWEEP_WARMUP,
            timed=SWEEP_TIMED,
        )
        # The two bucketed paths must agree on the selection before any
        # timing is trusted (seed-twin instances make the RNG compressors
        # comparable).
        np.testing.assert_array_equal(vec_result.sparse.indices, loop_result.sparse.indices)
        assert vec_result.metadata["num_buckets"] > 1
        cache[name] = {
            "compressor": name,
            "unbucketed_ms": unbucketed_s * 1e3,
            "bucketed_loop_ms": loop_s * 1e3,
            "vectorized_ms": vec_s * 1e3,
            "speedup_vs_unbucketed": unbucketed_s / vec_s,
            "speedup_vs_loop": loop_s / vec_s,
            "achieved_ratio": vec_result.achieved_ratio,
        }
        return cache[name]

    return measure


@pytest.mark.parametrize("name", SWEEP_NAMES)
def test_registry_vectorized_path_executes_and_matches(name, gradient):
    """Execution smoke at any scale: the batched path runs and equals the loop."""
    vec = CompressionPipeline(create_compressor(name), bucket_bytes=_bucket_bytes(), vectorized=True)
    loop = CompressionPipeline(create_compressor(name), bucket_bytes=_bucket_bytes(), vectorized=False)
    rv = vec.compress(gradient, RATIO)
    rl = loop.compress(gradient, RATIO)
    assert rv.metadata["num_buckets"] > 1
    np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
    np.testing.assert_array_equal(rv.sparse.values, rl.sparse.values)


@pytest.mark.skipif(SMOKE, reason="throughput floor calibrated to the 25M-element scale")
@pytest.mark.parametrize("name", FLOOR_NAMES)
def test_vectorized_at_least_2x_unbucketed_throughput(name, sweep_timings):
    row = sweep_timings(name)
    assert row["speedup_vs_unbucketed"] >= MIN_SPEEDUP, (
        f"{name}: vectorized bucketed path must be >= {MIN_SPEEDUP}x the unbucketed "
        f"compressor, got {row['speedup_vs_unbucketed']:.2f}x "
        f"({row['unbucketed_ms']:.1f} ms vs {row['vectorized_ms']:.1f} ms)"
    )


@pytest.mark.skipif(SMOKE, reason="throughput floor calibrated to the 25M-element scale")
@pytest.mark.parametrize("name", FLOOR_NAMES)
def test_vectorized_beats_scalar_bucket_loop(name, sweep_timings):
    # Same bucketing, same thresholds — the only difference is batched versus
    # per-bucket fitting, so any win is pure vectorisation.
    row = sweep_timings(name)
    assert row["speedup_vs_loop"] > 1.0, (
        f"{name}: vectorized path slower than its own scalar bucket loop "
        f"({row['vectorized_ms']:.1f} ms vs {row['bucketed_loop_ms']:.1f} ms)"
    )


@pytest.mark.skipif(SMOKE, reason="artifact records full-scale numbers only")
def test_emit_registry_throughput_artifact(sweep_timings, emit_artifact):
    rows = [sweep_timings(name) for name in SWEEP_NAMES]
    payload = {
        "dimension": DIMENSION,
        "ratio": RATIO,
        "bucket_bytes": _bucket_bytes(),
        "min_speedup_floor": MIN_SPEEDUP,
        "floor_compressors": list(FLOOR_NAMES),
        "compressors": rows,
    }
    written = emit_artifact(
        ARTIFACT_PATH,
        "registry_throughput",
        params={
            key: payload[key]
            for key in ("dimension", "ratio", "bucket_bytes", "min_speedup_floor",
                        "floor_compressors")
        },
        records=[
            {
                "workload": "registry_throughput",
                "config": {"compressor": row["compressor"]},
                "metrics": {k: v for k, v in row.items() if k != "compressor"},
            }
            for row in rows
        ],
        legacy=payload,
    )
    for name in FLOOR_NAMES:
        row = next(r for r in written["compressors"] if r["compressor"] == name)
        assert row["speedup_vs_unbucketed"] >= MIN_SPEEDUP


# -- the PR-1 SIDCo benchmark, unchanged bars ---------------------------------


@pytest.mark.skipif(SMOKE, reason="throughput floor calibrated to the 25M-element scale")
def test_vectorized_bucketed_sidco_at_least_2x_throughput(gradient):
    plain = SIDCo("exponential")
    bucketed = create_compressor("sidco-e-bucketed")

    plain_seconds, plain_result = _best_call_seconds(plain, gradient)
    bucketed_seconds, bucketed_result = _best_call_seconds(bucketed, gradient)
    speedup = plain_seconds / bucketed_seconds

    # Equivalent selection: both paths end up inside the controller's band.
    tolerance = plain.controller.config.error_tolerance
    assert abs(plain_result.achieved_ratio / RATIO - 1.0) <= tolerance + 0.05
    assert abs(bucketed_result.achieved_ratio / RATIO - 1.0) <= tolerance + 0.05

    assert bucketed_result.metadata["num_buckets"] > 1
    assert speedup >= 2.0, (
        f"bucketed vectorized SIDCo must be >= 2x faster than the unbucketed path, "
        f"got {speedup:.2f}x ({plain_seconds * 1e3:.1f} ms vs {bucketed_seconds * 1e3:.1f} ms)"
    )


def test_vectorized_beats_per_bucket_scalar_loop():
    # Same bucketing, same thresholds — the only difference is batched versus
    # per-bucket fitting, so any win is pure vectorisation.
    gradient = realistic_gradient(5_000_000, seed=1)
    vectorized = CompressionPipeline(SIDCo("exponential"), bucket_bytes=512 * 1024, vectorized=True)
    loop = CompressionPipeline(SIDCo("exponential"), bucket_bytes=512 * 1024, vectorized=False)
    vec_seconds, vec_result = _best_call_seconds(vectorized, gradient)
    loop_seconds, loop_result = _best_call_seconds(loop, gradient)
    np.testing.assert_array_equal(vec_result.sparse.indices, loop_result.sparse.indices)
    assert vec_seconds < loop_seconds


def test_modelled_throughput_prefers_batched_trace():
    # The device cost model sees the same structure the wall clock does: the
    # batched fast path emits one fused launch per primitive, the scalar loop
    # pays the launch overhead once per bucket.
    gradient = realistic_gradient(2_000_000, seed=2)
    vectorized = CompressionPipeline(SIDCo("exponential"), bucket_bytes=128 * 1024, vectorized=True)
    loop = CompressionPipeline(SIDCo("exponential"), bucket_bytes=128 * 1024, vectorized=False)
    vec_result = vectorized.compress(gradient, RATIO)
    loop_result = loop.compress(gradient, RATIO)
    assert compression_throughput(vec_result, GPU_V100) > compression_throughput(loop_result, GPU_V100)
