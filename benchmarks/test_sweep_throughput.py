"""Tuner query throughput: cache-warm vs cache-cold what-if sweeps.

The auto-tuner (:func:`repro.harness.autotune`) is the planning front-end of
the sweep engine: one query expands the coarse knob grid, prices every
admitted point through the compression/collective/schedule stack, and
locally refines ratio/bucket-bytes around the incumbent.  A cold query pays
the full evaluation cost; a warm query — same workload, same fabric, same
axes — should be answered almost entirely from the
:class:`~repro.harness.SweepCache` (memoized compression results,
``CollectiveCost``/``PhaseTable`` pricing, whole point evaluations).

Acceptance bars:

* a warm tuner answers >= 5x more queries per second than a cold one (the
  cache floor; enforced at smoke scale too — the ratio is scale-free
  because both sides shrink together),
* warm queries replay the cold decision exactly (same best config, same
  provenance trace), and
* the serial sweep equals a ``backend="process"`` sweep bit-for-bit on the
  same spec (the spawn-pool path must be a pure parallelization).

Results land in ``BENCH_sweep.json`` at the repo root with the tuner
queries/second headline, cache-warm and cache-cold.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_sweep_throughput.py -v``.
Unlike the 25M-element benchmarks, every sweep evaluation is already
proxy-scale, so ``SIDCO_SMOKE_DIMENSION`` does not shrink the workload: the
warm/cold floor and the equivalence checks run at full fidelity in the CI
smoke, and only the artifact write is skipped (a smoke runner's
queries/second is not comparable to the calibrated full-scale number).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.harness import (
    SweepCache,
    SweepSpec,
    WorkloadSpec,
    autotune,
    run_sweep,
)

PROXY_ELEMENTS = 2**15
SMOKE = "SIDCO_SMOKE_DIMENSION" in os.environ

PRESET = "ethernet-4x8"
#: The warm cache must answer at least this many times more tuner queries per
#: second than a cold one (measured ~8-9x at full scale).
MIN_WARM_SPEEDUP = 5.0
#: Cold/warm query batches timed for the artifact (cold rebuilds the cache).
TIMED_QUERIES = 3

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: The planning workload: a VGG16-scale job (Table 1's largest vision model)
#: with the paper's Ethernet-cluster communication overhead.
WORKLOAD = WorkloadSpec(
    name="vgg16-scale",
    dimension=14_000_000,
    comm_overhead=0.75,
    proxy_elements=PROXY_ELEMENTS,
)


def _one_query(cache: SweepCache):
    return autotune(WORKLOAD, PRESET, cache=cache)


def _queries_per_second(cache_factory, queries: int = TIMED_QUERIES) -> float:
    total = 0.0
    for _ in range(queries):
        cache = cache_factory()
        start = time.perf_counter()
        _one_query(cache)
        total += time.perf_counter() - start
    return queries / total


def test_warm_tuner_replays_cold_decision_exactly():
    cache = SweepCache()
    cold = _one_query(cache)
    warm = _one_query(cache)
    assert warm.best == cold.best
    assert warm.trace == cold.trace
    assert cache.hits > 0


def test_warm_queries_clear_speedup_floor():
    shared = SweepCache()
    _one_query(shared)  # populate
    cold_qps = _queries_per_second(SweepCache)
    warm_qps = _queries_per_second(lambda: shared)
    assert warm_qps >= MIN_WARM_SPEEDUP * cold_qps, (
        f"warm tuner at {warm_qps:.1f} q/s vs cold {cold_qps:.1f} q/s — "
        f"below the {MIN_WARM_SPEEDUP}x cache floor"
    )


def test_process_pool_sweep_equals_serial_bit_for_bit():
    spec = SweepSpec(
        workloads=(WORKLOAD,),
        axes={
            "topology": (PRESET,),
            "compressor": ("topk", "dgc"),
            "ratio": (0.1, 0.01),
            "overlap": ("none", "comm+compress"),
        },
    )
    serial = run_sweep(spec, backend="serial", memoize=False)
    pooled = run_sweep(spec, backend="process", processes=2)
    assert pooled.records == serial.records


@pytest.mark.skipif(SMOKE, reason="artifact records full-scale numbers only")
def test_emit_sweep_bench_artifact(emit_artifact):
    shared = SweepCache()
    result = _one_query(shared)
    cold_qps = _queries_per_second(SweepCache)
    warm_qps = _queries_per_second(lambda: shared)
    emit_artifact(
        ARTIFACT_PATH,
        "sweep_throughput",
        params={
            "workload": {
                "name": WORKLOAD.name,
                "dimension": WORKLOAD.dimension,
                "comm_overhead": WORKLOAD.comm_overhead,
                "proxy_elements": WORKLOAD.proxy_elements,
            },
            "topology": PRESET,
            "target": result.target,
            "min_warm_speedup_bar": MIN_WARM_SPEEDUP,
            "timed_queries": TIMED_QUERIES,
        },
        metrics={
            "cold_queries_per_second": cold_qps,
            "warm_queries_per_second": warm_qps,
            "warm_speedup": warm_qps / cold_qps,
            "points_per_query": result.queries,
            "best_iteration_seconds": result.best_metric,
        },
        records=[
            {
                "workload": WORKLOAD.name,
                "config": result.best_config,
                "metrics": dict(result.best.metrics),
            }
        ],
    )
    assert warm_qps >= MIN_WARM_SPEEDUP * cold_qps
