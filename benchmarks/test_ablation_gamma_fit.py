"""Ablation: closed-form (Minka) gamma fit vs exact MLE, and approximate vs exact quantile.

The paper adopts closed-form estimators to keep the compression overhead
linear; this ablation quantifies the accuracy cost of that choice (it is
negligible) and its speed benefit.
"""

import time

import numpy as np
import pytest

from repro.harness import format_table
from repro.stats.distributions import Gamma


@pytest.fixture(scope="module")
def gamma_sample():
    rng = np.random.default_rng(0)
    return rng.gamma(0.6, 2.0, size=400_000)


def test_ablation_gamma_estimators(benchmark, gamma_sample):
    closed_form = benchmark(lambda: Gamma.fit(gamma_sample))

    start = time.perf_counter()
    exact = Gamma.fit(gamma_sample, exact_mle=True)
    exact_time = time.perf_counter() - start

    start = time.perf_counter()
    Gamma.fit(gamma_sample)
    closed_time = time.perf_counter() - start

    rows = [
        {"estimator": "minka-closed-form", "shape": closed_form.shape, "scale": closed_form.scale, "seconds": closed_time},
        {"estimator": "exact-mle", "shape": exact.shape, "scale": exact.scale, "seconds": exact_time},
    ]
    print("\n" + format_table(rows, title="Ablation — gamma shape estimation"))

    # Accuracy: the closed form is within a few percent of the exact MLE.
    assert abs(closed_form.shape - exact.shape) / exact.shape < 0.05

    # Threshold accuracy: the closed-form quantile approximation upper-bounds
    # the exact quantile and stays within 30% at aggressive ratios.
    for delta in (0.01, 0.001):
        approx = closed_form.threshold_for_ratio(delta, approximate=True)
        exact_q = closed_form.threshold_for_ratio(delta, approximate=False)
        assert approx >= exact_q
        assert approx / exact_q < 1.3
