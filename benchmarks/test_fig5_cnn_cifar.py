"""Figure 5: CNN training on CIFAR-10 proxies — ResNet20 and VGG16.

(a) ResNet20 speed-ups are modest (the model is not communication bound),
(b) estimation quality, (c) VGG16 speed-ups are substantial (60% comm overhead).
"""


from repro.harness import format_speedup_summary

from conftest import cached_comparison

COMPRESSORS = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")
RATIO = 0.01


def test_fig5a_resnet20_modest_gains(benchmark):
    comparison = benchmark.pedantic(
        lambda: cached_comparison("resnet20-cifar10", COMPRESSORS, (RATIO,), iterations=40),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 5a/b — ResNet20-CIFAR10 (comm overhead 10%)")
    print(format_speedup_summary(comparison.rows))
    rows = {r.compressor: r for r in comparison.rows}

    # ResNet20 is compute-bound: no compressor achieves a large speed-up, and
    # none collapses either (Figure 5a's bars hover around 1x).
    for name in COMPRESSORS:
        assert 0.3 < rows[name].throughput_vs_baseline < 2.5

    # Figure 5b: SIDCo's estimation quality tracks the target.
    assert 0.4 < rows["sidco-e"].estimation_quality < 2.5


def test_fig5c_vgg16_substantial_gains(benchmark):
    comparison = benchmark.pedantic(
        lambda: cached_comparison("vgg16-cifar10", COMPRESSORS, (RATIO,), iterations=40),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 5c — VGG16-CIFAR10 (comm overhead 60%)")
    print(format_speedup_summary(comparison.rows))
    rows = {r.compressor: r for r in comparison.rows}

    # VGG16 is communication bound: compression clearly beats the baseline
    # and SIDCo is at least on par with DGC and ahead of Top-k.
    assert rows["sidco-e"].throughput_vs_baseline > 1.3
    assert rows["sidco-e"].throughput_vs_baseline > rows["topk"].throughput_vs_baseline
    assert rows["sidco-e"].throughput_vs_baseline >= rows["dgc"].throughput_vs_baseline * 0.9
