"""Figure 9: running-average compression-ratio traces across benchmarks and ratios.

The paper plots the smoothed achieved compression ratio over training for
every benchmark and target ratio, showing that SIDCo (and DGC) hug the target
while RedSync/GaussianKSGD oscillate or collapse.  This bench regenerates the
traces for two representative benchmarks at two ratios.
"""

import numpy as np
import pytest

from repro.harness import extract_traces, format_series

from conftest import cached_comparison

COMPRESSORS = ("dgc", "redsync", "gaussiank", "sidco-e")


@pytest.mark.parametrize("benchmark_name", ["lstm-ptb", "vgg16-cifar10"])
@pytest.mark.parametrize("ratio", [0.01, 0.001])
def test_fig9_running_ratio_traces(benchmark, benchmark_name, ratio):
    comparison = benchmark.pedantic(
        lambda: cached_comparison(benchmark_name, COMPRESSORS, (ratio,), iterations=50),
        rounds=1,
        iterations=1,
    )
    traces = {name: extract_traces(comparison.runs[(name, ratio)], window=10) for name in COMPRESSORS}
    for name, trace in traces.items():
        xs = trace.iterations[: len(trace.running_ratio)]
        print("\n" + format_series(f"{benchmark_name}@{ratio} ratio[{name}]", xs, trace.running_ratio))

    # SIDCo's smoothed trace ends near the target once adaptation settles.
    sidco_tail = traces["sidco-e"].running_ratio[-1]
    assert 0.3 * ratio < sidco_tail < 3.0 * ratio

    # DGC also tracks the target (it is Top-k on a sample).
    dgc_tail = traces["dgc"].running_ratio[-1]
    assert 0.3 * ratio < dgc_tail < 3.0 * ratio

    # Every trace is positive (no compressor silently sends nothing).
    for trace in traces.values():
        assert np.all(trace.running_ratio > 0.0)
