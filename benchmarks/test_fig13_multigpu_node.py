"""Figure 13: full training on a single multi-GPU node (Cluster 2).

Inside one 8-GPU node the interconnect is much faster (100 Gbps), so the
baseline's communication overhead shrinks and compression gains are more
modest than on the Ethernet cluster — but the ordering (threshold estimators
>= DGC > Top-k) and SIDCo's estimation quality are preserved.
"""

import pytest

from repro.distributed import NODE_INFINIBAND_100G
from repro.harness import compare_compressors, format_speedup_summary

COMPRESSORS = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")
RATIO = 0.01


@pytest.fixture(scope="module")
def node_comparison():
    return compare_compressors(
        "resnet50-imagenet",
        COMPRESSORS,
        (RATIO,),
        num_workers=8,
        iterations=40,
        seed=0,
        network=NODE_INFINIBAND_100G,
    )


def test_fig13_multigpu_node(benchmark, node_comparison):
    benchmark.pedantic(
        lambda: compare_compressors(
            "resnet50-imagenet", ("sidco-e",), (RATIO,), num_workers=8, iterations=10, seed=1,
            network=NODE_INFINIBAND_100G,
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 13 — ResNet50 on one 8-GPU node (100 Gbps interconnect)")
    print(format_speedup_summary(node_comparison.rows))
    rows = {r.compressor: r for r in node_comparison.rows}

    # Everyone beats Top-k on throughput; SIDCo at least matches DGC.
    assert rows["sidco-e"].throughput_vs_baseline >= rows["topk"].throughput_vs_baseline
    assert rows["sidco-e"].throughput_vs_baseline >= rows["dgc"].throughput_vs_baseline * 0.9

    # Estimation quality: SIDCo close to the target, heuristics further away
    # or at best comparable.
    assert 0.4 < rows["sidco-e"].estimation_quality < 2.5
