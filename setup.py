"""Setup shim so `pip install -e . --no-use-pep517` works on hosts without the
`wheel` package (all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
