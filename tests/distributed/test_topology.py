"""Tests for the cluster topology and collective-algorithm layer."""

import math

import pytest

from repro.distributed import (
    COLLECTIVE_ALGORITHMS,
    DEDUP_ASSUMPTIONS,
    TOPOLOGIES,
    ClusterTopology,
    CollectiveModel,
    LinkLevel,
    NetworkModel,
    SparseAggregateModel,
    get_collective_algorithm,
    get_network,
    get_topology,
    hierarchical_crossover_factor,
    validate_pipeline_chunks,
)
from repro.distributed.topology import Hierarchical
from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

ETH = NetworkModel(bandwidth_gbps=10.0, latency_s=50e-6, name="eth", efficiency=1.0)
FAST = NetworkModel(bandwidth_gbps=400.0, latency_s=2e-6, name="fast", efficiency=1.0)


def two_level(num_nodes=4, devices_per_node=8):
    return ClusterTopology(
        num_nodes=num_nodes,
        devices_per_node=devices_per_node,
        inter_node=ETH,
        intra_node=FAST,
        name="test-2level",
    )


class TestClusterTopology:
    def test_worker_count_and_levels(self):
        topo = two_level(4, 8)
        assert topo.num_workers == 32
        assert not topo.is_single_level
        assert topo.bottleneck_link is ETH

    def test_single_node_bottleneck_is_intra(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=8, inter_node=ETH, intra_node=FAST)
        assert topo.is_single_level
        assert topo.bottleneck_link is FAST

    def test_flat_constructor(self):
        topo = ClusterTopology.flat(ETH, 8)
        assert topo.num_workers == 8
        assert topo.devices_per_node == 1
        assert topo.is_single_level
        assert topo.bottleneck_link is ETH
        assert "eth" in topo.name

    @pytest.mark.parametrize("kwargs", [{"num_nodes": 0}, {"devices_per_node": 0}])
    def test_invalid_shape_rejected(self, kwargs):
        base = dict(num_nodes=2, devices_per_node=2, inter_node=ETH, intra_node=FAST)
        with pytest.raises(ValueError):
            ClusterTopology(**{**base, **kwargs})

    def test_flat_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ClusterTopology.flat(ETH, 0)


class TestAlgorithmRegistry:
    def test_known_algorithms(self):
        assert set(COLLECTIVE_ALGORITHMS) == {
            "ring-allreduce",
            "recursive-doubling",
            "flat-allgather",
            "hierarchical",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown collective algorithm"):
            get_collective_algorithm("tree-allreduce")

    def test_unsupported_op_rejected(self):
        with pytest.raises(ValueError, match="does not model"):
            get_collective_algorithm("flat-allgather", op="allreduce")
        with pytest.raises(ValueError, match="does not model"):
            get_collective_algorithm("ring-allreduce", op="allgather")

    def test_cost_rejects_unknown_op_and_negative_bytes(self):
        algo = get_collective_algorithm("ring-allreduce")
        with pytest.raises(ValueError, match="unknown collective op"):
            algo.cost(ClusterTopology.flat(ETH, 4), "broadcast", 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            algo.cost(ClusterTopology.flat(ETH, 4), "allreduce", -1.0)


class TestRingAllreduce:
    def test_two_phases_sum_to_closed_form(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("ring-allreduce").cost(topo, "allreduce", 4e6)
        assert [p.name for p in cost.phases] == ["reduce-scatter", "ring-allgather"]
        assert cost.phases[0].seconds == cost.phases[1].seconds
        assert cost.total == ETH.allreduce_time(4e6, 8)

    def test_volume_matches_ring(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("ring-allreduce").cost(topo, "allreduce", 8e6)
        # 2(N-1)/N of the buffer crosses each link.
        assert cost.volume_bytes == pytest.approx(2 * 7 / 8 * 8e6)


class TestFlatAllgather:
    def test_single_phase_matches_closed_form(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert [p.name for p in cost.phases] == ["ring-allgather"]
        assert cost.total == ETH.allgather_time(1e5, 8)
        assert cost.volume_bytes == pytest.approx(7e5)

    def test_multi_node_gated_by_inter_link(self):
        topo = two_level(4, 8)
        cost = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert cost.phases[0].link == "eth"
        assert cost.total == ETH.allgather_time(1e5, 32)


class TestRecursiveDoubling:
    def test_allreduce_round_count_and_latency_bound_win(self):
        topo = ClusterTopology.flat(ETH, 8)
        algo = get_collective_algorithm("recursive-doubling")
        cost = algo.cost(topo, "allreduce", 1e3)
        assert len(cost.phases) == 3  # log2(8)
        # Tiny payloads are latency-bound: 3 latencies beat the ring's 14.
        assert cost.total < ETH.allreduce_time(1e3, 8)
        # Large payloads are bandwidth-bound: shipping the full buffer each
        # round loses to the ring's 1/N chunks.
        assert algo.cost(topo, "allreduce", 1e8).total > ETH.allreduce_time(1e8, 8)

    def test_allgather_volume_matches_ring_for_power_of_two(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("recursive-doubling").cost(topo, "allgather", 1e4)
        assert cost.volume_bytes == pytest.approx(7e4)  # (N-1) payloads total
        assert cost.total < ETH.allgather_time(1e4, 8)  # 3 latencies vs 7

    def test_non_power_of_two_rounds(self):
        topo = ClusterTopology.flat(ETH, 5)
        cost = get_collective_algorithm("recursive-doubling").cost(topo, "allgather", 1e4)
        assert len(cost.phases) == 3  # ceil(log2(5))
        # The capped final round keeps the total volume at (N-1) payloads.
        assert cost.volume_bytes == pytest.approx(4e4)


class TestHierarchical:
    def test_allgather_phase_structure(self):
        topo = two_level(4, 8)
        cost = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        assert [p.name for p in cost.phases] == [
            "intra-gather",
            "inter-allgather",
            "intra-broadcast",
        ]
        assert [p.link for p in cost.phases] == ["fast", "eth", "fast"]
        # Inter-node ring carries one node-aggregate per node: (M-1) * D * p.
        assert cost.phases[1].volume_bytes == pytest.approx(3 * 8 * 1e5)

    def test_single_device_per_node_collapses_to_flat(self):
        topo = ClusterTopology(num_nodes=8, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        flat = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert hier.total == flat.total
        assert [p.name for p in hier.phases] == ["inter-allgather"]

    def test_single_node_uses_only_intra_phases(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=8, inter_node=ETH, intra_node=FAST)
        cost = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        assert {p.link for p in cost.phases} == {"fast"}

    def test_single_worker_is_free(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        for op in ("allreduce", "allgather"):
            cost = get_collective_algorithm("hierarchical").cost(topo, op, 1e6)
            assert cost.phases == ()
            assert cost.total == 0.0

    def test_allreduce_collapses_to_ring_when_single_device(self):
        topo = ClusterTopology(num_nodes=8, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allreduce", 4e6)
        assert hier.total == ETH.allreduce_time(4e6, 8)

    def test_beats_flat_on_fast_intra_fabric(self):
        topo = two_level(4, 8)
        assert FAST.bytes_per_second / ETH.bytes_per_second > hierarchical_crossover_factor(topo)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allgather", 4e6)
        flat = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 4e6)
        assert hier.total < flat.total

    def test_crossover_factor(self):
        assert hierarchical_crossover_factor(two_level(4, 8)) == pytest.approx(38 / 7)
        assert hierarchical_crossover_factor(ClusterTopology.flat(ETH, 8)) == math.inf


class TestCollectiveModel:
    def test_validates_algorithm_choices(self):
        topo = ClusterTopology.flat(ETH, 4)
        with pytest.raises(ValueError):
            CollectiveModel(topo, allreduce_algorithm="flat-allgather")
        with pytest.raises(ValueError):
            CollectiveModel(topo, allgather_algorithm="ring-allreduce")
        with pytest.raises(ValueError):
            CollectiveModel(topo, allgather_algorithm="nccl")

    def test_recursive_doubling_serves_both_ops(self):
        model = CollectiveModel(
            ClusterTopology.flat(ETH, 8),
            allreduce_algorithm="recursive-doubling",
            allgather_algorithm="recursive-doubling",
        )
        assert model.allreduce_time(1e6) > 0.0
        assert model.allgather_time(1e6) > 0.0

    def test_num_workers_comes_from_topology(self):
        assert CollectiveModel(two_level(2, 3)).num_workers == 6


class TestTopologyPresets:
    def test_registry_contents(self):
        assert set(TOPOLOGIES) == {
            "cluster1",
            "cluster1-25g",
            "cluster2",
            "ethernet-4x8",
            "torus-2d",
            "fat-tree-128",
            "dragonfly-64",
        }

    def test_cluster1_mirrors_appendix_d(self):
        topo = get_topology("cluster1")
        assert (topo.num_nodes, topo.devices_per_node) == (8, 1)
        assert topo.inter_node is CLUSTER_ETHERNET_10G
        assert get_topology("cluster1-25g").inter_node.name == "ethernet-25g"

    def test_cluster2_mirrors_appendix_d(self):
        topo = get_topology("cluster2")
        assert (topo.num_nodes, topo.devices_per_node) == (1, 8)
        assert topo.bottleneck_link is NODE_INFINIBAND_100G

    def test_lookup_by_full_name(self):
        assert get_topology("cluster1-ethernet-10g") is get_topology("cluster1")
        assert get_topology("ETHERNET-4X8") is TOPOLOGIES["ethernet-4x8"]

    def test_unknown_lists_keys_and_full_names(self):
        # The error must enumerate every available preset (short keys and
        # full names alike) so a typo is self-diagnosing — the same contract
        # get_network's lookup carries.
        with pytest.raises(ValueError, match="unknown topology") as excinfo:
            get_topology("cluster3")
        message = str(excinfo.value)
        for key in TOPOLOGIES:
            assert key in message
        for topology in TOPOLOGIES.values():
            assert topology.name in message

    def test_torus_2d_preset_shape(self):
        topo = get_topology("torus-2d")
        assert (topo.num_nodes, topo.devices_per_node) == (4, 4)
        assert topo.num_workers == 16
        assert not topo.is_single_level
        # Row rings are the faster 25g fabric, column rings the 10g one.
        assert topo.intra_node.name == "ethernet-25g"
        assert topo.inter_node.name == "ethernet-10g"
        assert get_topology("TORUS-2D") is TOPOLOGIES["torus-2d"]

    def test_ethernet_4x8_clears_the_crossover(self):
        topo = get_topology("ethernet-4x8")
        ratio = topo.intra_node.bytes_per_second / topo.inter_node.bytes_per_second
        assert ratio > hierarchical_crossover_factor(topo)

    def test_presets_price_flat_like_their_network(self):
        # Cluster 1 is single-level, so every algorithm reduces to the 10g
        # Ethernet closed forms.
        topo = get_topology("cluster1")
        model = CollectiveModel(topo)
        assert model.allreduce_time(4e6) == get_network("10g").allreduce_time(4e6, 8)
        assert model.allgather_time(1e5) == get_network("10g").allgather_time(1e5, 8)


class TestLinkLevel:
    def test_validation(self):
        with pytest.raises(ValueError, match="fanout"):
            LinkLevel(0, ETH)
        with pytest.raises(ValueError, match="oversubscription"):
            LinkLevel(4, ETH, oversubscription=0.5)

    def test_effective_link_identity_without_oversubscription(self):
        # Object identity, not just equality: the two-level degenerate case
        # must keep `topo.bottleneck_link is <link>` pins intact.
        assert LinkLevel(4, ETH).effective_link is ETH

    def test_oversubscription_derates_bandwidth_only(self):
        level = LinkLevel(4, ETH, oversubscription=4.0)
        effective = level.effective_link
        assert effective.bandwidth_gbps == ETH.bandwidth_gbps / 4.0
        assert effective.latency_s == ETH.latency_s
        assert effective.efficiency == ETH.efficiency
        assert effective.name == "eth/os4"


class TestMultiLevelTopology:
    def _three_level(self):
        return ClusterTopology.from_levels(
            (
                LinkLevel(4, FAST, name="node"),
                LinkLevel(2, ETH, name="rack"),
                LinkLevel(3, ETH, oversubscription=2.0, name="core"),
            ),
            name="test-3level",
        )

    def test_from_levels_derives_summary_fields(self):
        topo = self._three_level()
        assert topo.num_levels == 3
        assert topo.devices_per_node == 4
        assert topo.num_nodes == 6
        assert topo.num_workers == 24
        assert topo.intra_node is FAST
        assert topo.inter_node.name == "eth/os2"
        assert topo.bottleneck_link.name == "eth/os2"

    def test_from_levels_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterTopology.from_levels(())

    def test_inconsistent_summary_fields_rejected(self):
        with pytest.raises(ValueError, match="from_levels"):
            ClusterTopology(
                num_nodes=2,
                devices_per_node=2,
                inter_node=ETH,
                intra_node=FAST,
                levels=(LinkLevel(4, FAST), LinkLevel(3, ETH)),
            )

    def test_synthesized_levels_match_two_level_fields(self):
        topo = two_level(4, 8)
        assert topo.num_levels == 2
        assert [level.name for level in topo.levels] == ["intra", "inter"]
        assert topo.levels[0].fanout == 8 and topo.levels[0].link is FAST
        assert topo.levels[1].fanout == 4 and topo.levels[1].link is ETH

    def test_two_level_from_levels_prices_like_legacy(self):
        # from_levels with two un-oversubscribed levels must be bit-for-bit
        # the legacy two-level constructor, phases included.
        legacy = two_level(4, 8)
        rebuilt = ClusterTopology.from_levels(
            (LinkLevel(8, FAST, name="intra"), LinkLevel(4, ETH, name="inter"))
        )
        for algorithm in ("hierarchical", "recursive-doubling", "flat-allgather"):
            a = get_collective_algorithm(algorithm, op="allgather")
            assert a.cost(legacy, "allgather", 1e6) == a.cost(rebuilt, "allgather", 1e6)
        h = get_collective_algorithm("hierarchical", op="allreduce")
        assert h.cost(legacy, "allreduce", 1e6) == h.cost(rebuilt, "allreduce", 1e6)

    def test_trivial_middle_level_adds_no_phases(self):
        with_trivial = ClusterTopology.from_levels(
            (LinkLevel(4, FAST, name="node"), LinkLevel(1, ETH, name="rack"),
             LinkLevel(3, ETH, name="core"))
        )
        without = ClusterTopology.from_levels(
            (LinkLevel(4, FAST, name="node"), LinkLevel(3, ETH, name="core"))
        )
        h = get_collective_algorithm("hierarchical", op="allgather")
        cost_with = h.cost(with_trivial, "allgather", 1e6)
        cost_without = h.cost(without, "allgather", 1e6)
        assert [p.name for p in cost_with.phases] == [p.name for p in cost_without.phases]
        assert cost_with.total == cost_without.total

    def test_hierarchical_phase_names_follow_level_names(self):
        h = get_collective_algorithm("hierarchical", op="allgather")
        cost = h.cost(self._three_level(), "allgather", 1e6)
        assert [p.name for p in cost.phases] == [
            "node-gather", "rack-gather", "core-allgather", "rack-broadcast",
            "node-broadcast",
        ]

    def test_oversubscription_never_cheapens_a_collective(self):
        levels = (LinkLevel(4, FAST, name="node"), LinkLevel(4, ETH, name="core"))
        base = ClusterTopology.from_levels(levels)
        oversubscribed = ClusterTopology.from_levels(
            (levels[0], LinkLevel(4, ETH, oversubscription=3.0, name="core"))
        )
        for algorithm in ("hierarchical", "flat-allgather", "recursive-doubling"):
            a = get_collective_algorithm(algorithm, op="allgather")
            assert (
                a.cost(oversubscribed, "allgather", 1e6).total
                >= a.cost(base, "allgather", 1e6).total
            )

    def test_fat_tree_128_preset_shape(self):
        topo = get_topology("fat-tree-128")
        assert topo.num_nodes == 128
        assert topo.devices_per_node == 8
        assert topo.num_workers == 1024
        assert topo.num_levels == 4
        assert [level.name for level in topo.levels] == ["node", "rack", "pod", "core"]
        assert topo.bottleneck_link.name == "ethernet-10g/os4"
        assert not topo.is_single_level

    def test_dragonfly_64_preset_shape(self):
        topo = get_topology("dragonfly-64")
        assert topo.num_nodes == 64
        assert topo.devices_per_node == 4
        assert topo.num_workers == 256
        assert topo.num_levels == 3
        assert [level.name for level in topo.levels] == ["node", "group", "global"]
        assert topo.bottleneck_link.name == "ethernet-10g/os2"


class TestSparseAggregateModel:
    def test_known_assumptions(self):
        assert DEDUP_ASSUMPTIONS == ("uniform", "identical", "disjoint")
        for assumption in DEDUP_ASSUMPTIONS:
            SparseAggregateModel(assumption)

    def test_unknown_assumption_rejected(self):
        with pytest.raises(ValueError, match="unknown dedup assumption"):
            SparseAggregateModel("correlated")

    def test_uniform_closed_form(self):
        model = SparseAggregateModel("uniform")
        # n(1 - (1 - rho)^D) / k with rho = 0.1, D = 8.
        assert model.union_factor(0.1, 8) == pytest.approx((1 - 0.9**8) / 0.1)
        assert model.union_factor(0.5, 2) == pytest.approx(1.5)

    def test_bounds_identical_and_disjoint(self):
        identical = SparseAggregateModel("identical")
        disjoint = SparseAggregateModel("disjoint")
        uniform = SparseAggregateModel("uniform")
        assert identical.union_factor(0.05, 8) == 1.0
        assert disjoint.union_factor(0.05, 8) == 8.0
        assert 1.0 < uniform.union_factor(0.05, 8) < 8.0

    def test_union_capped_by_dense_bucket(self):
        # 8 workers at 30% density cannot select more than the whole bucket.
        assert SparseAggregateModel("disjoint").union_factor(0.3, 8) == pytest.approx(1 / 0.3)
        assert SparseAggregateModel("uniform").union_factor(0.3, 8) <= 1 / 0.3

    def test_single_participant_is_identity(self):
        for assumption in DEDUP_ASSUMPTIONS:
            assert SparseAggregateModel(assumption).union_factor(0.01, 1) == 1.0

    def test_union_payload_and_dedup_ratio(self):
        model = SparseAggregateModel("uniform")
        factor = model.union_factor(0.1, 4)
        assert model.union_payload_bytes(1000.0, 0.1, 4) == pytest.approx(1000.0 * factor)
        assert model.dedup_ratio(0.1, 4) == pytest.approx(4 / factor)

    def test_invalid_inputs_rejected(self):
        model = SparseAggregateModel()
        with pytest.raises(ValueError, match="density"):
            model.union_factor(0.0, 4)
        with pytest.raises(ValueError, match="density"):
            model.union_factor(1.5, 4)
        with pytest.raises(ValueError, match="participants"):
            model.union_factor(0.1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            model.union_payload_bytes(-1.0, 0.1, 4)


class TestDedupAllgather:
    def test_dedup_shrinks_inter_payload(self):
        topo = two_level(4, 8)
        plain = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        dedup = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 1e5, density=0.1, dedup=SparseAggregateModel("uniform")
        )
        factor = SparseAggregateModel("uniform").union_factor(0.1, 8)
        plain_inter = next(p for p in plain.phases if p.name == "inter-allgather")
        dedup_inter = next(p for p in dedup.phases if p.name == "inter-allgather")
        assert dedup_inter.volume_bytes == pytest.approx(3 * factor * 1e5)
        assert dedup_inter.volume_bytes < plain_inter.volume_bytes
        assert dedup.total < plain.total
        assert dedup.dedup_ratio == pytest.approx(8 / factor)
        assert plain.dedup_ratio == 1.0

    def test_broadcast_ships_global_union(self):
        topo = two_level(4, 8)
        dedup = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 1e5, density=0.1, dedup=SparseAggregateModel("uniform")
        )
        factor_n = SparseAggregateModel("uniform").union_factor(0.1, 32)
        broadcast = next(p for p in dedup.phases if p.name == "intra-broadcast")
        assert broadcast.volume_bytes == pytest.approx((factor_n - 1.0) * 1e5)

    def test_no_density_disables_dedup(self):
        topo = two_level(4, 8)
        plain = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        no_density = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 1e5, dedup=SparseAggregateModel("uniform")
        )
        assert no_density.total == plain.total
        assert no_density.dedup_ratio == 1.0

    def test_disjoint_at_low_density_matches_no_dedup_exactly(self):
        # No-overlap selections concatenate without shrinking, so the bound
        # coincides with the PR-3 no-dedup pricing (until the dense cap bites).
        topo = two_level(4, 8)
        plain = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        disjoint = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 1e5, density=0.01, dedup=SparseAggregateModel("disjoint")
        )
        assert disjoint.total == plain.total
        assert [p.seconds for p in disjoint.phases] == [p.seconds for p in plain.phases]

    def test_single_device_nodes_have_no_reduce_point(self):
        topo = ClusterTopology(num_nodes=8, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        dedup = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 1e5, density=0.01, dedup=SparseAggregateModel("uniform")
        )
        plain = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        assert dedup.total == plain.total
        assert dedup.dedup_ratio == 1.0

    def test_flat_allgather_ignores_dedup(self):
        # A flat ring has no reduce point: raw payloads circulate verbatim.
        topo = two_level(4, 8)
        plain = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        dedup = get_collective_algorithm("flat-allgather").cost(
            topo, "allgather", 1e5, density=0.1, dedup=SparseAggregateModel("uniform")
        )
        assert dedup.total == plain.total
        assert dedup.dedup_ratio == 1.0


class TestPipelinedHierarchical:
    def _cost(self, chunks, payload=4e6, topo=None, **kwargs):
        topo = topo or two_level(4, 8)
        return get_collective_algorithm("hierarchical").cost(
            topo, "allgather", payload, pipeline_chunks=chunks, **kwargs
        )

    def test_chunks_1_is_bit_for_bit_serial(self):
        serial = self._cost(1)
        assert not serial.is_pipelined
        assert serial.pipeline_chunks == 1
        assert all(p.start is None and p.chunk is None for p in serial.phases)
        assert serial.total == serial.serial_seconds

    def test_pipelined_beats_serial_on_bandwidth_bound_payload(self):
        serial = self._cost(1)
        piped = self._cost(4)
        assert piped.is_pipelined
        assert piped.total < serial.total
        assert piped.pipeline_chunks == 4

    def test_makespan_formula(self):
        # Uniform per-chunk stage times: makespan = sum of stage times plus
        # (C - 1) repeats of the slowest stage.
        chunks = 4
        piped = self._cost(chunks)
        stage_seconds = sorted(
            {(p.name, p.seconds) for p in piped.phases}, key=lambda item: item[0]
        )
        per_chunk = [seconds for _, seconds in stage_seconds]
        expected = sum(per_chunk) + (chunks - 1) * max(per_chunk)
        assert piped.total == pytest.approx(expected)

    def test_phase_sum_invariant_per_chunk(self):
        chunks = 4
        piped = self._cost(chunks)
        by_chunk: dict[int, float] = {}
        for phase in piped.phases:
            by_chunk[phase.chunk] = by_chunk.get(phase.chunk, 0.0) + phase.seconds
        assert set(by_chunk) == set(range(chunks))
        sums = list(by_chunk.values())
        assert all(s == pytest.approx(sums[0]) for s in sums)
        # The makespan sits between one chunk's serial traversal and C of them.
        assert sums[0] <= piped.total <= chunks * sums[0] + 1e-12

    def test_same_link_phases_never_overlap(self):
        piped = self._cost(6)
        by_link: dict[str, list[tuple[float, float]]] = {}
        for phase in piped.phases:
            by_link.setdefault(phase.link, []).append((phase.start, phase.start + phase.seconds))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-12

    def test_volume_preserved_across_chunks(self):
        serial = self._cost(1)
        piped = self._cost(4)
        assert piped.volume_bytes == pytest.approx(serial.volume_bytes)

    def test_latency_bound_payload_falls_back_to_serial(self):
        serial = self._cost(1, payload=8.0)
        piped = self._cost(16, payload=8.0)
        assert not piped.is_pipelined
        assert piped.total == serial.total
        # The cost reports what was actually priced: serial, 1-chunk.
        assert piped.pipeline_chunks == 1

    def test_single_link_algorithm_reports_serial_chunks(self):
        cost = get_collective_algorithm("flat-allgather").cost(
            two_level(4, 8), "allgather", 4e6, pipeline_chunks=8
        )
        assert cost.pipeline_chunks == 1

    def test_pipelined_allreduce(self):
        topo = two_level(4, 8)
        serial = get_collective_algorithm("hierarchical").cost(topo, "allreduce", 64e6)
        piped = get_collective_algorithm("hierarchical").cost(
            topo, "allreduce", 64e6, pipeline_chunks=4
        )
        assert piped.total <= serial.total

    def test_instance_level_knobs(self):
        topo = two_level(4, 8)
        algo = Hierarchical(pipeline_chunks=4, dedup=SparseAggregateModel("uniform"))
        explicit = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 4e6, density=0.1,
            dedup=SparseAggregateModel("uniform"), pipeline_chunks=4,
        )
        assert algo.cost(topo, "allgather", 4e6, density=0.1).total == explicit.total

    def test_invalid_pipeline_chunks_rejected(self):
        with pytest.raises(ValueError, match="pipeline_chunks"):
            self._cost(0)
        with pytest.raises(ValueError, match="pipeline_chunks"):
            validate_pipeline_chunks(2.5)
        with pytest.raises(ValueError, match="pipeline_chunks"):
            Hierarchical(pipeline_chunks=-1)
        with pytest.raises(ValueError, match="pipeline_chunks"):
            CollectiveModel(two_level(4, 8), pipeline_chunks=0)

    def test_collective_model_threads_both_knobs(self):
        topo = two_level(4, 8)
        model = CollectiveModel(
            topo,
            allgather_algorithm="hierarchical",
            pipeline_chunks=4,
            allgather_dedup=SparseAggregateModel("uniform"),
        )
        direct = get_collective_algorithm("hierarchical").cost(
            topo, "allgather", 4e6, density=0.1,
            dedup=SparseAggregateModel("uniform"), pipeline_chunks=4,
        )
        cost = model.allgather_cost(4e6, density=0.1)
        assert cost.total == direct.total
        assert cost.dedup_ratio == direct.dedup_ratio
        # Without a density the dedup model stays silent but pipelining holds.
        assert model.allgather_cost(4e6).dedup_ratio == 1.0
