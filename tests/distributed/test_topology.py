"""Tests for the cluster topology and collective-algorithm layer."""

import math

import pytest

from repro.distributed import (
    COLLECTIVE_ALGORITHMS,
    TOPOLOGIES,
    ClusterTopology,
    CollectiveModel,
    NetworkModel,
    get_collective_algorithm,
    get_network,
    get_topology,
    hierarchical_crossover_factor,
)
from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

ETH = NetworkModel(bandwidth_gbps=10.0, latency_s=50e-6, name="eth", efficiency=1.0)
FAST = NetworkModel(bandwidth_gbps=400.0, latency_s=2e-6, name="fast", efficiency=1.0)


def two_level(num_nodes=4, devices_per_node=8):
    return ClusterTopology(
        num_nodes=num_nodes,
        devices_per_node=devices_per_node,
        inter_node=ETH,
        intra_node=FAST,
        name="test-2level",
    )


class TestClusterTopology:
    def test_worker_count_and_levels(self):
        topo = two_level(4, 8)
        assert topo.num_workers == 32
        assert not topo.is_single_level
        assert topo.bottleneck_link is ETH

    def test_single_node_bottleneck_is_intra(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=8, inter_node=ETH, intra_node=FAST)
        assert topo.is_single_level
        assert topo.bottleneck_link is FAST

    def test_flat_constructor(self):
        topo = ClusterTopology.flat(ETH, 8)
        assert topo.num_workers == 8
        assert topo.devices_per_node == 1
        assert topo.is_single_level
        assert topo.bottleneck_link is ETH
        assert "eth" in topo.name

    @pytest.mark.parametrize("kwargs", [{"num_nodes": 0}, {"devices_per_node": 0}])
    def test_invalid_shape_rejected(self, kwargs):
        base = dict(num_nodes=2, devices_per_node=2, inter_node=ETH, intra_node=FAST)
        with pytest.raises(ValueError):
            ClusterTopology(**{**base, **kwargs})

    def test_flat_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ClusterTopology.flat(ETH, 0)


class TestAlgorithmRegistry:
    def test_known_algorithms(self):
        assert set(COLLECTIVE_ALGORITHMS) == {
            "ring-allreduce",
            "recursive-doubling",
            "flat-allgather",
            "hierarchical",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown collective algorithm"):
            get_collective_algorithm("tree-allreduce")

    def test_unsupported_op_rejected(self):
        with pytest.raises(ValueError, match="does not model"):
            get_collective_algorithm("flat-allgather", op="allreduce")
        with pytest.raises(ValueError, match="does not model"):
            get_collective_algorithm("ring-allreduce", op="allgather")

    def test_cost_rejects_unknown_op_and_negative_bytes(self):
        algo = get_collective_algorithm("ring-allreduce")
        with pytest.raises(ValueError, match="unknown collective op"):
            algo.cost(ClusterTopology.flat(ETH, 4), "broadcast", 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            algo.cost(ClusterTopology.flat(ETH, 4), "allreduce", -1.0)


class TestRingAllreduce:
    def test_two_phases_sum_to_closed_form(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("ring-allreduce").cost(topo, "allreduce", 4e6)
        assert [p.name for p in cost.phases] == ["reduce-scatter", "ring-allgather"]
        assert cost.phases[0].seconds == cost.phases[1].seconds
        assert cost.total == ETH.allreduce_time(4e6, 8)

    def test_volume_matches_ring(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("ring-allreduce").cost(topo, "allreduce", 8e6)
        # 2(N-1)/N of the buffer crosses each link.
        assert cost.volume_bytes == pytest.approx(2 * 7 / 8 * 8e6)


class TestFlatAllgather:
    def test_single_phase_matches_closed_form(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert [p.name for p in cost.phases] == ["ring-allgather"]
        assert cost.total == ETH.allgather_time(1e5, 8)
        assert cost.volume_bytes == pytest.approx(7e5)

    def test_multi_node_gated_by_inter_link(self):
        topo = two_level(4, 8)
        cost = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert cost.phases[0].link == "eth"
        assert cost.total == ETH.allgather_time(1e5, 32)


class TestRecursiveDoubling:
    def test_allreduce_round_count_and_latency_bound_win(self):
        topo = ClusterTopology.flat(ETH, 8)
        algo = get_collective_algorithm("recursive-doubling")
        cost = algo.cost(topo, "allreduce", 1e3)
        assert len(cost.phases) == 3  # log2(8)
        # Tiny payloads are latency-bound: 3 latencies beat the ring's 14.
        assert cost.total < ETH.allreduce_time(1e3, 8)
        # Large payloads are bandwidth-bound: shipping the full buffer each
        # round loses to the ring's 1/N chunks.
        assert algo.cost(topo, "allreduce", 1e8).total > ETH.allreduce_time(1e8, 8)

    def test_allgather_volume_matches_ring_for_power_of_two(self):
        topo = ClusterTopology.flat(ETH, 8)
        cost = get_collective_algorithm("recursive-doubling").cost(topo, "allgather", 1e4)
        assert cost.volume_bytes == pytest.approx(7e4)  # (N-1) payloads total
        assert cost.total < ETH.allgather_time(1e4, 8)  # 3 latencies vs 7

    def test_non_power_of_two_rounds(self):
        topo = ClusterTopology.flat(ETH, 5)
        cost = get_collective_algorithm("recursive-doubling").cost(topo, "allgather", 1e4)
        assert len(cost.phases) == 3  # ceil(log2(5))
        # The capped final round keeps the total volume at (N-1) payloads.
        assert cost.volume_bytes == pytest.approx(4e4)


class TestHierarchical:
    def test_allgather_phase_structure(self):
        topo = two_level(4, 8)
        cost = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        assert [p.name for p in cost.phases] == [
            "intra-gather",
            "inter-allgather",
            "intra-broadcast",
        ]
        assert [p.link for p in cost.phases] == ["fast", "eth", "fast"]
        # Inter-node ring carries one node-aggregate per node: (M-1) * D * p.
        assert cost.phases[1].volume_bytes == pytest.approx(3 * 8 * 1e5)

    def test_single_device_per_node_collapses_to_flat(self):
        topo = ClusterTopology(num_nodes=8, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        flat = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 1e5)
        assert hier.total == flat.total
        assert [p.name for p in hier.phases] == ["inter-allgather"]

    def test_single_node_uses_only_intra_phases(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=8, inter_node=ETH, intra_node=FAST)
        cost = get_collective_algorithm("hierarchical").cost(topo, "allgather", 1e5)
        assert {p.link for p in cost.phases} == {"fast"}

    def test_single_worker_is_free(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        for op in ("allreduce", "allgather"):
            cost = get_collective_algorithm("hierarchical").cost(topo, op, 1e6)
            assert cost.phases == ()
            assert cost.total == 0.0

    def test_allreduce_collapses_to_ring_when_single_device(self):
        topo = ClusterTopology(num_nodes=8, devices_per_node=1, inter_node=ETH, intra_node=FAST)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allreduce", 4e6)
        assert hier.total == ETH.allreduce_time(4e6, 8)

    def test_beats_flat_on_fast_intra_fabric(self):
        topo = two_level(4, 8)
        assert FAST.bytes_per_second / ETH.bytes_per_second > hierarchical_crossover_factor(topo)
        hier = get_collective_algorithm("hierarchical").cost(topo, "allgather", 4e6)
        flat = get_collective_algorithm("flat-allgather").cost(topo, "allgather", 4e6)
        assert hier.total < flat.total

    def test_crossover_factor(self):
        assert hierarchical_crossover_factor(two_level(4, 8)) == pytest.approx(38 / 7)
        assert hierarchical_crossover_factor(ClusterTopology.flat(ETH, 8)) == math.inf


class TestCollectiveModel:
    def test_validates_algorithm_choices(self):
        topo = ClusterTopology.flat(ETH, 4)
        with pytest.raises(ValueError):
            CollectiveModel(topo, allreduce_algorithm="flat-allgather")
        with pytest.raises(ValueError):
            CollectiveModel(topo, allgather_algorithm="ring-allreduce")
        with pytest.raises(ValueError):
            CollectiveModel(topo, allgather_algorithm="nccl")

    def test_recursive_doubling_serves_both_ops(self):
        model = CollectiveModel(
            ClusterTopology.flat(ETH, 8),
            allreduce_algorithm="recursive-doubling",
            allgather_algorithm="recursive-doubling",
        )
        assert model.allreduce_time(1e6) > 0.0
        assert model.allgather_time(1e6) > 0.0

    def test_num_workers_comes_from_topology(self):
        assert CollectiveModel(two_level(2, 3)).num_workers == 6


class TestTopologyPresets:
    def test_registry_contents(self):
        assert set(TOPOLOGIES) == {"cluster1", "cluster1-25g", "cluster2", "ethernet-4x8"}

    def test_cluster1_mirrors_appendix_d(self):
        topo = get_topology("cluster1")
        assert (topo.num_nodes, topo.devices_per_node) == (8, 1)
        assert topo.inter_node is CLUSTER_ETHERNET_10G
        assert get_topology("cluster1-25g").inter_node.name == "ethernet-25g"

    def test_cluster2_mirrors_appendix_d(self):
        topo = get_topology("cluster2")
        assert (topo.num_nodes, topo.devices_per_node) == (1, 8)
        assert topo.bottleneck_link is NODE_INFINIBAND_100G

    def test_lookup_by_full_name(self):
        assert get_topology("cluster1-ethernet-10g") is get_topology("cluster1")
        assert get_topology("ETHERNET-4X8") is TOPOLOGIES["ethernet-4x8"]

    def test_unknown_lists_keys_and_full_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_topology("cluster3")
        message = str(excinfo.value)
        assert "cluster1" in message
        assert "cluster2-infiniband-100g" in message

    def test_ethernet_4x8_clears_the_crossover(self):
        topo = get_topology("ethernet-4x8")
        ratio = topo.intra_node.bytes_per_second / topo.inter_node.bytes_per_second
        assert ratio > hierarchical_crossover_factor(topo)

    def test_presets_price_flat_like_their_network(self):
        # Cluster 1 is single-level, so every algorithm reduces to the 10g
        # Ethernet closed forms.
        topo = get_topology("cluster1")
        model = CollectiveModel(topo)
        assert model.allreduce_time(4e6) == get_network("10g").allreduce_time(4e6, 8)
        assert model.allgather_time(1e5) == get_network("10g").allgather_time(1e5, 8)
