"""Tests for the event-driven iteration schedule simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    OVERLAP_POLICIES,
    BucketTask,
    PhaseEvent,
    ready_times_from_fractions,
    simulate_iteration,
    validate_overlap,
)


def _tasks(durations, compute=1.0):
    """Tasks with reverse-order readiness over equal-size buckets."""
    n = len(durations)
    return [
        BucketTask(
            index=i,
            ready_seconds=compute * (n - i) / n,
            compress_seconds=c,
            comm_seconds=m,
        )
        for i, (c, m) in enumerate(durations)
    ]


class TestPolicies:
    def test_none_matches_closed_form_sum(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)], compute=1.0)
        schedule = simulate_iteration(tasks, compute_seconds=1.0, overlap="none", update_seconds=0.05)
        assert schedule.iteration_seconds == pytest.approx(1.0 + 0.6 + 1.1 + 0.05)
        assert schedule.iteration_seconds == pytest.approx(schedule.serialized_seconds)
        assert schedule.overlap_saving == pytest.approx(0.0)

    def test_comm_strictly_faster_on_multi_bucket(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)])
        none = simulate_iteration(tasks, compute_seconds=1.0, overlap="none")
        comm = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm")
        assert comm.iteration_seconds < none.iteration_seconds
        assert 0.0 < comm.overlap_saving < 1.0

    def test_comm_compress_at_least_as_fast_as_comm(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)])
        comm = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm")
        both = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm+compress")
        assert both.iteration_seconds < comm.iteration_seconds

    def test_policy_ordering_single_bucket_degenerates(self):
        # One bucket (ready only when backprop completes): nothing to overlap,
        # every policy prices the same critical path.
        task = [BucketTask(index=0, ready_seconds=1.0, compress_seconds=0.3, comm_seconds=0.4)]
        totals = {
            policy: simulate_iteration(task, compute_seconds=1.0, overlap=policy).iteration_seconds
            for policy in OVERLAP_POLICIES
        }
        assert totals["none"] == pytest.approx(1.7)
        assert totals["comm"] == pytest.approx(totals["none"])
        assert totals["comm+compress"] == pytest.approx(totals["none"])

    def test_ragged_last_bucket_schedule(self):
        # A small ragged bucket ready last still serialises correctly on both lanes.
        tasks = _tasks([(0.2, 0.4), (0.2, 0.4), (0.01, 0.02)])
        schedule = simulate_iteration(tasks, compute_seconds=0.5, overlap="comm")
        events = {e.index: e for e in schedule.events}
        # The network lane never runs two all-gathers at once.
        spans = sorted((e.comm_start, e.comm_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))
        # Bucket 0 is ready last; its compression cannot start before backprop ends.
        assert events[0].compress_start >= 0.5

    def test_delayed_readiness_gates_every_policy(self):
        # A ready time beyond compute_seconds (delayed readiness) must gate
        # compression under all policies — no gradient compresses before it exists.
        task = [BucketTask(index=0, ready_seconds=2.0, compress_seconds=0.5, comm_seconds=0.1)]
        for policy in OVERLAP_POLICIES:
            schedule = simulate_iteration(task, compute_seconds=1.0, overlap=policy)
            assert schedule.events[0].compress_start >= 2.0
            assert schedule.iteration_seconds == pytest.approx(2.6)

    def test_empty_tasks(self):
        schedule = simulate_iteration([], compute_seconds=0.7, overlap="comm", update_seconds=0.1)
        assert schedule.iteration_seconds == pytest.approx(0.8)
        assert schedule.events == ()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            simulate_iteration([], compute_seconds=1.0, overlap="pipelined")
        with pytest.raises(ValueError):
            validate_overlap("overlapped")
        with pytest.raises(ValueError):
            BucketTask(index=0, ready_seconds=-1.0, compress_seconds=0.0, comm_seconds=0.0)
        with pytest.raises(ValueError):
            BucketTask(index=-1, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.0)
        with pytest.raises(ValueError):
            simulate_iteration([], compute_seconds=-0.1)
        with pytest.raises(ValueError):
            ready_times_from_fractions([1.5], 1.0)

    def test_ready_times_from_fractions(self):
        assert ready_times_from_fractions([1.0, 0.5, 0.0], 2.0) == [2.0, 1.0, 0.0]


class TestPhaseEvents:
    """Per-phase collective events on the network lane (multi-phase collectives)."""

    def _phased_task(self, index=0, ready=0.0, compress=0.1):
        phases = (("intra-gather", 0.05), ("inter-allgather", 0.3), ("intra-broadcast", 0.1))
        total = sum(s for _, s in phases)
        return BucketTask(
            index=index,
            ready_seconds=ready,
            compress_seconds=compress,
            comm_seconds=total,
            comm_phases=phases,
        )

    def test_phases_tile_the_comm_span(self):
        task = self._phased_task()
        schedule = simulate_iteration([task], compute_seconds=0.5, overlap="comm")
        event = schedule.events[0]
        assert [p.name for p in event.phases] == [
            "intra-gather",
            "inter-allgather",
            "intra-broadcast",
        ]
        assert event.phases[0].start == event.comm_start
        assert event.phases[-1].end == event.comm_end
        for before, after in zip(event.phases, event.phases[1:]):
            assert before.end == after.start  # serial, gap-free
        for phase, (_, seconds) in zip(event.phases, task.comm_phases):
            assert phase.end - phase.start == pytest.approx(seconds)

    def test_phaseless_tasks_keep_empty_trace(self):
        task = BucketTask(index=0, ready_seconds=0.0, compress_seconds=0.1, comm_seconds=0.2)
        schedule = simulate_iteration([task], compute_seconds=0.5, overlap="comm")
        assert schedule.events[0].phases == ()

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_total_time_unchanged_by_phase_breakdown(self, policy):
        # Splitting a bucket's collective into serial phases is bookkeeping:
        # the critical path must match the single-span pricing exactly.
        phased = [self._phased_task(index=i, ready=1.0 - 0.5 * i) for i in range(2)]
        merged = [
            BucketTask(
                index=t.index,
                ready_seconds=t.ready_seconds,
                compress_seconds=t.compress_seconds,
                comm_seconds=t.comm_seconds,
            )
            for t in phased
        ]
        with_phases = simulate_iteration(phased, compute_seconds=1.0, overlap=policy)
        without = simulate_iteration(merged, compute_seconds=1.0, overlap=policy)
        assert with_phases.iteration_seconds == without.iteration_seconds
        assert with_phases.serialized_seconds == without.serialized_seconds

    def test_phase_sum_mismatch_rejected(self):
        with pytest.raises(ValueError, match="comm_phases sum"):
            BucketTask(
                index=0,
                ready_seconds=0.0,
                compress_seconds=0.0,
                comm_seconds=1.0,
                comm_phases=(("only", 0.5),),
            )

    def test_negative_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BucketTask(
                index=0,
                ready_seconds=0.0,
                compress_seconds=0.0,
                comm_seconds=0.0,
                comm_phases=(("bad", -0.5), ("worse", 0.5)),
            )

    @settings(max_examples=100, deadline=None)
    @given(
        policy=st.sampled_from(OVERLAP_POLICIES),
        compute=st.floats(min_value=0.0, max_value=2.0),
        splits=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=4),
            min_size=1,
            max_size=5,
        ),
    )
    def test_lane_consistency_with_random_phase_splits(self, policy, compute, splits):
        tasks = []
        for i, durations in enumerate(splits):
            phases = tuple((f"phase-{j}", d) for j, d in enumerate(durations))
            tasks.append(
                BucketTask(
                    index=i,
                    ready_seconds=compute * (len(splits) - i) / len(splits),
                    compress_seconds=0.05,
                    comm_seconds=sum(durations),
                    comm_phases=phases,
                )
            )
        schedule = simulate_iteration(tasks, compute_seconds=compute, overlap=policy)
        spans = []
        for event in schedule.events:
            assert len(event.phases) == len(splits[event.index])
            assert event.phases[0].start == event.comm_start
            assert event.phases[-1].end == event.comm_end
            for phase in event.phases:
                assert isinstance(phase, PhaseEvent)
                assert phase.end >= phase.start - 1e-12
            for before, after in zip(event.phases, event.phases[1:]):
                assert before.end == after.start
            spans.append((event.comm_start, event.comm_end))
        # The network lane never runs two buckets' phases at once, and the
        # critical path still ends at (or after) the last phase.
        spans.sort()
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))
        last_phase_end = max(e.phases[-1].end for e in schedule.events)
        assert schedule.iteration_seconds >= last_phase_end - 1e-12


class TestPlacedPhaseEvents:
    """Explicitly placed (pipelined) phases on the network lane."""

    #: Two links, three phases, two chunks: gather/broadcast share link "a",
    #: the exchange runs on link "b"; chunk 1's gather overlaps chunk 0's
    #: exchange — exactly the shape the pipelined hierarchical cost emits.
    PLACED = (
        ("gather[c0]", 0.1, 0.0, "a"),
        ("exchange[c0]", 0.3, 0.1, "b"),
        ("broadcast[c0]", 0.05, 0.4, "a"),
        ("gather[c1]", 0.1, 0.1, "a"),
        ("exchange[c1]", 0.3, 0.4, "b"),
        ("broadcast[c1]", 0.05, 0.7, "a"),
    )

    def _task(self, index=0, ready=0.0):
        return BucketTask(
            index=index,
            ready_seconds=ready,
            compress_seconds=0.05,
            comm_seconds=0.75,
            comm_phases=self.PLACED,
        )

    def test_placed_phases_ride_at_their_offsets(self):
        task = self._task()
        assert task.has_placed_phases
        schedule = simulate_iteration([task], compute_seconds=0.2, overlap="comm")
        event = schedule.events[0]
        assert len(event.phases) == len(self.PLACED)
        for phase, (name, seconds, offset, link) in zip(event.phases, self.PLACED):
            assert phase.name == name
            assert phase.link == link
            assert phase.start == pytest.approx(event.comm_start + offset)
            assert phase.end == pytest.approx(phase.start + seconds)
        assert max(p.end for p in event.phases) == pytest.approx(event.comm_end)

    def test_same_link_phases_never_overlap_in_trace(self):
        tasks = [self._task(index=i, ready=0.2 - 0.1 * i) for i in range(2)]
        schedule = simulate_iteration(tasks, compute_seconds=0.2, overlap="comm")
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in schedule.events:
            for phase in event.phases:
                by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-12

    def test_total_comm_seconds_still_sums_exactly(self):
        tasks = [self._task(index=i) for i in range(3)]
        schedule = simulate_iteration(tasks, compute_seconds=0.2, overlap="comm")
        assert schedule.total_comm_seconds == pytest.approx(sum(t.comm_seconds for t in tasks))
        # Buckets still serialise on the network lane as whole occupancies.
        spans = sorted((e.comm_start, e.comm_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))

    def test_serial_tasks_report_no_placement(self):
        task = BucketTask(
            index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.4,
            comm_phases=(("one", 0.1), ("two", 0.3)),
        )
        assert not task.has_placed_phases

    def test_overlapping_same_link_placement_rejected(self):
        with pytest.raises(ValueError, match="overlap on link"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.3,
                comm_phases=(("p0", 0.2, 0.0, "a"), ("p1", 0.2, 0.1, "a")),
            )

    def test_end_mismatch_rejected(self):
        with pytest.raises(ValueError, match="comm_seconds"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=1.0,
                comm_phases=(("p0", 0.2, 0.0, "a"),),
            )

    def test_mixed_entry_shapes_rejected(self):
        with pytest.raises(ValueError, match="uniformly"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.5,
                comm_phases=(("p0", 0.2), ("p1", 0.3, 0.2, "a")),
            )

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.2,
                comm_phases=(("p0", 0.2, -0.1, "a"),),
            )

    @settings(max_examples=100, deadline=None)
    @given(
        policy=st.sampled_from(OVERLAP_POLICIES),
        chunks=st.integers(min_value=2, max_value=8),
        payload=st.floats(min_value=1e4, max_value=1e8),
        num_buckets=st.integers(min_value=1, max_value=4),
    )
    def test_lane_consistency_with_pipelined_collective_costs(
        self, policy, chunks, payload, num_buckets
    ):
        # End-to-end shape check: real pipelined hierarchical costs, mapped
        # through the timeline's own comm-phase conversion, must schedule
        # with exclusive per-link lanes and an exactly-summing comm total.
        from repro.distributed import COLLECTIVE_ALGORITHMS, ClusterTopology, NetworkModel
        from repro.distributed.timeline import _comm_phase_entries

        topology = ClusterTopology(
            num_nodes=4,
            devices_per_node=4,
            inter_node=NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter"),
            intra_node=NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="intra"),
        )
        cost = COLLECTIVE_ALGORITHMS["hierarchical"].cost(
            topology, "allgather", payload, pipeline_chunks=chunks
        )
        tasks = [
            BucketTask(
                index=i,
                ready_seconds=(num_buckets - i) / num_buckets,
                compress_seconds=0.01,
                comm_seconds=cost.total,
                comm_phases=_comm_phase_entries(cost),
            )
            for i in range(num_buckets)
        ]
        schedule = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy)
        assert schedule.total_comm_seconds == pytest.approx(
            sum(t.comm_seconds for t in tasks), rel=1e-12
        )
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in schedule.events:
            assert len(event.phases) == len(cost.phases)
            for phase in event.phases:
                assert event.comm_start - 1e-12 <= phase.start
                assert phase.end <= event.comm_end + 1e-12
                by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9 * max(1.0, a_end)


@st.composite
def _workloads(draw):
    compute = draw(st.floats(min_value=0.0, max_value=2.0))
    n = draw(st.integers(min_value=1, max_value=8))
    fractions = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
            )
        ),
        reverse=True,
    )
    tasks = [
        BucketTask(
            index=i,
            ready_seconds=fractions[i] * compute,
            compress_seconds=draw(st.floats(min_value=0.0, max_value=1.0)),
            comm_seconds=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for i in range(n)
    ]
    update = draw(st.floats(min_value=0.0, max_value=0.2))
    return tasks, compute, update


class TestCriticalPathBounds:
    @settings(max_examples=200, deadline=None)
    @given(workload=_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_bounded_by_serial_sum_and_resource_lower_bound(self, workload, policy):
        tasks, compute, update = workload
        schedule = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update
        )
        total_compress = sum(t.compress_seconds for t in tasks)
        total_comm = sum(t.comm_seconds for t in tasks)
        serial = compute + total_compress + total_comm + update
        # Never better than keeping each resource lane 100% busy...
        lower = max(compute, total_comm, total_compress) + update
        # ...never worse than serialising everything.
        assert lower - 1e-9 <= schedule.iteration_seconds <= serial + 1e-9
        assert schedule.serialized_seconds == pytest.approx(serial)

    @settings(max_examples=100, deadline=None)
    @given(workload=_workloads())
    def test_stronger_policies_never_slower(self, workload):
        tasks, compute, update = workload
        totals = [
            simulate_iteration(
                tasks, compute_seconds=compute, overlap=policy, update_seconds=update
            ).iteration_seconds
            for policy in ("none", "comm", "comm+compress")
        ]
        assert totals[0] + 1e-9 >= totals[1] >= totals[2] - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(workload=_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_event_trace_is_consistent(self, workload, policy):
        tasks, compute, update = workload
        schedule = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update
        )
        assert len(schedule.events) == len(tasks)
        by_index = {t.index: t for t in tasks}
        for event in schedule.events:
            task = by_index[event.index]
            assert event.compress_start >= event.ready - 1e-12
            assert event.compress_end == pytest.approx(event.compress_start + task.compress_seconds)
            assert event.comm_start >= event.compress_end - 1e-12
            assert event.comm_end == pytest.approx(event.comm_start + task.comm_seconds)
            if policy != "comm+compress":
                assert event.compress_start >= compute - 1e-12
        # Compression jobs serialise on the compression stream.
        spans = sorted((e.compress_start, e.compress_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-9 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))
