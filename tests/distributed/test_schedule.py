"""Tests for the event-driven iteration schedule simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    OVERLAP_POLICIES,
    BucketTask,
    PhaseEvent,
    ready_times_from_fractions,
    simulate_iteration,
    validate_overlap,
)


def _tasks(durations, compute=1.0):
    """Tasks with reverse-order readiness over equal-size buckets."""
    n = len(durations)
    return [
        BucketTask(
            index=i,
            ready_seconds=compute * (n - i) / n,
            compress_seconds=c,
            comm_seconds=m,
        )
        for i, (c, m) in enumerate(durations)
    ]


class TestPolicies:
    def test_none_matches_closed_form_sum(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)], compute=1.0)
        schedule = simulate_iteration(tasks, compute_seconds=1.0, overlap="none", update_seconds=0.05)
        assert schedule.iteration_seconds == pytest.approx(1.0 + 0.6 + 1.1 + 0.05)
        assert schedule.iteration_seconds == pytest.approx(schedule.serialized_seconds)
        assert schedule.overlap_saving == pytest.approx(0.0)

    def test_comm_strictly_faster_on_multi_bucket(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)])
        none = simulate_iteration(tasks, compute_seconds=1.0, overlap="none")
        comm = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm")
        assert comm.iteration_seconds < none.iteration_seconds
        assert 0.0 < comm.overlap_saving < 1.0

    def test_comm_compress_at_least_as_fast_as_comm(self):
        tasks = _tasks([(0.2, 0.5), (0.1, 0.4), (0.3, 0.2)])
        comm = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm")
        both = simulate_iteration(tasks, compute_seconds=1.0, overlap="comm+compress")
        assert both.iteration_seconds < comm.iteration_seconds

    def test_policy_ordering_single_bucket_degenerates(self):
        # One bucket (ready only when backprop completes): nothing to overlap,
        # every policy prices the same critical path.
        task = [BucketTask(index=0, ready_seconds=1.0, compress_seconds=0.3, comm_seconds=0.4)]
        totals = {
            policy: simulate_iteration(task, compute_seconds=1.0, overlap=policy).iteration_seconds
            for policy in OVERLAP_POLICIES
        }
        assert totals["none"] == pytest.approx(1.7)
        assert totals["comm"] == pytest.approx(totals["none"])
        assert totals["comm+compress"] == pytest.approx(totals["none"])

    def test_ragged_last_bucket_schedule(self):
        # A small ragged bucket ready last still serialises correctly on both lanes.
        tasks = _tasks([(0.2, 0.4), (0.2, 0.4), (0.01, 0.02)])
        schedule = simulate_iteration(tasks, compute_seconds=0.5, overlap="comm")
        events = {e.index: e for e in schedule.events}
        # The network lane never runs two all-gathers at once.
        spans = sorted((e.comm_start, e.comm_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))
        # Bucket 0 is ready last; its compression cannot start before backprop ends.
        assert events[0].compress_start >= 0.5

    def test_delayed_readiness_gates_every_policy(self):
        # A ready time beyond compute_seconds (delayed readiness) must gate
        # compression under all policies — no gradient compresses before it exists.
        task = [BucketTask(index=0, ready_seconds=2.0, compress_seconds=0.5, comm_seconds=0.1)]
        for policy in OVERLAP_POLICIES:
            schedule = simulate_iteration(task, compute_seconds=1.0, overlap=policy)
            assert schedule.events[0].compress_start >= 2.0
            assert schedule.iteration_seconds == pytest.approx(2.6)

    def test_empty_tasks(self):
        schedule = simulate_iteration([], compute_seconds=0.7, overlap="comm", update_seconds=0.1)
        assert schedule.iteration_seconds == pytest.approx(0.8)
        assert schedule.events == ()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            simulate_iteration([], compute_seconds=1.0, overlap="pipelined")
        with pytest.raises(ValueError):
            validate_overlap("overlapped")
        with pytest.raises(ValueError):
            BucketTask(index=0, ready_seconds=-1.0, compress_seconds=0.0, comm_seconds=0.0)
        with pytest.raises(ValueError):
            BucketTask(index=-1, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.0)
        with pytest.raises(ValueError):
            simulate_iteration([], compute_seconds=-0.1)
        with pytest.raises(ValueError):
            ready_times_from_fractions([1.5], 1.0)

    def test_ready_times_from_fractions(self):
        assert ready_times_from_fractions([1.0, 0.5, 0.0], 2.0) == [2.0, 1.0, 0.0]


class TestPhaseEvents:
    """Per-phase collective events on the network lane (multi-phase collectives)."""

    def _phased_task(self, index=0, ready=0.0, compress=0.1):
        phases = (("intra-gather", 0.05), ("inter-allgather", 0.3), ("intra-broadcast", 0.1))
        total = sum(s for _, s in phases)
        return BucketTask(
            index=index,
            ready_seconds=ready,
            compress_seconds=compress,
            comm_seconds=total,
            comm_phases=phases,
        )

    def test_phases_tile_the_comm_span(self):
        task = self._phased_task()
        schedule = simulate_iteration([task], compute_seconds=0.5, overlap="comm")
        event = schedule.events[0]
        assert [p.name for p in event.phases] == [
            "intra-gather",
            "inter-allgather",
            "intra-broadcast",
        ]
        assert event.phases[0].start == event.comm_start
        assert event.phases[-1].end == event.comm_end
        for before, after in zip(event.phases, event.phases[1:]):
            assert before.end == after.start  # serial, gap-free
        for phase, (_, seconds) in zip(event.phases, task.comm_phases):
            assert phase.end - phase.start == pytest.approx(seconds)

    def test_phaseless_tasks_keep_empty_trace(self):
        task = BucketTask(index=0, ready_seconds=0.0, compress_seconds=0.1, comm_seconds=0.2)
        schedule = simulate_iteration([task], compute_seconds=0.5, overlap="comm")
        assert schedule.events[0].phases == ()

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_total_time_unchanged_by_phase_breakdown(self, policy):
        # Splitting a bucket's collective into serial phases is bookkeeping:
        # the critical path must match the single-span pricing exactly.
        phased = [self._phased_task(index=i, ready=1.0 - 0.5 * i) for i in range(2)]
        merged = [
            BucketTask(
                index=t.index,
                ready_seconds=t.ready_seconds,
                compress_seconds=t.compress_seconds,
                comm_seconds=t.comm_seconds,
            )
            for t in phased
        ]
        with_phases = simulate_iteration(phased, compute_seconds=1.0, overlap=policy)
        without = simulate_iteration(merged, compute_seconds=1.0, overlap=policy)
        assert with_phases.iteration_seconds == without.iteration_seconds
        assert with_phases.serialized_seconds == without.serialized_seconds

    def test_phase_sum_mismatch_rejected(self):
        with pytest.raises(ValueError, match="comm_phases sum"):
            BucketTask(
                index=0,
                ready_seconds=0.0,
                compress_seconds=0.0,
                comm_seconds=1.0,
                comm_phases=(("only", 0.5),),
            )

    def test_negative_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BucketTask(
                index=0,
                ready_seconds=0.0,
                compress_seconds=0.0,
                comm_seconds=0.0,
                comm_phases=(("bad", -0.5), ("worse", 0.5)),
            )

    @settings(max_examples=100, deadline=None)
    @given(
        policy=st.sampled_from(OVERLAP_POLICIES),
        compute=st.floats(min_value=0.0, max_value=2.0),
        splits=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=4),
            min_size=1,
            max_size=5,
        ),
    )
    def test_lane_consistency_with_random_phase_splits(self, policy, compute, splits):
        tasks = []
        for i, durations in enumerate(splits):
            phases = tuple((f"phase-{j}", d) for j, d in enumerate(durations))
            tasks.append(
                BucketTask(
                    index=i,
                    ready_seconds=compute * (len(splits) - i) / len(splits),
                    compress_seconds=0.05,
                    comm_seconds=sum(durations),
                    comm_phases=phases,
                )
            )
        schedule = simulate_iteration(tasks, compute_seconds=compute, overlap=policy)
        spans = []
        for event in schedule.events:
            assert len(event.phases) == len(splits[event.index])
            assert event.phases[0].start == event.comm_start
            assert event.phases[-1].end == event.comm_end
            for phase in event.phases:
                assert isinstance(phase, PhaseEvent)
                assert phase.end >= phase.start - 1e-12
            for before, after in zip(event.phases, event.phases[1:]):
                assert before.end == after.start
            spans.append((event.comm_start, event.comm_end))
        # The network lane never runs two buckets' phases at once, and the
        # critical path still ends at (or after) the last phase.
        spans.sort()
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))
        last_phase_end = max(e.phases[-1].end for e in schedule.events)
        assert schedule.iteration_seconds >= last_phase_end - 1e-12


class TestPlacedPhaseEvents:
    """Explicitly placed (pipelined) phases on the network lane."""

    #: Two links, three phases, two chunks: gather/broadcast share link "a",
    #: the exchange runs on link "b"; chunk 1's gather overlaps chunk 0's
    #: exchange — exactly the shape the pipelined hierarchical cost emits.
    PLACED = (
        ("gather[c0]", 0.1, 0.0, "a"),
        ("exchange[c0]", 0.3, 0.1, "b"),
        ("broadcast[c0]", 0.05, 0.4, "a"),
        ("gather[c1]", 0.1, 0.1, "a"),
        ("exchange[c1]", 0.3, 0.4, "b"),
        ("broadcast[c1]", 0.05, 0.7, "a"),
    )

    def _task(self, index=0, ready=0.0):
        return BucketTask(
            index=index,
            ready_seconds=ready,
            compress_seconds=0.05,
            comm_seconds=0.75,
            comm_phases=self.PLACED,
        )

    def test_placed_phases_ride_at_their_offsets(self):
        task = self._task()
        assert task.has_placed_phases
        schedule = simulate_iteration([task], compute_seconds=0.2, overlap="comm")
        event = schedule.events[0]
        assert len(event.phases) == len(self.PLACED)
        for phase, (name, seconds, offset, link) in zip(event.phases, self.PLACED):
            assert phase.name == name
            assert phase.link == link
            assert phase.start == pytest.approx(event.comm_start + offset)
            assert phase.end == pytest.approx(phase.start + seconds)
        assert max(p.end for p in event.phases) == pytest.approx(event.comm_end)

    def test_same_link_phases_never_overlap_in_trace(self):
        tasks = [self._task(index=i, ready=0.2 - 0.1 * i) for i in range(2)]
        schedule = simulate_iteration(tasks, compute_seconds=0.2, overlap="comm")
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in schedule.events:
            for phase in event.phases:
                by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-12

    def test_total_comm_seconds_still_sums_exactly(self):
        tasks = [self._task(index=i) for i in range(3)]
        schedule = simulate_iteration(tasks, compute_seconds=0.2, overlap="comm")
        assert schedule.total_comm_seconds == pytest.approx(sum(t.comm_seconds for t in tasks))
        # Buckets still serialise on the network lane as whole occupancies.
        spans = sorted((e.comm_start, e.comm_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-12 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))

    def test_serial_tasks_report_no_placement(self):
        task = BucketTask(
            index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.4,
            comm_phases=(("one", 0.1), ("two", 0.3)),
        )
        assert not task.has_placed_phases

    def test_overlapping_same_link_placement_rejected(self):
        with pytest.raises(ValueError, match="overlap on link"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.3,
                comm_phases=(("p0", 0.2, 0.0, "a"), ("p1", 0.2, 0.1, "a")),
            )

    def test_end_mismatch_rejected(self):
        with pytest.raises(ValueError, match="comm_seconds"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=1.0,
                comm_phases=(("p0", 0.2, 0.0, "a"),),
            )

    def test_mixed_entry_shapes_rejected(self):
        with pytest.raises(ValueError, match="uniformly"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.5,
                comm_phases=(("p0", 0.2), ("p1", 0.3, 0.2, "a")),
            )

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BucketTask(
                index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.2,
                comm_phases=(("p0", 0.2, -0.1, "a"),),
            )

    @settings(max_examples=100, deadline=None)
    @given(
        policy=st.sampled_from(OVERLAP_POLICIES),
        chunks=st.integers(min_value=2, max_value=8),
        payload=st.floats(min_value=1e4, max_value=1e8),
        num_buckets=st.integers(min_value=1, max_value=4),
    )
    def test_lane_consistency_with_pipelined_collective_costs(
        self, policy, chunks, payload, num_buckets
    ):
        # End-to-end shape check: real pipelined hierarchical costs, mapped
        # through the timeline's own comm-phase conversion, must schedule
        # with exclusive per-link lanes and an exactly-summing comm total.
        from repro.distributed import COLLECTIVE_ALGORITHMS, ClusterTopology, NetworkModel
        from repro.distributed.timeline import _comm_phase_entries

        topology = ClusterTopology(
            num_nodes=4,
            devices_per_node=4,
            inter_node=NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter"),
            intra_node=NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="intra"),
        )
        cost = COLLECTIVE_ALGORITHMS["hierarchical"].cost(
            topology, "allgather", payload, pipeline_chunks=chunks
        )
        tasks = [
            BucketTask(
                index=i,
                ready_seconds=(num_buckets - i) / num_buckets,
                compress_seconds=0.01,
                comm_seconds=cost.total,
                comm_phases=_comm_phase_entries(cost),
            )
            for i in range(num_buckets)
        ]
        schedule = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy)
        assert schedule.total_comm_seconds == pytest.approx(
            sum(t.comm_seconds for t in tasks), rel=1e-12
        )
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in schedule.events:
            assert len(event.phases) == len(cost.phases)
            for phase in event.phases:
                assert event.comm_start - 1e-12 <= phase.start
                assert phase.end <= event.comm_end + 1e-12
                by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9 * max(1.0, a_end)


@st.composite
def _workloads(draw):
    compute = draw(st.floats(min_value=0.0, max_value=2.0))
    n = draw(st.integers(min_value=1, max_value=8))
    fractions = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
            )
        ),
        reverse=True,
    )
    tasks = [
        BucketTask(
            index=i,
            ready_seconds=fractions[i] * compute,
            compress_seconds=draw(st.floats(min_value=0.0, max_value=1.0)),
            comm_seconds=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for i in range(n)
    ]
    update = draw(st.floats(min_value=0.0, max_value=0.2))
    return tasks, compute, update


class TestCriticalPathBounds:
    @settings(max_examples=200, deadline=None)
    @given(workload=_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_bounded_by_serial_sum_and_resource_lower_bound(self, workload, policy):
        tasks, compute, update = workload
        schedule = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update
        )
        total_compress = sum(t.compress_seconds for t in tasks)
        total_comm = sum(t.comm_seconds for t in tasks)
        serial = compute + total_compress + total_comm + update
        # Never better than keeping each resource lane 100% busy...
        lower = max(compute, total_comm, total_compress) + update
        # ...never worse than serialising everything.
        assert lower - 1e-9 <= schedule.iteration_seconds <= serial + 1e-9
        assert schedule.serialized_seconds == pytest.approx(serial)

    @settings(max_examples=100, deadline=None)
    @given(workload=_workloads())
    def test_stronger_policies_never_slower(self, workload):
        tasks, compute, update = workload
        totals = [
            simulate_iteration(
                tasks, compute_seconds=compute, overlap=policy, update_seconds=update
            ).iteration_seconds
            for policy in ("none", "comm", "comm+compress")
        ]
        assert totals[0] + 1e-9 >= totals[1] >= totals[2] - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(workload=_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_event_trace_is_consistent(self, workload, policy):
        tasks, compute, update = workload
        schedule = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update
        )
        assert len(schedule.events) == len(tasks)
        by_index = {t.index: t for t in tasks}
        for event in schedule.events:
            task = by_index[event.index]
            assert event.compress_start >= event.ready - 1e-12
            assert event.compress_end == pytest.approx(event.compress_start + task.compress_seconds)
            assert event.comm_start >= event.compress_end - 1e-12
            assert event.comm_end == pytest.approx(event.comm_start + task.comm_seconds)
            if policy != "comm+compress":
                assert event.compress_start >= compute - 1e-12
        # Compression jobs serialise on the compression stream.
        spans = sorted((e.compress_start, e.compress_end) for e in schedule.events)
        assert all(a_end <= b_start + 1e-9 for (_, a_end), (b_start, _) in zip(spans, spans[1:]))


class TestCrossBucketPipeline:
    """Per-link network lanes: buckets overlap wherever they use different fabrics."""

    #: Serial hierarchical-style template: gather (intra "a"), exchange
    #: (inter "b"), broadcast (intra "a") — placed back-to-back.
    def _task(self, index=0, ready=0.0, compress=0.02, gather=0.1, exchange=0.5, broadcast=0.08):
        total = gather + exchange + broadcast
        return BucketTask(
            index=index,
            ready_seconds=ready,
            compress_seconds=compress,
            comm_seconds=total,
            comm_phases=(
                ("gather", gather, 0.0, "a"),
                ("exchange", exchange, gather, "b"),
                ("broadcast", broadcast, gather + exchange, "a"),
            ),
        )

    def _tasks(self, n=3, compute=0.3):
        return [
            self._task(index=i, ready=compute * (n - i) / n) for i in range(n)
        ]

    def test_flag_off_matches_default_bit_for_bit(self):
        tasks = self._tasks()
        base = simulate_iteration(tasks, compute_seconds=0.3, overlap="comm")
        off = simulate_iteration(
            tasks, compute_seconds=0.3, overlap="comm", cross_bucket_pipeline=False
        )
        assert off == base
        assert not off.cross_bucket

    def test_cross_bucket_overlaps_intra_under_inter(self):
        tasks = self._tasks()
        serial = simulate_iteration(tasks, compute_seconds=0.3, overlap="comm")
        cross = simulate_iteration(
            tasks, compute_seconds=0.3, overlap="comm", cross_bucket_pipeline=True
        )
        assert cross.cross_bucket
        assert cross.iteration_seconds < serial.iteration_seconds
        # Steady state: the inter lane stays contiguous, so each later bucket
        # saves one gather + one broadcast of serial-lane time.
        events = sorted(cross.events, key=lambda e: e.comm_start)
        for before, after in zip(events, events[1:]):
            assert after.comm_start < before.comm_end  # whole occupancies overlap
        # The bucket's internal placement rides rigidly at its new offset.
        for event in cross.events:
            assert event.phases[0].start == pytest.approx(event.comm_start)
            assert event.phases[-1].end == pytest.approx(event.comm_end)

    def test_single_link_tasks_degenerate_to_serial_lane(self):
        # Phases all on one fabric (or no phase breakdown at all): nothing to
        # overlap, the per-link lanes reproduce the serial lane exactly.
        single = [
            BucketTask(
                index=i,
                ready_seconds=0.1 * (3 - i),
                compress_seconds=0.01,
                comm_seconds=0.2,
                comm_phases=(("ring", 0.2, 0.0, "eth"),),
            )
            for i in range(3)
        ]
        phaseless = [
            BucketTask(index=i, ready_seconds=0.1 * (3 - i), compress_seconds=0.01, comm_seconds=0.2)
            for i in range(3)
        ]
        for tasks in (single, phaseless):
            for policy in OVERLAP_POLICIES:
                serial = simulate_iteration(tasks, compute_seconds=0.3, overlap=policy)
                cross = simulate_iteration(
                    tasks, compute_seconds=0.3, overlap=policy, cross_bucket_pipeline=True
                )
                assert cross.iteration_seconds == serial.iteration_seconds
                assert [(e.comm_start, e.comm_end) for e in cross.events] == [
                    (e.comm_start, e.comm_end) for e in serial.events
                ]

    def test_non_bool_flag_rejected(self):
        with pytest.raises(ValueError, match="cross_bucket_pipeline"):
            simulate_iteration([], compute_seconds=0.1, cross_bucket_pipeline=1)
        from repro.distributed import validate_cross_bucket

        assert validate_cross_bucket(True) is True
        with pytest.raises(ValueError, match="bool"):
            validate_cross_bucket("false")

    def test_anonymous_lane_conflicts_with_named_fabrics(self):
        # A bucket without a phase breakdown occupies "the network" — the
        # same physical wires as any named fabric — so it must serialise
        # against placed-phase buckets instead of riding for free beside them.
        placed = self._task(index=0, ready=0.0)
        phaseless = BucketTask(
            index=1, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.3
        )
        for tasks in ([placed, phaseless], [phaseless, placed]):
            cross = simulate_iteration(
                tasks, compute_seconds=0.0, overlap="comm", cross_bucket_pipeline=True
            )
            serial = simulate_iteration(tasks, compute_seconds=0.0, overlap="comm")
            assert cross.iteration_seconds == pytest.approx(serial.iteration_seconds)
            spans = sorted((e.comm_start, e.comm_end) for e in cross.events)
            assert spans[0][1] <= spans[1][0] + 1e-12

    def test_empty_tasks_cross_bucket(self):
        schedule = simulate_iteration(
            [], compute_seconds=0.5, overlap="comm", update_seconds=0.1,
            cross_bucket_pipeline=True,
        )
        assert schedule.iteration_seconds == pytest.approx(0.6)
        assert schedule.link_utilization() == {}


@st.composite
def _linked_workloads(draw):
    """Buckets whose collectives chain randomly-linked phases back-to-back."""
    compute = draw(st.floats(min_value=0.0, max_value=1.0))
    n = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    for i in range(n):
        num_phases = draw(st.integers(min_value=1, max_value=4))
        durations = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=0.5),
                min_size=num_phases,
                max_size=num_phases,
            )
        )
        links = draw(
            st.lists(
                # "" is the anonymous pre-topology lane: it stands for the
                # same physical network as every named fabric.
                st.sampled_from(["intra", "inter", "bus", ""]),
                min_size=num_phases,
                max_size=num_phases,
            )
        )
        phases = []
        cursor = 0.0
        for j, (seconds, link) in enumerate(zip(durations, links)):
            phases.append((f"phase-{j}", seconds, cursor, link))
            cursor += seconds
        tasks.append(
            BucketTask(
                index=i,
                ready_seconds=compute * (n - i) / n,
                compress_seconds=draw(st.floats(min_value=0.0, max_value=0.2)),
                comm_seconds=cursor,
                comm_phases=tuple(phases),
            )
        )
    update = draw(st.floats(min_value=0.0, max_value=0.1))
    return tasks, compute, update


class TestCrossBucketInvariants:
    @settings(max_examples=150, deadline=None)
    @given(workload=_linked_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_per_link_exclusivity_across_buckets(self, workload, policy):
        tasks, compute, update = workload
        schedule = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update,
            cross_bucket_pipeline=True,
        )
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in schedule.events:
            for phase in event.phases:
                if phase.end > phase.start:
                    by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        anonymous = by_link.get("", [])
        for link, spans in by_link.items():
            # The anonymous "" lane is the same physical network as every
            # named fabric, so its spans join every lane's exclusivity check.
            spans = sorted(spans + (anonymous if link != "" else []))
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9 * max(1.0, a_end)

    @settings(max_examples=150, deadline=None)
    @given(workload=_linked_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_pipelined_never_slower_than_serial_lane(self, workload, policy):
        tasks, compute, update = workload
        serial = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update
        )
        cross = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update,
            cross_bucket_pipeline=True,
        )
        assert cross.iteration_seconds <= serial.iteration_seconds + 1e-9
        # Every bucket starts no later than on the serial lane.
        serial_starts = {e.index: e.comm_start for e in serial.events}
        for event in cross.events:
            assert event.comm_start <= serial_starts[event.index] + 1e-9

    @settings(max_examples=150, deadline=None)
    @given(workload=_linked_workloads(), policy=st.sampled_from(OVERLAP_POLICIES))
    def test_total_comm_seconds_conserved(self, workload, policy):
        tasks, compute, update = workload
        cross = simulate_iteration(
            tasks, compute_seconds=compute, overlap=policy, update_seconds=update,
            cross_bucket_pipeline=True,
        )
        assert cross.total_comm_seconds == pytest.approx(
            sum(t.comm_seconds for t in tasks), rel=1e-12, abs=1e-12
        )
        # Rigid sliding: each bucket's internal placement is preserved.
        by_index = {t.index: t for t in tasks}
        for event in cross.events:
            task = by_index[event.index]
            assert event.comm_end - event.comm_start == pytest.approx(task.comm_seconds)
            for phase, (_, seconds, offset, link) in zip(event.phases, task.comm_phases):
                assert phase.start - event.comm_start == pytest.approx(offset, abs=1e-12)
                assert phase.end - phase.start == pytest.approx(seconds, abs=1e-12)
                assert phase.link == link

    @settings(max_examples=80, deadline=None)
    @given(
        policy=st.sampled_from(OVERLAP_POLICIES),
        chunks=st.integers(min_value=1, max_value=8),
        payload=st.floats(min_value=1e4, max_value=1e8),
        num_buckets=st.integers(min_value=1, max_value=4),
    )
    def test_invariants_hold_for_real_pipelined_collectives(
        self, policy, chunks, payload, num_buckets
    ):
        # Chunk-placed hierarchical costs (gapped templates) through the
        # timeline's own phase conversion: exclusivity and conservation must
        # survive template sliding too.
        from repro.distributed import COLLECTIVE_ALGORITHMS, ClusterTopology, NetworkModel
        from repro.distributed.timeline import _comm_phase_entries

        topology = ClusterTopology(
            num_nodes=4,
            devices_per_node=4,
            inter_node=NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter"),
            intra_node=NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="intra"),
        )
        cost = COLLECTIVE_ALGORITHMS["hierarchical"].cost(
            topology, "allgather", payload, pipeline_chunks=chunks
        )
        tasks = [
            BucketTask(
                index=i,
                ready_seconds=(num_buckets - i) / num_buckets,
                compress_seconds=0.01,
                comm_seconds=cost.total,
                comm_phases=_comm_phase_entries(cost),
            )
            for i in range(num_buckets)
        ]
        serial = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy)
        cross = simulate_iteration(
            tasks, compute_seconds=1.0, overlap=policy, cross_bucket_pipeline=True
        )
        assert cross.iteration_seconds <= serial.iteration_seconds + 1e-9
        assert cross.total_comm_seconds == pytest.approx(
            sum(t.comm_seconds for t in tasks), rel=1e-12
        )
        by_link: dict[str, list[tuple[float, float]]] = {}
        for event in cross.events:
            for phase in event.phases:
                if phase.end > phase.start:
                    by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9 * max(1.0, a_end)


class TestLinkUtilization:
    def test_busy_seconds_sum_phase_durations(self, two_fabric_schedule):
        for cross in (False, True):
            util = two_fabric_schedule(cross).link_utilization()
            assert util["intra"]["busy_seconds"] == pytest.approx(3 * 0.18)
            assert util["inter"]["busy_seconds"] == pytest.approx(3 * 0.5)

    def test_cross_bucket_raises_link_utilization(self, two_fabric_schedule):
        serial = two_fabric_schedule(False).link_utilization()
        cross = two_fabric_schedule(True).link_utilization()
        # Same busy time over a shorter window on every fabric.
        for link in ("intra", "inter"):
            assert cross[link]["window_seconds"] < serial[link]["window_seconds"]
            assert cross[link]["utilization"] > serial[link]["utilization"]
        assert cross["inter"]["utilization"] <= 1.0 + 1e-9

    def test_phaseless_events_fall_on_anonymous_lane(self):
        tasks = [
            BucketTask(index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.4)
        ]
        schedule = simulate_iteration(tasks, compute_seconds=0.1, overlap="comm")
        util = schedule.link_utilization()
        assert set(util) == {""}
        assert util[""]["busy_seconds"] == pytest.approx(0.4)
        assert util[""]["utilization"] == pytest.approx(1.0)

    @pytest.mark.parametrize("cross", [False, True])
    def test_no_communication_at_all_reports_no_lanes(self, cross):
        # Regression: every bucket compresses but ships nothing, so no event
        # contributes to the window.  The window start must not be left at a
        # sentinel that leaks inf/NaN into utilizations — the contract is an
        # empty dict, same as a schedule with no buckets.
        tasks = [
            BucketTask(index=i, ready_seconds=0.0, compress_seconds=0.1, comm_seconds=0.0)
            for i in range(3)
        ]
        schedule = simulate_iteration(
            tasks, compute_seconds=0.1, overlap="comm", cross_bucket_pipeline=cross
        )
        assert schedule.link_utilization() == {}


class TestPr4GoldenSchedules:
    """Golden pins captured at the PR-4 head (commit 562d90d).

    The workload prices four buckets' hierarchical all-gathers on the
    ``ethernet-4x8`` preset (serial phases and ``pipeline_chunks=4``) and runs
    them through ``simulate_iteration`` with the serial network lane.  The
    ``cross_bucket_pipeline=False`` default must reproduce every number
    bit-for-bit — the cross-bucket refactor may not perturb the PR-4
    schedules.
    """

    PAYLOADS = (2_000_000.0, 1_500_000.0, 1_000_000.0, 500_000.0)
    COMPUTE = 0.05
    UPDATE = 0.001

    #: (collective, policy) -> (iteration_seconds, ((comm_start, comm_end), ...))
    GOLDEN = {
        ("serial", "none"): (0.36137904761904766, ((0.2403414285714286, 0.36037904761904765), (0.1502657142857143, 0.2403414285714286), (0.09015190476190478, 0.1502657142857143), (0.06000000000000001, 0.09015190476190478))),
        ("serial", "comm"): (0.35537904761904765, ((0.2343414285714286, 0.35437904761904765), (0.1442657142857143, 0.2343414285714286), (0.08415190476190477, 0.1442657142857143), (0.054000000000000006, 0.08415190476190477))),
        ("serial", "comm+compress"): (0.3178790476190476, ((0.19684142857142858, 0.3168790476190476), (0.1067657142857143, 0.19684142857142858), (0.04665190476190477, 0.1067657142857143), (0.0165, 0.04665190476190477))),
        ("chunked", "none"): (0.3441790476190476, ((0.2302914285714286, 0.3431790476190476), (0.1454657142857143, 0.2302914285714286), (0.08870190476190477, 0.1454657142857143), (0.06000000000000001, 0.08870190476190477))),
        ("chunked", "comm"): (0.3381790476190476, ((0.22429142857142859, 0.3371790476190476), (0.1394657142857143, 0.22429142857142859), (0.08270190476190477, 0.1394657142857143), (0.054000000000000006, 0.08270190476190477))),
        ("chunked", "comm+compress"): (0.3006790476190476, ((0.18679142857142858, 0.2996790476190476), (0.1019657142857143, 0.18679142857142858), (0.04520190476190476, 0.1019657142857143), (0.0165, 0.04520190476190476))),
    }

    def _tasks(self, model):
        from repro.distributed.timeline import _comm_phase_entries

        n = len(self.PAYLOADS)
        return [
            BucketTask(
                index=i,
                ready_seconds=self.COMPUTE * (n - i) / n,
                compress_seconds=0.001 * (i + 1),
                comm_seconds=model.allgather_cost(payload).total,
                comm_phases=_comm_phase_entries(model.allgather_cost(payload)),
            )
            for i, payload in enumerate(self.PAYLOADS)
        ]

    @pytest.mark.parametrize("collective", ["serial", "chunked"])
    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_serial_lane_reproduces_pr4_head(self, collective, policy):
        from repro.distributed import CollectiveModel, get_topology

        chunks = 4 if collective == "chunked" else 1
        model = CollectiveModel(
            get_topology("ethernet-4x8"),
            allgather_algorithm="hierarchical",
            pipeline_chunks=chunks,
        )
        schedule = simulate_iteration(
            self._tasks(model),
            compute_seconds=self.COMPUTE,
            overlap=policy,
            update_seconds=self.UPDATE,
            cross_bucket_pipeline=False,
        )
        golden_total, golden_spans = self.GOLDEN[(collective, policy)]
        assert schedule.iteration_seconds == golden_total
        assert tuple((e.comm_start, e.comm_end) for e in schedule.events) == golden_spans
