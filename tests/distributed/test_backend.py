"""Worker compression backends: serial/process parity and plumbing."""

import numpy as np
import pytest

from repro.data import make_blobs_classification
from repro.distributed import (
    WORKER_BACKENDS,
    DistributedTrainer,
    ProcessCompressionBackend,
    SerialCompressionBackend,
    TrainerConfig,
    create_worker_backend,
    validate_worker_backend,
)
from repro.compressors import create_compressor
from repro.gradients import realistic_gradient


def _dataset(seed=0):
    return make_blobs_classification(num_examples=128, num_features=16, num_classes=4, seed=seed)


def _model(seed=1):
    from repro.nn import build_model

    return build_model("mlp", input_dim=16, hidden_dims=(32,), num_classes=4, seed=seed)


def _run(backend: str, *, num_workers: int, compressor: str = "dgc"):
    config = TrainerConfig(
        num_workers=num_workers,
        batch_size=8,
        iterations=6,
        ratio=0.01,
        lr=0.05,
        seed=0,
        compute_seconds=0.01,
        worker_backend=backend,
    )
    return DistributedTrainer(_model(), _dataset(), compressor, config).run()


class TestBackendPlumbing:
    def test_known_backends(self):
        assert WORKER_BACKENDS == ("serial", "process")
        for name in WORKER_BACKENDS:
            assert validate_worker_backend(name) == name

    def test_unknown_backend_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="unknown worker backend"):
            validate_worker_backend("threads")
        with pytest.raises(ValueError, match="serial"):
            validate_worker_backend("threads")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="unknown worker backend"):
            TrainerConfig(worker_backend="gpu")

    def test_factory_builds_right_type(self):
        assert isinstance(create_worker_backend("serial"), SerialCompressionBackend)
        assert isinstance(create_worker_backend("process"), ProcessCompressionBackend)

    def test_process_backend_rejects_nonpositive_pool(self):
        with pytest.raises(ValueError):
            ProcessCompressionBackend(processes=0)

    def test_serial_backend_preserves_worker_order(self):
        backend = create_worker_backend("serial")
        gradients = [realistic_gradient(512, seed=s) for s in range(3)]
        compressors = [create_compressor("topk") for _ in gradients]
        out = backend.compress_all(compressors, gradients, 0.1)
        assert len(out) == 3
        for (result, compressor), original, gradient in zip(out, compressors, gradients):
            assert compressor is original
            np.testing.assert_array_equal(result.sparse.values, gradient[result.sparse.indices])

    def test_close_is_idempotent(self):
        for name in WORKER_BACKENDS:
            backend = create_worker_backend(name)
            backend.close()
            backend.close()


class TestProcessBackendDeterminism:
    """``worker_backend="process"`` must reproduce serial metrics bit-for-bit.

    Tasks ship whole compressors through the pool and the trainer stores the
    returned (state-evolved) instances back, so adaptive state — DGC/random-k
    RNG streams included — follows the exact serial trajectory.  Records are
    frozen dataclasses, so ``==`` compares every field exactly.
    """

    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_metrics_identical_to_serial(self, num_workers):
        serial = _run("serial", num_workers=num_workers)
        process = _run("process", num_workers=num_workers)
        assert serial.metrics.records == process.metrics.records

    def test_adaptive_compressor_state_round_trips(self):
        # sidco-e adapts its stage controller across iterations; identical
        # metrics mean the controller state survived the pickle round-trips.
        serial = _run("serial", num_workers=2, compressor="sidco-e")
        process = _run("process", num_workers=2, compressor="sidco-e")
        assert serial.metrics.records == process.metrics.records

    def test_pool_is_released_after_run(self):
        config = TrainerConfig(
            num_workers=2,
            batch_size=8,
            iterations=3,
            ratio=0.01,
            lr=0.05,
            seed=0,
            compute_seconds=0.01,
            worker_backend="process",
        )
        trainer = DistributedTrainer(_model(), _dataset(), "topk", config)
        trainer.run()
        assert not trainer.backend._pool.is_open
