"""Tests for the network model."""

import pytest

from repro.distributed import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G, NetworkModel, get_network


class TestNetworkModel:
    def test_transfer_time_includes_latency(self):
        net = NetworkModel(bandwidth_gbps=8.0, latency_s=1e-3, efficiency=1.0)
        # 1e9 bytes at 1 GB/s = 1 s, plus 1 ms latency.
        assert net.transfer_time(1e9) == pytest.approx(1.001)

    def test_efficiency_reduces_effective_bandwidth(self):
        fast = NetworkModel(bandwidth_gbps=10.0, efficiency=1.0)
        slow = NetworkModel(bandwidth_gbps=10.0, efficiency=0.5)
        assert slow.transfer_time(1e8) > fast.transfer_time(1e8)

    def test_allreduce_single_worker_is_free(self):
        assert NetworkModel().allreduce_time(1e9, 1) == 0.0
        assert NetworkModel().allgather_time(1e6, 1) == 0.0

    def test_allreduce_scales_with_workers_and_bytes(self):
        net = NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0)
        t4 = net.allreduce_time(1e9, 4)
        t8 = net.allreduce_time(1e9, 8)
        # Ring all-reduce volume factor 2(N-1)/N grows slowly with N.
        assert t8 > t4
        assert net.allreduce_time(2e9, 8) == pytest.approx(2 * t8)

    def test_allgather_scales_linearly_with_workers(self):
        net = NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0)
        assert net.allgather_time(1e6, 9) == pytest.approx(2 * net.allgather_time(1e6, 5))

    def test_sparse_allgather_cheaper_than_dense_allreduce_when_sparse_enough(self):
        net = CLUSTER_ETHERNET_10G
        dense_bytes = 4 * 25_000_000
        sparse_bytes = 8 * 25_000  # 0.1% ratio, values + indices
        assert net.allgather_time(sparse_bytes, 8) < net.allreduce_time(dense_bytes, 8)

    @pytest.mark.parametrize("kwargs", [{"bandwidth_gbps": 0.0}, {"latency_s": -1.0}, {"efficiency": 0.0}, {"efficiency": 1.5}])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkModel(**kwargs)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().allreduce_time(100, 0)


class TestPresets:
    def test_lookup_by_alias_and_name(self):
        assert get_network("10g") is CLUSTER_ETHERNET_10G
        assert get_network("infiniband-100g") is NODE_INFINIBAND_100G

    @pytest.mark.parametrize("full_name", ["ethernet-10g", "ethernet-25g", "infiniband-100g"])
    def test_every_preset_resolvable_by_full_name(self, full_name):
        model = get_network(full_name)
        assert model.name == full_name
        assert model is get_network(full_name.upper())  # lookup is case-insensitive

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_network("56g")

    def test_unknown_error_lists_short_keys_and_full_names(self):
        # Full names are accepted, so the error must advertise them alongside
        # the short keys.
        with pytest.raises(ValueError) as excinfo:
            get_network("56g")
        message = str(excinfo.value)
        for key in ("10g", "25g", "100g"):
            assert key in message
        for full_name in ("ethernet-10g", "ethernet-25g", "infiniband-100g"):
            assert full_name in message

    def test_infiniband_faster_than_ethernet(self):
        assert NODE_INFINIBAND_100G.allreduce_time(1e9, 8) < CLUSTER_ETHERNET_10G.allreduce_time(1e9, 8)
