"""Hypothesis property suite for the collective-algorithm layer.

Invariants pinned here:

* every algorithm's per-phase costs sum to its total (phases are serial),
* totals are monotone in the payload size and in the participant count
  (adding a node or a device never makes a collective cheaper),
* a single worker collapses every collective to zero cost,
* the degenerate single-level model equals the ``NetworkModel`` closed forms
  bit-for-bit for random links, worker counts and payloads,
* hierarchical all-gather beats flat all-gather whenever the intra-node link
  clears the derived crossover factor.  Note the honest precondition: merely
  matching the inter-node bandwidth is *not* sufficient, because the
  hierarchical schedule must move the full gathered aggregate over the
  intra-node link as well (see :func:`hierarchical_crossover_factor`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    COLLECTIVE_ALGORITHMS,
    DEDUP_ASSUMPTIONS,
    ClusterTopology,
    CollectiveModel,
    LinkLevel,
    NetworkModel,
    SparseAggregateModel,
    get_topology,
)

ALGORITHM_OPS = [
    (name, op)
    for name, algo in sorted(COLLECTIVE_ALGORITHMS.items())
    for op in algo.supported_ops
]


@st.composite
def networks(draw, *, name: str = "link"):
    return NetworkModel(
        bandwidth_gbps=draw(st.floats(min_value=0.1, max_value=400.0)),
        latency_s=draw(st.floats(min_value=0.0, max_value=1e-3)),
        efficiency=draw(st.floats(min_value=0.05, max_value=1.0)),
        name=name,
    )


@st.composite
def topologies(draw, *, min_nodes: int = 1, min_devices: int = 1):
    return ClusterTopology(
        num_nodes=draw(st.integers(min_value=min_nodes, max_value=6)),
        devices_per_node=draw(st.integers(min_value=min_devices, max_value=6)),
        inter_node=draw(networks(name="inter")),
        intra_node=draw(networks(name="intra")),
    )


payloads = st.floats(min_value=0.0, max_value=1e9)


class TestAlgorithmInvariants:
    @settings(max_examples=150, deadline=None)
    @given(topology=topologies(), num_bytes=payloads, algorithm_op=st.sampled_from(ALGORITHM_OPS))
    def test_phase_costs_sum_to_total(self, topology, num_bytes, algorithm_op):
        name, op = algorithm_op
        cost = COLLECTIVE_ALGORITHMS[name].cost(topology, op, num_bytes)
        assert cost.total == pytest.approx(sum(p.seconds for p in cost.phases), abs=1e-15)
        assert all(p.seconds >= 0.0 for p in cost.phases)
        assert all(p.volume_bytes >= 0.0 for p in cost.phases)

    @settings(max_examples=150, deadline=None)
    @given(
        topology=topologies(),
        num_bytes=payloads,
        scale=st.floats(min_value=1.0, max_value=100.0),
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_monotone_in_payload_bytes(self, topology, num_bytes, scale, algorithm_op):
        name, op = algorithm_op
        algo = COLLECTIVE_ALGORITHMS[name]
        smaller = algo.cost(topology, op, num_bytes).total
        larger = algo.cost(topology, op, num_bytes * scale).total
        assert larger >= smaller - 1e-12

    @settings(max_examples=150, deadline=None)
    @given(
        grown=st.booleans().flatmap(
            lambda grow_nodes: st.tuples(
                st.just(grow_nodes),
                # Growing 1 -> 2 nodes switches the flat collectives' bottleneck
                # from the intra- to the inter-node link, which may be faster —
                # monotonicity only holds within one link regime, so node
                # growth starts from multi-node topologies.
                topologies(min_nodes=2 if grow_nodes else 1),
            )
        ),
        num_bytes=payloads,
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_monotone_in_worker_count(self, grown, num_bytes, algorithm_op):
        grow_nodes, topology = grown
        name, op = algorithm_op
        algo = COLLECTIVE_ALGORITHMS[name]
        bigger = ClusterTopology(
            num_nodes=topology.num_nodes + (1 if grow_nodes else 0),
            devices_per_node=topology.devices_per_node + (0 if grow_nodes else 1),
            inter_node=topology.inter_node,
            intra_node=topology.intra_node,
        )
        before = algo.cost(topology, op, num_bytes).total
        after = algo.cost(bigger, op, num_bytes).total
        assert after >= before - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        inter=networks(), intra=networks(), num_bytes=payloads,
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_single_worker_is_free(self, inter, intra, num_bytes, algorithm_op):
        name, op = algorithm_op
        topology = ClusterTopology(1, 1, inter_node=inter, intra_node=intra)
        cost = COLLECTIVE_ALGORITHMS[name].cost(topology, op, num_bytes)
        assert cost.total == 0.0
        assert cost.phases == ()


class TestDegenerateFlatModel:
    @settings(max_examples=150, deadline=None)
    @given(
        network=networks(),
        num_workers=st.integers(min_value=1, max_value=64),
        num_bytes=payloads,
    )
    def test_reproduces_network_closed_forms_exactly(self, network, num_workers, num_bytes):
        model = CollectiveModel.flat(network, num_workers)
        assert model.allreduce_time(num_bytes) == network.allreduce_time(num_bytes, num_workers)
        assert model.allgather_time(num_bytes) == network.allgather_time(num_bytes, num_workers)


@st.composite
def crossover_cleared_topologies(draw):
    """Two-level topologies whose intra link clears the hierarchical crossover.

    The sufficient condition derived in :func:`hierarchical_crossover_factor`:
    intra latency no higher than inter latency and intra *effective* bandwidth
    at least ``(N+D-2)/(D-1)`` times the inter effective bandwidth.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=6))
    devices = draw(st.integers(min_value=2, max_value=8))
    inter = draw(networks(name="inter"))
    factor = (num_nodes * devices + devices - 2) / (devices - 1)
    margin = draw(st.floats(min_value=1.0, max_value=8.0))
    intra = NetworkModel(
        bandwidth_gbps=inter.bandwidth_gbps * inter.efficiency * factor * margin,
        latency_s=inter.latency_s * draw(st.floats(min_value=0.0, max_value=1.0)),
        efficiency=1.0,
        name="intra",
    )
    return ClusterTopology(num_nodes, devices, inter_node=inter, intra_node=intra)


class TestHierarchicalVsFlat:
    @settings(max_examples=200, deadline=None)
    @given(topology=crossover_cleared_topologies(), num_bytes=payloads)
    def test_hierarchical_never_slower_above_crossover(self, topology, num_bytes):
        hier = COLLECTIVE_ALGORITHMS["hierarchical"].cost(topology, "allgather", num_bytes)
        flat = COLLECTIVE_ALGORITHMS["flat-allgather"].cost(topology, "allgather", num_bytes)
        assert hier.total <= flat.total * (1.0 + 1e-12) + 1e-15

    @settings(max_examples=100, deadline=None)
    @given(topology=topologies(min_nodes=2, min_devices=2), num_bytes=payloads)
    def test_hierarchical_saves_inter_node_volume(self, topology, num_bytes):
        # Whatever the link speeds, the hierarchical all-gather always moves
        # less (or equal) volume over the inter-node fabric than the flat ring.
        hier = COLLECTIVE_ALGORITHMS["hierarchical"].cost(topology, "allgather", num_bytes)
        flat = COLLECTIVE_ALGORITHMS["flat-allgather"].cost(topology, "allgather", num_bytes)
        hier_inter = sum(p.volume_bytes for p in hier.phases if p.link == "inter")
        assert hier_inter <= sum(p.volume_bytes for p in flat.phases) + 1e-9


densities = st.floats(min_value=1e-6, max_value=1.0)
chunk_counts = st.integers(min_value=2, max_value=16)
dedup_models = st.sampled_from([None, *(SparseAggregateModel(a) for a in DEDUP_ASSUMPTIONS)])


class TestDedupInvariants:
    @settings(max_examples=200, deadline=None)
    @given(
        assumption=st.sampled_from(DEDUP_ASSUMPTIONS),
        density=densities,
        participants=st.integers(min_value=1, max_value=64),
        payload=st.floats(min_value=0.0, max_value=1e9),
    )
    def test_union_payload_bounded_by_max_and_sum(self, assumption, density, participants, payload):
        model = SparseAggregateModel(assumption)
        union = model.union_payload_bytes(payload, density, participants)
        # Never smaller than the largest contribution, never larger than the
        # concatenation of all of them (nor the dense bucket itself).
        assert payload - 1e-12 <= union <= participants * payload + 1e-9
        assert union <= (payload / density) * (1.0 + 1e-9) + 1e-9
        assert model.dedup_ratio(density, participants) >= 1.0 - 1e-12

    @settings(max_examples=200, deadline=None)
    @given(
        assumption=st.sampled_from(DEDUP_ASSUMPTIONS),
        density=densities,
        scale=st.floats(min_value=1.0, max_value=1e4),
        participants=st.integers(min_value=1, max_value=64),
    )
    def test_union_factor_monotone_in_density(self, assumption, density, scale, participants):
        # Denser selections overlap more, so the union factor (and with it the
        # deduplicated payload per contributed byte) only shrinks as density
        # grows.
        model = SparseAggregateModel(assumption)
        sparser = model.union_factor(min(density, 1.0), participants)
        denser = model.union_factor(min(density * scale, 1.0), participants)
        assert denser <= sparser + 1e-12

    @settings(max_examples=200, deadline=None)
    @given(density=densities, participants=st.integers(min_value=1, max_value=64))
    def test_assumption_ordering(self, density, participants):
        identical = SparseAggregateModel("identical").union_factor(density, participants)
        uniform = SparseAggregateModel("uniform").union_factor(density, participants)
        disjoint = SparseAggregateModel("disjoint").union_factor(density, participants)
        assert identical - 1e-12 <= uniform <= disjoint + 1e-12

    @settings(max_examples=150, deadline=None)
    @given(
        topology=topologies(min_nodes=2, min_devices=2),
        num_bytes=payloads,
        density=densities,
        dedup=dedup_models,
    )
    def test_dedup_never_costs_more_than_raw_concatenation(
        self, topology, num_bytes, density, dedup
    ):
        algo = COLLECTIVE_ALGORITHMS["hierarchical"]
        plain = algo.cost(topology, "allgather", num_bytes)
        deduped = algo.cost(topology, "allgather", num_bytes, density=density, dedup=dedup)
        assert deduped.total <= plain.total * (1.0 + 1e-12) + 1e-15
        assert deduped.dedup_ratio >= 1.0 - 1e-12


class TestPipeliningInvariants:
    @settings(max_examples=200, deadline=None)
    @given(
        topology=topologies(),
        num_bytes=payloads,
        chunks=chunk_counts,
        op=st.sampled_from(["allgather", "allreduce"]),
    )
    def test_pipelined_total_bounded_by_serial_and_max_phase(
        self, topology, num_bytes, chunks, op
    ):
        algo = COLLECTIVE_ALGORITHMS["hierarchical"]
        serial = algo.cost(topology, op, num_bytes)
        piped = algo.cost(topology, op, num_bytes, pipeline_chunks=chunks)
        # Never slower than the serial phases, never faster than the busiest
        # single phase (each link still moves all of its bytes).
        assert piped.total <= serial.total * (1.0 + 1e-12) + 1e-15
        max_phase = max((p.seconds for p in serial.phases), default=0.0)
        assert piped.total >= max_phase * (1.0 - 1e-12) - 1e-15

    @settings(max_examples=200, deadline=None)
    @given(
        topology=topologies(min_nodes=2, min_devices=2),
        num_bytes=payloads,
        chunks=chunk_counts,
        density=densities,
        dedup=dedup_models,
    )
    def test_chunk_phase_sums_equal_and_lanes_exclusive(
        self, topology, num_bytes, chunks, density, dedup
    ):
        piped = COLLECTIVE_ALGORITHMS["hierarchical"].cost(
            topology, "allgather", num_bytes,
            pipeline_chunks=chunks, density=density, dedup=dedup,
        )
        if not piped.is_pipelined:
            return  # chunking lost to the extra latencies: serial fallback
        # Per-chunk phase-sum invariant: every chunk traverses the same
        # serial stage times.
        by_chunk: dict[int, float] = {}
        by_link: dict[str, list[tuple[float, float]]] = {}
        for phase in piped.phases:
            assert phase.start is not None and phase.start >= 0.0
            by_chunk[phase.chunk] = by_chunk.get(phase.chunk, 0.0) + phase.seconds
        for phase in piped.phases:
            by_link.setdefault(phase.link, []).append(
                (phase.start, phase.start + phase.seconds)
            )
        sums = list(by_chunk.values())
        assert set(by_chunk) == set(range(chunks))
        assert all(s == pytest.approx(sums[0], rel=1e-9, abs=1e-15) for s in sums)
        # One link never carries two chunks' phases at once.
        for spans in by_link.values():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9 * max(1.0, a_end)

    @settings(max_examples=150, deadline=None)
    @given(topology=topologies(), num_bytes=payloads, chunks=chunk_counts, density=densities)
    def test_volume_preserved_by_chunking(self, topology, num_bytes, chunks, density):
        algo = COLLECTIVE_ALGORITHMS["hierarchical"]
        serial = algo.cost(topology, "allgather", num_bytes)
        piped = algo.cost(topology, "allgather", num_bytes, pipeline_chunks=chunks)
        assert piped.volume_bytes == pytest.approx(serial.volume_bytes, rel=1e-9, abs=1e-9)

    @settings(max_examples=150, deadline=None)
    @given(
        network=networks(),
        num_workers=st.integers(min_value=1, max_value=64),
        num_bytes=payloads,
        chunks=chunk_counts,
    )
    def test_single_link_algorithms_unaffected_by_knobs(
        self, network, num_workers, num_bytes, chunks
    ):
        # Flat/ring collectives have nothing to overlap or deduplicate; the
        # knobs must leave the closed forms bit-for-bit alone.
        flat = CollectiveModel.flat(network, num_workers)
        knobs = CollectiveModel.flat(
            network,
            num_workers,
            pipeline_chunks=chunks,
            allgather_dedup=SparseAggregateModel("uniform"),
        )
        assert knobs.allgather_cost(num_bytes, density=0.05).total == flat.allgather_time(num_bytes)
        assert knobs.allreduce_cost(num_bytes).total == flat.allreduce_time(num_bytes)


MULTI_LEVEL_PRESETS = ["fat-tree-128", "dragonfly-64"]


@st.composite
def level_stacks(draw, *, oversubscribed: bool = False):
    """Random 1-4 deep ``LinkLevel`` stacks, optionally with oversubscription."""
    count = draw(st.integers(min_value=1, max_value=4))
    return tuple(
        LinkLevel(
            fanout=draw(st.integers(min_value=1, max_value=4)),
            link=draw(networks(name=f"l{i}")),
            oversubscription=(
                draw(st.floats(min_value=1.0, max_value=16.0)) if oversubscribed else 1.0
            ),
            name=f"level{i}",
        )
        for i in range(count)
    )


@st.composite
def multi_level_topologies(draw):
    return ClusterTopology.from_levels(draw(level_stacks(oversubscribed=True)), name="hypo-multi")


class TestMultiLevelInvariants:
    """The two-level invariants survive arbitrary-depth fabrics."""

    @settings(max_examples=150, deadline=None)
    @given(
        topology=multi_level_topologies(),
        num_bytes=payloads,
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_phase_costs_sum_to_total(self, topology, num_bytes, algorithm_op):
        name, op = algorithm_op
        cost = COLLECTIVE_ALGORITHMS[name].cost(topology, op, num_bytes)
        assert cost.total == pytest.approx(sum(p.seconds for p in cost.phases), abs=1e-15)
        assert all(p.seconds >= 0.0 for p in cost.phases)
        assert all(p.volume_bytes >= 0.0 for p in cost.phases)

    @settings(max_examples=150, deadline=None)
    @given(
        topology=multi_level_topologies(),
        num_bytes=payloads,
        scale=st.floats(min_value=1.0, max_value=100.0),
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_monotone_in_payload_bytes(self, topology, num_bytes, scale, algorithm_op):
        name, op = algorithm_op
        algo = COLLECTIVE_ALGORITHMS[name]
        smaller = algo.cost(topology, op, num_bytes).total
        larger = algo.cost(topology, op, num_bytes * scale).total
        assert larger >= smaller - 1e-12 * max(1.0, smaller)

    @settings(max_examples=150, deadline=None)
    @given(
        stack=level_stacks(),
        factors=st.lists(
            st.floats(min_value=1.0, max_value=16.0), min_size=4, max_size=4
        ),
        num_bytes=payloads,
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_oversubscription_never_speeds_a_level_up(
        self, stack, factors, num_bytes, algorithm_op
    ):
        # Derating any subset of levels by an oversubscription factor >= 1
        # only shrinks effective bandwidth, so no collective ever gets faster.
        name, op = algorithm_op
        derated_levels = tuple(
            LinkLevel(
                fanout=level.fanout,
                link=level.link,
                oversubscription=factor,
                name=level.name,
            )
            for level, factor in zip(stack, factors)
        )
        clean = ClusterTopology.from_levels(stack, name="clean")
        derated = ClusterTopology.from_levels(derated_levels, name="derated")
        algo = COLLECTIVE_ALGORITHMS[name]
        before = algo.cost(clean, op, num_bytes).total
        after = algo.cost(derated, op, num_bytes).total
        assert after >= before - 1e-12 * max(1.0, before)


class TestMultiLevelPresets:
    """The invariants hold on the shipped fat-tree / dragonfly presets."""

    @settings(max_examples=100, deadline=None)
    @given(
        preset=st.sampled_from(MULTI_LEVEL_PRESETS),
        num_bytes=payloads,
        scale=st.floats(min_value=1.0, max_value=100.0),
        algorithm_op=st.sampled_from(ALGORITHM_OPS),
    )
    def test_phase_sum_and_payload_monotonicity(self, preset, num_bytes, scale, algorithm_op):
        name, op = algorithm_op
        algo = COLLECTIVE_ALGORITHMS[name]
        topology = get_topology(preset)
        cost = algo.cost(topology, op, num_bytes)
        assert cost.total == pytest.approx(sum(p.seconds for p in cost.phases), abs=1e-15)
        assert all(p.seconds >= 0.0 for p in cost.phases)
        larger = algo.cost(topology, op, num_bytes * scale).total
        assert larger >= cost.total - 1e-12 * max(1.0, cost.total)

    @settings(max_examples=75, deadline=None)
    @given(
        preset=st.sampled_from(MULTI_LEVEL_PRESETS),
        payload_list=st.lists(payloads, min_size=1, max_size=6),
        density=st.one_of(st.none(), densities),
        dedup=dedup_models,
    )
    def test_batched_table_rows_match_scalar_pricing(self, preset, payload_list, density, dedup):
        # The tentpole's vectorized scheduler leans on this: batching must be
        # a pure reshape of the scalar pricing, bit-for-bit, on deep fabrics.
        model = CollectiveModel(
            topology=get_topology(preset),
            allgather_algorithm="hierarchical",
            allgather_dedup=dedup,
        )
        table = model.allgather_phase_table(
            np.asarray(payload_list, dtype=float), [density] * len(payload_list)
        )
        assert table is not None
        assert table.num_buckets == len(payload_list)
        totals = table.totals.tolist()
        seconds = table.seconds.tolist()
        for b, payload in enumerate(payload_list):
            cost = model.allgather_cost(payload, density=density)
            assert totals[b] == cost.total
            assert seconds[b] == [p.seconds for p in cost.phases]
            assert table.names == tuple(p.name for p in cost.phases)
