"""Tests for training metrics."""

import dataclasses

import numpy as np
import pytest

from repro.distributed import IterationRecord, TrainingMetrics


def _record(i, loss=1.0, ratio=0.01, target=0.01, it_time=0.1, wall=None, samples=32):
    return IterationRecord(
        iteration=i,
        loss=loss,
        achieved_ratio=ratio,
        target_ratio=target,
        threshold=0.5,
        compute_time=0.04,
        compression_time=0.01,
        communication_time=0.05,
        iteration_time=it_time,
        wall_time=wall if wall is not None else (i + 1) * it_time,
        samples=samples,
        learning_rate=0.1,
    )


def _metrics(n=20, **kwargs):
    metrics = TrainingMetrics()
    for i in range(n):
        metrics.append(_record(i, **kwargs))
    return metrics


class TestSeries:
    def test_loss_curve_and_walltime(self):
        metrics = _metrics(5)
        iterations, losses = metrics.loss_curve()
        assert len(iterations) == 5
        times, losses_t = metrics.loss_vs_walltime()
        assert times[-1] == pytest.approx(0.5)
        assert np.array_equal(losses, losses_t)

    def test_running_average_ratio(self):
        metrics = TrainingMetrics()
        for i in range(10):
            metrics.append(_record(i, ratio=0.01 if i < 5 else 0.03))
        smoothed = metrics.running_average_ratio(window=5)
        assert smoothed[0] == pytest.approx(0.01)
        assert smoothed[-1] == pytest.approx(0.03)

    def test_running_average_invalid_window(self):
        with pytest.raises(ValueError):
            _metrics(5).running_average_ratio(0)

    def test_empty_metrics_safe(self):
        metrics = TrainingMetrics()
        assert len(metrics) == 0
        assert metrics.total_time == 0.0
        assert metrics.average_throughput() == 0.0
        assert metrics.time_to_loss(1.0) is None
        with pytest.raises(ValueError):
            _ = metrics.final_loss


class TestScalars:
    def test_throughput(self):
        metrics = _metrics(10, it_time=0.5, samples=64)
        assert metrics.average_throughput() == pytest.approx(64 / 0.5)

    def test_final_loss_uses_tail_average(self):
        metrics = TrainingMetrics()
        for i in range(20):
            metrics.append(_record(i, loss=10.0 - 0.5 * i))
        assert metrics.final_loss < 2.0

    def test_time_to_loss_found(self):
        metrics = TrainingMetrics()
        for i in range(20):
            metrics.append(_record(i, loss=10.0 - 0.5 * i))
        t = metrics.time_to_loss(5.0)
        assert t is not None
        assert 0.0 < t < metrics.total_time

    def test_time_to_loss_not_reached(self):
        metrics = _metrics(10, loss=5.0)
        assert metrics.time_to_loss(0.1) is None

    def test_estimation_quality_mean_and_ci(self):
        metrics = TrainingMetrics()
        for i in range(50):
            metrics.append(_record(i, ratio=0.011 if i % 2 else 0.009, target=0.01))
        mean, (low, high) = metrics.estimation_quality()
        assert mean == pytest.approx(1.0, abs=0.01)
        assert low <= mean <= high

    def test_component_breakdown(self):
        metrics = _metrics(10)
        breakdown = metrics.component_breakdown()
        assert breakdown["compute"] == pytest.approx(0.4)
        assert breakdown["communication"] == pytest.approx(0.5)


class TestOverlapSummary:
    def test_serialized_defaults_to_iteration_time(self):
        # Records without an explicit serialized_time (overlap="none" runs)
        # count their iteration time as the serialised time.
        metrics = _metrics(10, it_time=0.1)
        assert metrics.serialized_total_time == pytest.approx(metrics.total_time)
        summary = metrics.overlap_summary()
        assert summary["overlap_saving"] == pytest.approx(0.0)

    def test_overlap_saving_from_serialized_times(self):
        metrics = TrainingMetrics()
        for i in range(10):
            record = _record(i, it_time=0.08)
            metrics.append(
                IterationRecord(**{**record.__dict__, "serialized_time": 0.1})
            )
        summary = metrics.overlap_summary()
        assert summary["overlapped_seconds"] == pytest.approx(0.8)
        assert summary["serialized_seconds"] == pytest.approx(1.0)
        assert summary["overlap_saving"] == pytest.approx(0.2)

    def test_empty_metrics_safe_overlap(self):
        summary = TrainingMetrics().overlap_summary()
        assert summary == {
            "overlapped_seconds": 0.0,
            "serialized_seconds": 0.0,
            "overlap_saving": 0.0,
        }


class TestMeanDedupRatio:
    def test_averages_compressed_iterations_only(self):
        metrics = TrainingMetrics()
        for i, dedup in enumerate((1.5, 2.5)):
            metrics.append(dataclasses.replace(_record(i), dedup_ratio=dedup))
        metrics.append(_record(2, ratio=1.0, target=1.0))  # dense baseline iteration
        assert metrics.mean_dedup_ratio() == pytest.approx(2.0)

    def test_every_record_uncompressed_pins_one(self):
        # Regression: filtering to target_ratio < 1.0 can leave nothing to
        # average (a baseline/warm-up-only run).  The contract is a clean,
        # finite 1.0 — never a crash or NaN from an empty mean.
        metrics = _metrics(n=5, ratio=1.0, target=1.0)
        assert metrics.mean_dedup_ratio() == 1.0
        assert np.isfinite(metrics.mean_dedup_ratio())

    def test_empty_run_pins_one(self):
        assert TrainingMetrics().mean_dedup_ratio() == 1.0
