"""Golden regression pins for the flat network closed forms.

The topology-aware collective layer refactored ``NetworkModel.allreduce_time``
and ``allgather_time`` into the degenerate single-level case of
:mod:`repro.distributed.topology`.  These tests pin the closed forms at
hard-coded values (10g/25g/100g presets, several payload sizes and worker
counts) *and* assert bit-exact equality with the collective layer's flat
model, so the refactor provably reproduces the pre-topology behaviour.
"""

import pytest

from repro.distributed import CollectiveModel, get_network

#: (network, num_workers, num_bytes, allreduce_seconds, allgather_seconds)
#: computed from the seed closed forms; any drift here is a behaviour change.
GOLDEN_TIMES = [
    ("10g", 2, 4096.0, 0.00010936228571428571, 5.936228571428572e-05),
    ("10g", 2, 4000000.0, 0.009242857142857143, 0.009192857142857143),
    ("10g", 2, 100000000.0, 0.22867142857142855, 0.22862142857142856),
    ("10g", 4, 4096.0, 0.0003140434285714286, 0.00017808685714285717),
    ("10g", 4, 4000000.0, 0.014014285714285715, 0.02757857142857143),
    ("10g", 4, 100000000.0, 0.3431571428571428, 0.6858642857142857),
    ("10g", 8, 4096.0, 0.000716384, 0.00041553600000000004),
    ("10g", 8, 4000000.0, 0.0167, 0.06435),
    ("10g", 8, 100000000.0, 0.4007, 1.60035),
    ("10g", 16, 4096.0, 0.0015175542857142857, 0.0008904342857142857),
    ("10g", 16, 4000000.0, 0.018642857142857145, 0.13789285714285715),
    ("10g", 16, 100000000.0, 0.43007142857142855, 3.4293214285714284),
    ("25g", 2, 4096.0, 6.374491428571428e-05, 3.3744914285714284e-05),
    ("25g", 2, 4000000.0, 0.0037171428571428572, 0.003687142857142857),
    ("25g", 2, 100000000.0, 0.09148857142857143, 0.09145857142857143),
    ("25g", 4, 4096.0, 0.00018561737142857145, 0.00010123474285714285),
    ("25g", 4, 4000000.0, 0.005665714285714285, 0.011061428571428571),
    ("25g", 4, 100000000.0, 0.13732285714285714, 0.2743757142857143),
    ("25g", 8, 4096.0, 0.00042655359999999997, 0.00023621439999999997),
    ("25g", 8, 4000000.0, 0.0068200000000000005, 0.02581),
    ("25g", 8, 100000000.0, 0.16042, 0.6402100000000001),
    ("25g", 16, 4096.0, 0.0009070217142857143, 0.0005061737142857143),
    ("25g", 16, 4000000.0, 0.007757142857142857, 0.05530714285714286),
    ("25g", 16, 100000000.0, 0.17232857142857141, 1.3718785714285715),
    ("100g", 2, 4096.0, 1.0546133333333334e-05, 5.5461333333333336e-06),
    ("100g", 2, 4000000.0, 0.0005433333333333334, 0.0005383333333333334),
    ("100g", 2, 100000000.0, 0.013343333333333334, 0.013338333333333334),
    ("100g", 4, 4096.0, 3.0819200000000005e-05, 1.66384e-05),
    ("100g", 4, 4000000.0, 0.0008300000000000001, 0.0016150000000000001),
    ("100g", 4, 100000000.0, 0.02003, 0.040015),
    ("100g", 8, 4096.0, 7.095573333333334e-05, 3.882293333333334e-05),
    ("100g", 8, 4000000.0, 0.0010033333333333333, 0.0037683333333333336),
    ("100g", 8, 100000000.0, 0.023403333333333335, 0.09336833333333333),
    ("100g", 16, 4096.0, 0.000151024, 8.3192e-05),
    ("100g", 16, 4000000.0, 0.00115, 0.008075),
    ("100g", 16, 100000000.0, 0.025150000000000002, 0.200075),
]


@pytest.mark.parametrize(
    "network,num_workers,num_bytes,allreduce_s,allgather_s",
    GOLDEN_TIMES,
    ids=[f"{n}-w{w}-{int(b)}B" for n, w, b, _, _ in GOLDEN_TIMES],
)
class TestGoldenClosedForms:
    def test_allreduce_pinned(self, network, num_workers, num_bytes, allreduce_s, allgather_s):
        assert get_network(network).allreduce_time(num_bytes, num_workers) == allreduce_s

    def test_allgather_pinned(self, network, num_workers, num_bytes, allreduce_s, allgather_s):
        assert get_network(network).allgather_time(num_bytes, num_workers) == allgather_s

    def test_flat_collective_is_the_degenerate_case(
        self, network, num_workers, num_bytes, allreduce_s, allgather_s
    ):
        # Bit-exact, not approx: the single-level collective model must be a
        # drop-in replacement for the old closed forms.
        model = CollectiveModel.flat(get_network(network), num_workers)
        assert model.allreduce_time(num_bytes) == allreduce_s
        assert model.allgather_time(num_bytes) == allgather_s


@pytest.mark.parametrize("network", ["10g", "25g", "100g"])
def test_single_worker_collectives_are_free(network):
    net = get_network(network)
    assert net.allreduce_time(1e9, 1) == 0.0
    assert net.allgather_time(1e9, 1) == 0.0
    model = CollectiveModel.flat(net, 1)
    assert model.allreduce_time(1e9) == 0.0
    assert model.allgather_time(1e9) == 0.0
    assert model.allreduce_cost(1e9).phases == ()
