"""Golden regression pins for the flat network closed forms.

The topology-aware collective layer refactored ``NetworkModel.allreduce_time``
and ``allgather_time`` into the degenerate single-level case of
:mod:`repro.distributed.topology`.  These tests pin the closed forms at
hard-coded values (10g/25g/100g presets, several payload sizes and worker
counts) *and* assert bit-exact equality with the collective layer's flat
model, so the refactor provably reproduces the pre-topology behaviour.

The dedup/pipelining layer added on top must be inert at its defaults:
``pipeline_chunks=1`` with no dedup model reproduces every PR-3
``CollectiveCost`` — phase names, per-phase seconds, volumes and totals —
bit-for-bit.  The hierarchical table below was captured from the PR-3 code
before the knobs existed; any drift is a behaviour change.
"""

import pytest

from repro.distributed import CollectiveModel, get_network, get_topology

#: (network, num_workers, num_bytes, allreduce_seconds, allgather_seconds)
#: computed from the seed closed forms; any drift here is a behaviour change.
GOLDEN_TIMES = [
    ("10g", 2, 4096.0, 0.00010936228571428571, 5.936228571428572e-05),
    ("10g", 2, 4000000.0, 0.009242857142857143, 0.009192857142857143),
    ("10g", 2, 100000000.0, 0.22867142857142855, 0.22862142857142856),
    ("10g", 4, 4096.0, 0.0003140434285714286, 0.00017808685714285717),
    ("10g", 4, 4000000.0, 0.014014285714285715, 0.02757857142857143),
    ("10g", 4, 100000000.0, 0.3431571428571428, 0.6858642857142857),
    ("10g", 8, 4096.0, 0.000716384, 0.00041553600000000004),
    ("10g", 8, 4000000.0, 0.0167, 0.06435),
    ("10g", 8, 100000000.0, 0.4007, 1.60035),
    ("10g", 16, 4096.0, 0.0015175542857142857, 0.0008904342857142857),
    ("10g", 16, 4000000.0, 0.018642857142857145, 0.13789285714285715),
    ("10g", 16, 100000000.0, 0.43007142857142855, 3.4293214285714284),
    ("25g", 2, 4096.0, 6.374491428571428e-05, 3.3744914285714284e-05),
    ("25g", 2, 4000000.0, 0.0037171428571428572, 0.003687142857142857),
    ("25g", 2, 100000000.0, 0.09148857142857143, 0.09145857142857143),
    ("25g", 4, 4096.0, 0.00018561737142857145, 0.00010123474285714285),
    ("25g", 4, 4000000.0, 0.005665714285714285, 0.011061428571428571),
    ("25g", 4, 100000000.0, 0.13732285714285714, 0.2743757142857143),
    ("25g", 8, 4096.0, 0.00042655359999999997, 0.00023621439999999997),
    ("25g", 8, 4000000.0, 0.0068200000000000005, 0.02581),
    ("25g", 8, 100000000.0, 0.16042, 0.6402100000000001),
    ("25g", 16, 4096.0, 0.0009070217142857143, 0.0005061737142857143),
    ("25g", 16, 4000000.0, 0.007757142857142857, 0.05530714285714286),
    ("25g", 16, 100000000.0, 0.17232857142857141, 1.3718785714285715),
    ("100g", 2, 4096.0, 1.0546133333333334e-05, 5.5461333333333336e-06),
    ("100g", 2, 4000000.0, 0.0005433333333333334, 0.0005383333333333334),
    ("100g", 2, 100000000.0, 0.013343333333333334, 0.013338333333333334),
    ("100g", 4, 4096.0, 3.0819200000000005e-05, 1.66384e-05),
    ("100g", 4, 4000000.0, 0.0008300000000000001, 0.0016150000000000001),
    ("100g", 4, 100000000.0, 0.02003, 0.040015),
    ("100g", 8, 4096.0, 7.095573333333334e-05, 3.882293333333334e-05),
    ("100g", 8, 4000000.0, 0.0010033333333333333, 0.0037683333333333336),
    ("100g", 8, 100000000.0, 0.023403333333333335, 0.09336833333333333),
    ("100g", 16, 4096.0, 0.000151024, 8.3192e-05),
    ("100g", 16, 4000000.0, 0.00115, 0.008075),
    ("100g", 16, 100000000.0, 0.025150000000000002, 0.200075),
]


@pytest.mark.parametrize(
    "network,num_workers,num_bytes,allreduce_s,allgather_s",
    GOLDEN_TIMES,
    ids=[f"{n}-w{w}-{int(b)}B" for n, w, b, _, _ in GOLDEN_TIMES],
)
class TestGoldenClosedForms:
    def test_allreduce_pinned(self, network, num_workers, num_bytes, allreduce_s, allgather_s):
        assert get_network(network).allreduce_time(num_bytes, num_workers) == allreduce_s

    def test_allgather_pinned(self, network, num_workers, num_bytes, allreduce_s, allgather_s):
        assert get_network(network).allgather_time(num_bytes, num_workers) == allgather_s

    def test_flat_collective_is_the_degenerate_case(
        self, network, num_workers, num_bytes, allreduce_s, allgather_s
    ):
        # Bit-exact, not approx: the single-level collective model must be a
        # drop-in replacement for the old closed forms.
        model = CollectiveModel.flat(get_network(network), num_workers)
        assert model.allreduce_time(num_bytes) == allreduce_s
        assert model.allgather_time(num_bytes) == allgather_s

    def test_explicit_knobs_off_keeps_the_closed_forms(
        self, network, num_workers, num_bytes, allreduce_s, allgather_s
    ):
        # Spelling the default knobs out (serial phases, no dedup model) must
        # not perturb a single bit of the closed forms either.
        model = CollectiveModel.flat(
            get_network(network), num_workers, pipeline_chunks=1, allgather_dedup=None
        )
        assert model.allreduce_time(num_bytes) == allreduce_s
        assert model.allgather_time(num_bytes) == allgather_s


#: (preset, payload_bytes, [(phase, link, seconds, volume_bytes)...],
#:  hierarchical_allgather_total, flat_allgather_total, ring_allreduce_total)
#: captured from the PR-3 code (commit 534f47a) before the dedup/pipelining
#: knobs existed; the knobs-off model must reproduce every float bit-for-bit.
HIERARCHICAL_GOLDEN = [
    ("ethernet-4x8", 4096.0,
     [("intra-gather", "infiniband-100g", 3.882293333333334e-05, 28672.0),
      ("inter-allgather", "ethernet-10g", 0.0003746948571428572, 98304.0),
      ("intra-broadcast", "infiniband-100g", 2.1930133333333332e-05, 126976.0)],
     0.0004354479238095239, 0.0018402308571428573, 0.0031181394285714286),
    ("ethernet-4x8", 200000.0,
     [("intra-gather", "infiniband-100g", 0.00022166666666666667, 1400000.0),
      ("inter-allgather", "ethernet-10g", 0.011121428571428572, 4800000.0),
      ("intra-broadcast", "infiniband-100g", 0.0008316666666666666, 6200000.0)],
     0.012174761904761905, 0.01572142857142857, 0.003985714285714286),
    ("ethernet-4x8", 2000000.0,
     [("intra-gather", "infiniband-100g", 0.001901666666666667, 14000000.0),
      ("inter-allgather", "ethernet-10g", 0.10986428571428572, 48000000.0),
      ("intra-broadcast", "infiniband-100g", 0.008271666666666667, 62000000.0)],
     0.12003761904761905, 0.1432642857142857, 0.011957142857142857),
    ("ethernet-4x8", 20000000.0,
     [("intra-gather", "infiniband-100g", 0.018701666666666665, 140000000.0),
      ("inter-allgather", "ethernet-10g", 1.097292857142857, 480000000.0),
      ("intra-broadcast", "infiniband-100g", 0.08267166666666667, 620000000.0)],
     1.1986661904761904, 1.4186928571428572, 0.09167142857142857),
    ("cluster1", 4096.0,
     [("inter-allgather", "ethernet-10g", 0.00041553600000000004, 28672.0)],
     0.00041553600000000004, 0.00041553600000000004, 0.000716384),
    ("cluster1", 2000000.0,
     [("inter-allgather", "ethernet-10g", 0.032350000000000004, 14000000.0)],
     0.032350000000000004, 0.032350000000000004, 0.008700000000000001),
    ("cluster1", 20000000.0,
     [("inter-allgather", "ethernet-10g", 0.32035, 140000000.0)],
     0.32035, 0.32035, 0.0807),
    ("cluster2", 4096.0,
     [("intra-gather", "infiniband-100g", 3.882293333333334e-05, 28672.0),
      ("intra-broadcast", "infiniband-100g", 8.822933333333333e-06, 28672.0)],
     4.764586666666667e-05, 3.882293333333334e-05, 7.095573333333334e-05),
    ("cluster2", 2000000.0,
     [("intra-gather", "infiniband-100g", 0.001901666666666667, 14000000.0),
      ("intra-broadcast", "infiniband-100g", 0.0018716666666666667, 14000000.0)],
     0.0037733333333333334, 0.001901666666666667, 0.0005366666666666666),
    ("cluster2", 20000000.0,
     [("intra-gather", "infiniband-100g", 0.018701666666666665, 140000000.0),
      ("intra-broadcast", "infiniband-100g", 0.01867166666666667, 140000000.0)],
     0.037373333333333335, 0.018701666666666665, 0.004736666666666667),
]


@pytest.mark.parametrize(
    "preset,num_bytes,phases,hier_total,flat_total,allreduce_total",
    HIERARCHICAL_GOLDEN,
    ids=[f"{p}-{int(b)}B" for p, b, *_ in HIERARCHICAL_GOLDEN],
)
class TestHierarchicalGoldenPins:
    """PR-3 hierarchical CollectiveCost, reproduced bit-for-bit with knobs off."""

    def _model(self, preset, **kwargs):
        return CollectiveModel(
            get_topology(preset),
            allgather_algorithm="hierarchical",
            allreduce_algorithm="ring-allreduce",
            **kwargs,
        )

    def test_default_model_matches_pr3(
        self, preset, num_bytes, phases, hier_total, flat_total, allreduce_total
    ):
        cost = self._model(preset).allgather_cost(num_bytes)
        assert cost.total == hier_total
        assert [
            (p.name, p.link, p.seconds, p.volume_bytes) for p in cost.phases
        ] == phases
        assert all(p.start is None and p.chunk is None for p in cost.phases)
        assert self._model(preset).allreduce_cost(num_bytes).total == allreduce_total

    def test_knobs_off_matches_pr3(
        self, preset, num_bytes, phases, hier_total, flat_total, allreduce_total
    ):
        model = self._model(preset, pipeline_chunks=1, allgather_dedup=None)
        cost = model.allgather_cost(num_bytes)
        assert cost.total == hier_total
        assert [
            (p.name, p.link, p.seconds, p.volume_bytes) for p in cost.phases
        ] == phases
        assert model.allreduce_cost(num_bytes).total == allreduce_total

    def test_flat_allgather_pinned(
        self, preset, num_bytes, phases, hier_total, flat_total, allreduce_total
    ):
        model = CollectiveModel(get_topology(preset), pipeline_chunks=1)
        assert model.allgather_cost(num_bytes).total == flat_total


@pytest.mark.parametrize("network", ["10g", "25g", "100g"])
def test_single_worker_collectives_are_free(network):
    net = get_network(network)
    assert net.allreduce_time(1e9, 1) == 0.0
    assert net.allgather_time(1e9, 1) == 0.0
    model = CollectiveModel.flat(net, 1)
    assert model.allreduce_time(1e9) == 0.0
    assert model.allgather_time(1e9) == 0.0
    assert model.allreduce_cost(1e9).phases == ()
