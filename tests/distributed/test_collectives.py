"""Tests for simulated collectives."""

import numpy as np
import pytest

from repro.distributed import allgather_sparse, allreduce_dense
from repro.tensor import SparseGradient


class TestAllreduceDense:
    def test_averages_gradients(self):
        grads = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        result = allreduce_dense(grads)
        assert np.allclose(result.aggregated, [2.0, 3.0])
        assert result.collective == "allreduce"
        assert result.payload_bytes_per_worker == 2 * 4

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_dense([np.zeros(3), np.zeros(4)])

    def test_dimension_mismatch_raises_the_friendly_message(self):
        # Regression: np.stack used to run before the size check, so mismatched
        # gradients surfaced numpy's generic shape error instead of this one.
        with pytest.raises(ValueError, match="same dimension"):
            allreduce_dense([np.zeros(3), np.zeros(4)])

    def test_multi_dimensional_inputs_are_flattened_before_the_check(self):
        result = allreduce_dense([np.zeros((2, 3)), np.ones(6)])
        assert result.aggregated.shape == (6,)
        with pytest.raises(ValueError, match="same dimension"):
            allreduce_dense([np.zeros((2, 3)), np.ones(7)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            allreduce_dense([])


class TestAllgatherSparse:
    def test_averages_sparse_contributions(self):
        a = SparseGradient(indices=np.array([0]), values=np.array([2.0]), dense_size=3)
        b = SparseGradient(indices=np.array([0, 2]), values=np.array([4.0, 6.0]), dense_size=3)
        result = allgather_sparse([a, b])
        assert np.allclose(result.aggregated, [3.0, 0.0, 3.0])
        assert result.collective == "allgather"

    def test_payload_is_largest_contribution(self):
        a = SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=10)
        b = SparseGradient(indices=np.array([0, 1, 2]), values=np.ones(3), dense_size=10)
        result = allgather_sparse([a, b])
        assert result.payload_bytes_per_worker == b.payload_bytes()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            allgather_sparse([])

    def test_matches_dense_allreduce_when_everything_sent(self, rng):
        dense = [rng.normal(size=20) for _ in range(4)]
        sparse = [SparseGradient(indices=np.arange(20), values=g, dense_size=20) for g in dense]
        assert np.allclose(allgather_sparse(sparse).aggregated, allreduce_dense(dense).aggregated)
