"""Tests for the iteration-time model."""

import numpy as np
import pytest

from repro.compressors import create_compressor
from repro.distributed import NetworkModel, TimelineModel, compute_time_for_overhead
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100


def _timeline(compute=0.01, workers=8, dim=1_000_000, scale=1.0, efficiency=1.0):
    return TimelineModel(
        network=NetworkModel(bandwidth_gbps=10.0, latency_s=1e-5, efficiency=efficiency),
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=workers,
        model_dimension=dim,
        dimension_scale=scale,
    )


class TestBaseline:
    def test_components_positive(self):
        timing = _timeline().baseline_iteration()
        assert timing.compute == pytest.approx(0.01)
        assert timing.compression == 0.0
        assert timing.communication > 0.0
        assert timing.total == pytest.approx(timing.compute + timing.communication)

    def test_communication_overhead_fraction(self):
        timeline = _timeline(compute=0.0)
        assert timeline.communication_overhead_fraction() == pytest.approx(1.0)

    def test_dimension_scale_multiplies_volume(self):
        def comm(scale):
            return TimelineModel(
                network=NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0),
                device=GPU_V100,
                compute_seconds=0.0,
                num_workers=8,
                model_dimension=1_000_000,
                dimension_scale=scale,
            ).baseline_iteration().communication

        assert comm(10.0) == pytest.approx(10 * comm(1.0), rel=0.01)


class TestCompressedIteration:
    def test_compression_and_sparse_comm_accounted(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("topk").compress(gradient, 0.01) for _ in range(2)]
        timing = _timeline(dim=100_000).compressed_iteration(results)
        assert timing.compression > 0.0
        assert timing.communication > 0.0

    def test_compressed_faster_than_baseline_for_large_model(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("sidco-e").compress(gradient, 0.001)]
        timeline = _timeline(compute=0.001, dim=100_000, scale=150.0)
        assert timeline.compressed_iteration(results).total < timeline.baseline_iteration().total

    def test_empty_worker_results_rejected(self):
        with pytest.raises(ValueError):
            _timeline().compressed_iteration([])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=-1.0, num_workers=2, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=0, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=2, model_dimension=10, dimension_scale=0.0)


class TestComputeTimeForOverhead:
    def test_roundtrip_through_timeline(self):
        network = NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0)
        dim = 25_000_000
        compute = compute_time_for_overhead(network, 8, dim, 0.72)
        timeline = TimelineModel(network, GPU_V100, compute, 8, dim)
        assert timeline.communication_overhead_fraction() == pytest.approx(0.72, rel=1e-6)

    def test_higher_overhead_means_less_compute(self):
        network = NetworkModel()
        low = compute_time_for_overhead(network, 8, 10_000_000, 0.5)
        high = compute_time_for_overhead(network, 8, 10_000_000, 0.9)
        assert high < low

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            compute_time_for_overhead(NetworkModel(), 8, 100, 1.0)
