"""Tests for the iteration-time model."""

import numpy as np
import pytest

from repro.compressors import create_compressor
from repro.distributed import NetworkModel, TimelineModel, compute_time_for_overhead
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100


def _timeline(compute=0.01, workers=8, dim=1_000_000, scale=1.0, efficiency=1.0):
    return TimelineModel(
        network=NetworkModel(bandwidth_gbps=10.0, latency_s=1e-5, efficiency=efficiency),
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=workers,
        model_dimension=dim,
        dimension_scale=scale,
    )


class TestBaseline:
    def test_components_positive(self):
        timing = _timeline().baseline_iteration()
        assert timing.compute == pytest.approx(0.01)
        assert timing.compression == 0.0
        assert timing.communication > 0.0
        assert timing.total == pytest.approx(timing.compute + timing.communication)

    def test_communication_overhead_fraction(self):
        timeline = _timeline(compute=0.0)
        assert timeline.communication_overhead_fraction() == pytest.approx(1.0)

    def test_dimension_scale_multiplies_volume(self):
        def comm(scale):
            return TimelineModel(
                network=NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0),
                device=GPU_V100,
                compute_seconds=0.0,
                num_workers=8,
                model_dimension=1_000_000,
                dimension_scale=scale,
            ).baseline_iteration().communication

        assert comm(10.0) == pytest.approx(10 * comm(1.0), rel=0.01)


class TestCompressedIteration:
    def test_compression_and_sparse_comm_accounted(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("topk").compress(gradient, 0.01) for _ in range(2)]
        timing = _timeline(dim=100_000).compressed_iteration(results)
        assert timing.compression > 0.0
        assert timing.communication > 0.0

    def test_compressed_faster_than_baseline_for_large_model(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("sidco-e").compress(gradient, 0.001)]
        timeline = _timeline(compute=0.001, dim=100_000, scale=150.0)
        assert timeline.compressed_iteration(results).total < timeline.baseline_iteration().total

    def test_empty_worker_results_rejected(self):
        with pytest.raises(ValueError):
            _timeline().compressed_iteration([])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=-1.0, num_workers=2, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=0, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=2, model_dimension=10, dimension_scale=0.0)


class TestComputeTimeForOverhead:
    def test_roundtrip_through_timeline(self):
        network = NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0)
        dim = 25_000_000
        compute = compute_time_for_overhead(network, 8, dim, 0.72)
        timeline = TimelineModel(network, GPU_V100, compute, 8, dim)
        assert timeline.communication_overhead_fraction() == pytest.approx(0.72, rel=1e-6)

    def test_higher_overhead_means_less_compute(self):
        network = NetworkModel()
        low = compute_time_for_overhead(network, 8, 10_000_000, 0.5)
        high = compute_time_for_overhead(network, 8, 10_000_000, 0.9)
        assert high < low

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            compute_time_for_overhead(NetworkModel(), 8, 100, 1.0)


class TestBucketedCommunication:
    """Per-bucket communication pricing for pipeline compression results."""

    def _bucketed_results(self, num_workers=2):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        return [pipeline.compress(gradient, 0.05) for _ in range(num_workers)]

    def test_bucket_times_returned_per_bucket(self):
        timeline = _timeline(workers=2)
        results = self._bucketed_results()
        times = timeline.bucket_communication_times(results)
        assert times is not None
        assert len(times) == results[0].metadata["num_buckets"]
        assert all(t > 0.0 for t in times)

    def test_compressed_iteration_sums_bucket_times(self):
        timeline = _timeline(workers=2)
        results = self._bucketed_results()
        timing = timeline.compressed_iteration(results)
        times = timeline.bucket_communication_times(results)
        assert timing.communication == pytest.approx(sum(times))

    def test_unbucketed_results_fall_back_to_single_payload(self):
        timeline = _timeline(workers=2)
        gradient = realistic_gradient(20_000, seed=13)
        results = [create_compressor("topk").compress(gradient, 0.05) for _ in range(2)]
        assert timeline.bucket_communication_times(results) is None
        timing = timeline.compressed_iteration(results)
        payload = max(r.sparse.payload_bytes() for r in results)
        assert timing.communication == pytest.approx(
            timeline.network.allgather_time(payload, 2)
        )

    def test_mixed_results_fall_back(self):
        timeline = _timeline(workers=2)
        bucketed = self._bucketed_results()[0]
        plain = create_compressor("topk").compress(realistic_gradient(20_000, seed=13), 0.05)
        assert timeline.bucket_communication_times([bucketed, plain]) is None

    def test_bucketing_pays_per_message_latency(self):
        # Identical total payload, but each bucket's all-gather pays the
        # per-message latency, so bucketed communication costs at least as
        # much as the fused single-shot transfer (the price of enabling
        # overlap, which the model can discount later).
        timeline = _timeline(workers=4)
        results = self._bucketed_results(num_workers=4)
        bucketed_comm = sum(timeline.bucket_communication_times(results))
        payload = max(r.sparse.payload_bytes() for r in results)
        assert bucketed_comm >= timeline.network.allgather_time(payload, 4)

    def test_bucket_times_scale_with_dimension(self):
        results = self._bucketed_results()
        small = _timeline(workers=2, scale=1.0)
        big = _timeline(workers=2, scale=10.0)
        assert sum(big.bucket_communication_times(results)) > sum(
            small.bucket_communication_times(results)
        )
