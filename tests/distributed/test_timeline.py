"""Tests for the iteration-time model."""

import warnings

import pytest

from repro.compressors import create_compressor
from repro.distributed import (
    ClusterTopology,
    CollectiveModel,
    NetworkModel,
    SparseAggregateModel,
    TimelineModel,
    compute_time_for_overhead,
    reset_bucket_fallback_warnings,
)
from repro.gradients import realistic_gradient
from repro.perfmodel import GPU_V100


def _timeline(compute=0.01, workers=8, dim=1_000_000, scale=1.0, efficiency=1.0):
    return TimelineModel(
        network=NetworkModel(bandwidth_gbps=10.0, latency_s=1e-5, efficiency=efficiency),
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=workers,
        model_dimension=dim,
        dimension_scale=scale,
    )


class TestBaseline:
    def test_components_positive(self):
        timing = _timeline().baseline_iteration()
        assert timing.compute == pytest.approx(0.01)
        assert timing.compression == 0.0
        assert timing.communication > 0.0
        assert timing.total == pytest.approx(timing.compute + timing.communication)

    def test_communication_overhead_fraction(self):
        timeline = _timeline(compute=0.0)
        assert timeline.communication_overhead_fraction() == pytest.approx(1.0)

    def test_dimension_scale_multiplies_volume(self):
        def comm(scale):
            return TimelineModel(
                network=NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0),
                device=GPU_V100,
                compute_seconds=0.0,
                num_workers=8,
                model_dimension=1_000_000,
                dimension_scale=scale,
            ).baseline_iteration().communication

        assert comm(10.0) == pytest.approx(10 * comm(1.0), rel=0.01)


class TestCompressedIteration:
    def test_compression_and_sparse_comm_accounted(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("topk").compress(gradient, 0.01) for _ in range(2)]
        timing = _timeline(dim=100_000).compressed_iteration(results)
        assert timing.compression > 0.0
        assert timing.communication > 0.0

    def test_compressed_faster_than_baseline_for_large_model(self):
        gradient = realistic_gradient(100_000, seed=0)
        results = [create_compressor("sidco-e").compress(gradient, 0.001)]
        timeline = _timeline(compute=0.001, dim=100_000, scale=150.0)
        assert timeline.compressed_iteration(results).total < timeline.baseline_iteration().total

    def test_empty_worker_results_rejected(self):
        with pytest.raises(ValueError):
            _timeline().compressed_iteration([])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=-1.0, num_workers=2, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=0, model_dimension=10)
        with pytest.raises(ValueError):
            TimelineModel(NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=2, model_dimension=10, dimension_scale=0.0)


class TestComputeTimeForOverhead:
    def test_roundtrip_through_timeline(self):
        network = NetworkModel(bandwidth_gbps=10.0, latency_s=0.0, efficiency=1.0)
        dim = 25_000_000
        compute = compute_time_for_overhead(network, 8, dim, 0.72)
        timeline = TimelineModel(network, GPU_V100, compute, 8, dim)
        assert timeline.communication_overhead_fraction() == pytest.approx(0.72, rel=1e-6)

    def test_higher_overhead_means_less_compute(self):
        network = NetworkModel()
        low = compute_time_for_overhead(network, 8, 10_000_000, 0.5)
        high = compute_time_for_overhead(network, 8, 10_000_000, 0.9)
        assert high < low

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            compute_time_for_overhead(NetworkModel(), 8, 100, 1.0)


class TestBucketedCommunication:
    """Per-bucket communication pricing for pipeline compression results."""

    def _bucketed_results(self, num_workers=2):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        return [pipeline.compress(gradient, 0.05) for _ in range(num_workers)]

    def test_bucket_times_returned_per_bucket(self):
        timeline = _timeline(workers=2)
        results = self._bucketed_results()
        times = timeline.bucket_communication_times(results)
        assert times is not None
        assert len(times) == results[0].metadata["num_buckets"]
        assert all(t > 0.0 for t in times)

    def test_compressed_iteration_sums_bucket_times(self):
        timeline = _timeline(workers=2)
        results = self._bucketed_results()
        timing = timeline.compressed_iteration(results)
        times = timeline.bucket_communication_times(results)
        assert timing.communication == pytest.approx(sum(times))

    def test_unbucketed_results_fall_back_to_single_payload(self, recwarn):
        timeline = _timeline(workers=2)
        gradient = realistic_gradient(20_000, seed=13)
        results = [create_compressor("topk").compress(gradient, 0.05) for _ in range(2)]
        assert timeline.bucket_communication_times(results) is None
        timing = timeline.compressed_iteration(results)
        payload = max(r.sparse.payload_bytes() for r in results)
        assert timing.communication == pytest.approx(
            timeline.network.allgather_time(payload, 2)
        )
        # Uniformly unbucketed workers are the normal plain-compressor path,
        # not an inconsistency: no warning.
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_mixed_results_fall_back_with_warning(self):
        # The autouse fixture already cleared the warn-once guard; the
        # explicit reset documents that this test depends on a clean slate.
        reset_bucket_fallback_warnings()
        timeline = _timeline(workers=2)
        bucketed = self._bucketed_results()[0]
        plain = create_compressor("topk").compress(realistic_gradient(20_000, seed=13), 0.05)
        with pytest.warns(RuntimeWarning, match="single-payload"):
            assert timeline.bucket_communication_times([bucketed, plain]) is None
        # The warning fires once per process, not once per iteration.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert timeline.bucket_communication_times([bucketed, plain]) is None

    def test_mismatched_bucket_counts_fall_back_with_warning(self):
        from repro.pipeline import CompressionPipeline

        reset_bucket_fallback_warnings()
        timeline = _timeline(workers=2)
        gradient = realistic_gradient(20_000, seed=13)
        coarse = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        fine = CompressionPipeline(create_compressor("topk"), bucket_bytes=8_000)
        results = [coarse.compress(gradient, 0.05), fine.compress(gradient, 0.05)]
        with pytest.warns(RuntimeWarning, match="disagree"):
            assert timeline.bucket_communication_times(results) is None

    def test_each_fallback_category_warns_independently(self):
        # Warning about one misconfiguration must not suppress the warning for
        # a different one later in the same process.
        from repro.pipeline import CompressionPipeline

        reset_bucket_fallback_warnings()
        timeline = _timeline(workers=2)
        gradient = realistic_gradient(20_000, seed=13)
        bucketed = self._bucketed_results()[0]
        plain = create_compressor("topk").compress(gradient, 0.05)
        with pytest.warns(RuntimeWarning, match="single-payload"):
            timeline.bucket_communication_times([bucketed, plain])
        fine = CompressionPipeline(create_compressor("topk"), bucket_bytes=8_000)
        with pytest.warns(RuntimeWarning, match="disagree"):
            timeline.bucket_communication_times([bucketed, fine.compress(gradient, 0.05)])

    def test_bucketing_pays_per_message_latency(self):
        # Identical total payload, but each bucket's all-gather pays the
        # per-message latency, so bucketed communication costs at least as
        # much as the fused single-shot transfer (the price of enabling
        # overlap, which the model can discount later).
        timeline = _timeline(workers=4)
        results = self._bucketed_results(num_workers=4)
        bucketed_comm = sum(timeline.bucket_communication_times(results))
        payload = max(r.sparse.payload_bytes() for r in results)
        assert bucketed_comm >= timeline.network.allgather_time(payload, 4)

    def test_bucket_times_scale_with_dimension(self):
        results = self._bucketed_results()
        small = _timeline(workers=2, scale=1.0)
        big = _timeline(workers=2, scale=10.0)
        assert sum(big.bucket_communication_times(results)) > sum(
            small.bucket_communication_times(results)
        )


class TestOverlapPolicies:
    """Event-driven overlap-aware pricing of the compressed iteration."""

    def _bucketed_results(self, num_workers=2, bucket_bytes=16_000):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=bucket_bytes)
        return [pipeline.compress(gradient, 0.05) for _ in range(num_workers)]

    def test_none_matches_pre_schedule_closed_form(self):
        # The degenerate policy must reproduce the flat component sum the
        # pre-refactor TimelineModel priced, to float tolerance.
        timeline = _timeline(workers=2, dim=20_000, compute=0.02)
        results = self._bucketed_results()
        timing = timeline.compressed_iteration(results, overlap="none")
        compression = max(timeline.device.trace_cost(r.ops) for r in results)
        comm = sum(timeline.bucket_communication_times(results))
        assert timing.schedule is None
        assert timing.total == pytest.approx(timeline.compute_seconds + compression + comm)
        assert timing.total == pytest.approx(timing.serialized)

    def test_overlap_policies_strictly_faster_on_multi_bucket(self):
        timeline = _timeline(workers=2, dim=20_000, compute=0.02)
        results = self._bucketed_results()
        assert results[0].metadata["num_buckets"] > 1
        none = timeline.compressed_iteration(results, overlap="none")
        comm = timeline.compressed_iteration(results, overlap="comm")
        both = timeline.compressed_iteration(results, overlap="comm+compress")
        assert comm.total < none.total
        assert both.total < none.total
        assert both.total <= comm.total
        # Components are policy-independent; only the composition changes.
        for timing in (comm, both):
            assert timing.compression == pytest.approx(none.compression)
            assert timing.communication == pytest.approx(none.communication)
            assert timing.serialized == pytest.approx(none.total)
            assert 0.0 < timing.overlap_saving < 1.0

    def test_schedule_trace_attached_and_consistent(self):
        timeline = _timeline(workers=2, dim=20_000, compute=0.02)
        results = self._bucketed_results()
        timing = timeline.compressed_iteration(results, overlap="comm+compress")
        schedule = timing.schedule
        assert schedule is not None
        assert schedule.policy == "comm+compress"
        assert len(schedule.events) == results[0].metadata["num_buckets"]
        assert timing.total == pytest.approx(schedule.iteration_seconds)
        assert schedule.total_comm_seconds == pytest.approx(timing.communication)
        assert schedule.total_compress_seconds == pytest.approx(timing.compression)

    def test_instance_default_policy_used(self):
        results = self._bucketed_results()
        base = dict(
            network=NetworkModel(bandwidth_gbps=10.0, latency_s=1e-5, efficiency=1.0),
            device=GPU_V100,
            compute_seconds=0.02,
            num_workers=2,
            model_dimension=20_000,
        )
        serial = TimelineModel(**base)  # default overlap="none"
        overlapped = TimelineModel(**base, overlap="comm+compress")
        assert overlapped.compressed_iteration(results).total < serial.compressed_iteration(results).total

    def test_unbucketed_results_ignore_overlap_policy(self):
        gradient = realistic_gradient(20_000, seed=13)
        results = [create_compressor("topk").compress(gradient, 0.05) for _ in range(2)]
        timeline = _timeline(workers=2, dim=20_000)
        none = timeline.compressed_iteration(results, overlap="none")
        both = timeline.compressed_iteration(results, overlap="comm+compress")
        assert both.schedule is None
        assert both.total == pytest.approx(none.total)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _timeline().compressed_iteration(self._bucketed_results(), overlap="pipelined")
        with pytest.raises(ValueError):
            TimelineModel(
                NetworkModel(), GPU_V100, compute_seconds=0.0, num_workers=2,
                model_dimension=10, overlap="everything",
            )

    def test_flat_topology_reproduces_default_totals_exactly(self):
        # Acceptance pin: an overlap-enabled timeline with an *explicit*
        # single-level topology and flat-allgather must reproduce the
        # pre-topology IterationTiming.total bit-for-bit under every policy.
        network = NetworkModel(bandwidth_gbps=10.0, latency_s=1e-5, efficiency=1.0)
        base = dict(
            network=network,
            device=GPU_V100,
            compute_seconds=0.02,
            num_workers=2,
            model_dimension=20_000,
        )
        results = self._bucketed_results()
        explicit = CollectiveModel(
            topology=ClusterTopology.flat(network, 2), allgather_algorithm="flat-allgather"
        )
        for policy in ("none", "comm", "comm+compress"):
            default = TimelineModel(**base).compressed_iteration(results, overlap=policy)
            topo = TimelineModel(**base, collective=explicit).compressed_iteration(
                results, overlap=policy
            )
            assert topo.total == default.total
            assert topo.serialized == default.serialized
            assert topo.communication == default.communication
        baseline_default = TimelineModel(**base).baseline_iteration()
        baseline_topo = TimelineModel(**base, collective=explicit).baseline_iteration()
        assert baseline_topo.total == baseline_default.total

    def test_layer_aware_ready_fractions_feed_schedule(self):
        # Layer-aware pipelines record per-bucket ready fractions; the
        # comm+compress schedule must start early buckets before backprop ends.
        from repro.pipeline import CompressionPipeline
        from repro.tensor.flatten import FlatSpec

        spec = FlatSpec.from_named_shapes({f"layer{i}": (50, 40) for i in range(10)})
        gradient = realistic_gradient(spec.total_size, seed=3)
        pipeline = CompressionPipeline(
            create_compressor("topk"), bucket_bytes=4_000 * 8, element_bytes=8, flat_spec=spec
        )
        results = [pipeline.compress(gradient, 0.05) for _ in range(2)]
        assert results[0].metadata["layer_aware"]
        timeline = _timeline(workers=2, dim=spec.total_size, compute=0.05)
        timing = timeline.compressed_iteration(results, overlap="comm+compress")
        last_bucket = timing.schedule.events[-1]
        assert last_bucket.compress_start < timeline.compute_seconds


class TestTopologyAwareTimeline:
    """TimelineModel priced over an explicit CollectiveModel."""

    INTER = NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter", efficiency=0.35)
    INTRA = NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="intra", efficiency=0.6)

    def _two_level(self, allgather="hierarchical"):
        topology = ClusterTopology(
            num_nodes=4, devices_per_node=2, inter_node=self.INTER, intra_node=self.INTRA
        )
        return CollectiveModel(topology, allgather_algorithm=allgather)

    def _timeline(self, collective):
        return TimelineModel(
            network=self.INTER,
            device=GPU_V100,
            compute_seconds=0.02,
            num_workers=collective.num_workers,
            model_dimension=20_000,
            collective=collective,
        )

    def _bucketed_results(self, num_workers=2):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        return [pipeline.compress(gradient, 0.05) for _ in range(num_workers)]

    def test_worker_count_mismatch_rejected(self):
        collective = self._two_level()  # 8 workers
        with pytest.raises(ValueError, match="workers"):
            TimelineModel(
                network=self.INTER,
                device=GPU_V100,
                compute_seconds=0.0,
                num_workers=4,
                model_dimension=10,
                collective=collective,
            )

    def test_default_collective_is_flat_over_network(self):
        timeline = _timeline(workers=8)
        assert timeline.collective.topology.is_single_level
        assert timeline.collective.topology.num_workers == 8
        assert timeline.collective.allgather_algorithm == "flat-allgather"

    def test_hierarchical_allgather_prices_cheaper_than_flat(self):
        results = self._bucketed_results()
        flat = self._timeline(self._two_level(allgather="flat-allgather"))
        hier = self._timeline(self._two_level(allgather="hierarchical"))
        flat_timing = flat.compressed_iteration(results)
        hier_timing = hier.compressed_iteration(results)
        assert hier_timing.communication < flat_timing.communication
        assert hier_timing.compression == pytest.approx(flat_timing.compression)

    def test_schedule_events_carry_collective_phases(self):
        results = self._bucketed_results()
        timeline = self._timeline(self._two_level(allgather="hierarchical"))
        timing = timeline.compressed_iteration(results, overlap="comm")
        assert timing.schedule is not None
        for event in timing.schedule.events:
            assert [p.name for p in event.phases] == [
                "intra-gather",
                "inter-allgather",
                "intra-broadcast",
            ]
            assert event.phases[0].start == event.comm_start
            assert event.phases[-1].end == event.comm_end
            # Serial phases carry their fabric too, not just pipelined ones.
            assert [p.link for p in event.phases] == ["intra", "inter", "intra"]

    def test_flat_allgather_single_phase_span(self):
        results = self._bucketed_results()
        timeline = self._timeline(self._two_level(allgather="flat-allgather"))
        timing = timeline.compressed_iteration(results, overlap="comm")
        for event in timing.schedule.events:
            assert [p.name for p in event.phases] == ["ring-allgather"]

    def test_baseline_allreduce_uses_collective_topology(self):
        flat = self._timeline(self._two_level(allgather="flat-allgather"))
        # Hierarchical dense all-reduce on a fast intra fabric beats the flat
        # ring gated by the inter-node link.
        hier_collective = CollectiveModel(
            self._two_level().topology, allreduce_algorithm="hierarchical"
        )
        hier = self._timeline(hier_collective)
        assert hier.baseline_iteration().communication < flat.baseline_iteration().communication


class TestDedupAndPipelinedTimeline:
    """Sparse-dedup and chunk-pipelining knobs threaded through TimelineModel."""

    INTER = NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter", efficiency=0.35)
    INTRA = NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="intra", efficiency=0.6)

    def _collective(self, **kwargs):
        topology = ClusterTopology(
            num_nodes=4, devices_per_node=2, inter_node=self.INTER, intra_node=self.INTRA
        )
        return CollectiveModel(topology, allgather_algorithm="hierarchical", **kwargs)

    def _timeline(self, collective, compute=0.02, scale=1.0):
        return TimelineModel(
            network=self.INTER,
            device=GPU_V100,
            compute_seconds=compute,
            num_workers=collective.num_workers,
            model_dimension=20_000,
            dimension_scale=scale,
            collective=collective,
        )

    def _bucketed_results(self, num_workers=2, ratio=0.05):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        return [pipeline.compress(gradient, ratio) for _ in range(num_workers)]

    def test_dedup_prices_cheaper_and_reports_achieved_ratio(self):
        results = self._bucketed_results()
        plain = self._timeline(self._collective()).compressed_iteration(results)
        deduped = self._timeline(
            self._collective(allgather_dedup=SparseAggregateModel("uniform"))
        ).compressed_iteration(results)
        assert deduped.communication < plain.communication
        assert deduped.dedup_ratio > 1.0
        assert plain.dedup_ratio == 1.0

    def test_density_comes_from_bucket_metadata(self):
        # The per-bucket density the dedup model sees is payload elements over
        # bucket elements, so a denser compression dedups harder per byte.
        sparse = self._bucketed_results(ratio=0.01)
        dense = self._bucketed_results(ratio=0.2)
        timeline = self._timeline(
            self._collective(allgather_dedup=SparseAggregateModel("uniform"))
        )
        assert (
            timeline.compressed_iteration(dense).dedup_ratio
            > timeline.compressed_iteration(sparse).dedup_ratio
        )

    def test_pipelined_timeline_faster_and_schedule_carries_placed_phases(self):
        # Proxy payloads are latency-bound (where chunking rightly falls back
        # to serial), so price them at full-model scale to see the overlap win.
        results = self._bucketed_results()
        serial = self._timeline(self._collective(), scale=1000.0).compressed_iteration(
            results, overlap="comm"
        )
        piped = self._timeline(
            self._collective(pipeline_chunks=4), scale=1000.0
        ).compressed_iteration(results, overlap="comm")
        assert piped.communication < serial.communication
        assert piped.total < serial.total
        event = piped.schedule.events[0]
        names = [p.name for p in event.phases]
        assert any(name.endswith("[c0]") for name in names)
        assert {p.link for p in event.phases} == {"intra", "inter"}
        # Phases on one link never overlap inside the bucket's occupancy.
        by_link = {}
        for phase in event.phases:
            by_link.setdefault(phase.link, []).append((phase.start, phase.end))
        for spans in by_link.values():
            spans.sort()
            assert all(a[1] <= b[0] + 1e-12 for a, b in zip(spans, spans[1:]))

    def test_unbucketed_results_also_dedup_via_sparse_density(self):
        gradient = realistic_gradient(20_000, seed=13)
        results = [create_compressor("topk").compress(gradient, 0.1) for _ in range(2)]
        plain = self._timeline(self._collective()).compressed_iteration(results)
        deduped = self._timeline(
            self._collective(allgather_dedup=SparseAggregateModel("uniform"))
        ).compressed_iteration(results)
        assert deduped.communication < plain.communication
        assert deduped.dedup_ratio > 1.0

    def test_knobs_off_reproduce_pr3_totals_bit_for_bit(self):
        results = self._bucketed_results()
        default = self._timeline(self._collective())
        knobs_off = self._timeline(self._collective(pipeline_chunks=1, allgather_dedup=None))
        for policy in ("none", "comm", "comm+compress"):
            a = default.compressed_iteration(results, overlap=policy)
            b = knobs_off.compressed_iteration(results, overlap=policy)
            assert a.total == b.total
            assert a.communication == b.communication
            assert b.dedup_ratio == 1.0


class TestCrossBucketTimeline:
    """cross_bucket_pipeline threaded TimelineModel -> schedule -> IterationTiming."""

    INTER = NetworkModel(bandwidth_gbps=10.0, latency_s=5e-5, name="inter", efficiency=0.35)
    INTRA = NetworkModel(bandwidth_gbps=25.0, latency_s=3e-5, name="intra", efficiency=0.35)

    def _collective(self, **kwargs):
        topology = ClusterTopology(
            num_nodes=4, devices_per_node=2, inter_node=self.INTER, intra_node=self.INTRA
        )
        return CollectiveModel(topology, allgather_algorithm="hierarchical", **kwargs)

    def _timeline(self, cross=False, compute=0.02, scale=1000.0):
        collective = self._collective()
        return TimelineModel(
            network=self.INTER,
            device=GPU_V100,
            compute_seconds=compute,
            num_workers=collective.num_workers,
            model_dimension=20_000,
            dimension_scale=scale,
            collective=collective,
            cross_bucket_pipeline=cross,
        )

    def _bucketed_results(self, num_workers=2, ratio=0.05):
        from repro.pipeline import CompressionPipeline

        gradient = realistic_gradient(20_000, seed=13)
        pipeline = CompressionPipeline(create_compressor("topk"), bucket_bytes=16_000)
        return [pipeline.compress(gradient, ratio) for _ in range(num_workers)]

    def test_model_default_keeps_serial_lane(self):
        timing = self._timeline().compressed_iteration(self._bucketed_results(), overlap="comm")
        assert not timing.cross_bucket_pipeline
        assert not timing.schedule.cross_bucket

    def test_cross_bucket_faster_never_changes_component_sum(self):
        results = self._bucketed_results()
        serial = self._timeline(cross=False).compressed_iteration(results, overlap="comm")
        cross = self._timeline(cross=True).compressed_iteration(results, overlap="comm")
        # Scheduling moves work between lanes; it never reprices the work.
        assert cross.communication == serial.communication
        assert cross.compression == serial.compression
        assert cross.serialized == serial.serialized
        assert cross.total < serial.total
        assert cross.cross_bucket_pipeline
        assert cross.schedule.cross_bucket
        assert cross.schedule.total_comm_seconds == pytest.approx(
            serial.schedule.total_comm_seconds
        )

    def test_per_call_override_wins_over_model_default(self):
        results = self._bucketed_results()
        model = self._timeline(cross=False)
        overridden = model.compressed_iteration(
            results, overlap="comm", cross_bucket_pipeline=True
        )
        assert overridden.cross_bucket_pipeline
        assert overridden.total == self._timeline(cross=True).compressed_iteration(
            results, overlap="comm"
        ).total

    def test_overlap_none_prices_without_schedule(self):
        timing = self._timeline(cross=True).compressed_iteration(
            self._bucketed_results(), overlap="none"
        )
        assert timing.schedule is None
        assert not timing.cross_bucket_pipeline
        assert timing.total == timing.serialized

    def test_unbucketed_results_report_serial_lane(self):
        gradient = realistic_gradient(20_000, seed=13)
        results = [create_compressor("topk").compress(gradient, 0.1) for _ in range(2)]
        timing = self._timeline(cross=True).compressed_iteration(results, overlap="comm")
        assert timing.schedule is None
        assert not timing.cross_bucket_pipeline

    def test_non_bool_flag_rejected_at_model_construction(self):
        with pytest.raises(ValueError, match="cross_bucket_pipeline"):
            self._timeline(cross=1)

    def test_link_utilization_rises_with_cross_bucket(self):
        results = self._bucketed_results()
        serial = self._timeline(cross=False).compressed_iteration(results, overlap="comm")
        cross = self._timeline(cross=True).compressed_iteration(results, overlap="comm")
        serial_util = serial.schedule.link_utilization()
        cross_util = cross.schedule.link_utilization()
        assert set(cross_util) == {"intra", "inter"}
        for link in cross_util:
            assert cross_util[link]["busy_seconds"] == pytest.approx(
                serial_util[link]["busy_seconds"]
            )
            assert cross_util[link]["utilization"] >= serial_util[link]["utilization"]
