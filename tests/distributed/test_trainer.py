"""Integration tests for the distributed trainer."""

import numpy as np
import pytest

from repro.data import make_blobs_classification
from repro.distributed import DistributedTrainer, TrainerConfig, train_baseline_and_compressed
from repro.gradients import GradientCapture
from repro.nn import build_model
from repro.optim import WarmupStepDecay


def _dataset(seed=0):
    return make_blobs_classification(num_examples=128, num_features=16, num_classes=4, seed=seed)


def _model(seed=1):
    return build_model("mlp", input_dim=16, hidden_dims=(32,), num_classes=4, seed=seed)


def _config(**kwargs):
    defaults = dict(num_workers=4, batch_size=8, iterations=30, ratio=0.01, lr=0.05, seed=0, compute_seconds=0.01)
    defaults.update(kwargs)
    return TrainerConfig(**defaults)


class TestTrainingLoop:
    def test_loss_decreases_with_compression(self):
        trainer = DistributedTrainer(_model(), _dataset(), "sidco-e", _config())
        result = trainer.run(evaluate_on=_dataset())
        losses = result.metrics.losses
        assert losses[-5:].mean() < losses[:5].mean()
        assert result.final_evaluation["accuracy"] > 0.5

    def test_metrics_recorded_every_iteration(self):
        result = DistributedTrainer(_model(), _dataset(), "topk", _config(iterations=12)).run()
        assert len(result.metrics) == 12
        assert result.metrics.total_time > 0.0

    def test_baseline_matches_target_ratio_one(self):
        result = DistributedTrainer(_model(), _dataset(), "none", _config()).run()
        assert np.allclose(result.metrics.achieved_ratios, 1.0)

    def test_warmup_iterations_uncompressed(self):
        config = _config(iterations=10, warmup_iterations=4, ratio=0.001)
        result = DistributedTrainer(_model(), _dataset(), "topk", config).run()
        ratios = result.metrics.achieved_ratios
        assert np.allclose(ratios[:4], 1.0)
        assert np.all(ratios[4:] < 0.01)

    def test_capture_hook_receives_gradients(self):
        capture = GradientCapture(iterations={2, 5}, normalize=False)
        config = _config(iterations=8)
        DistributedTrainer(_model(), _dataset(), "topk", config, capture=capture).run()
        assert capture.captured_iterations == [2, 5]
        assert capture.get(2).size == _model().num_parameters()

    def test_scheduler_changes_learning_rate(self):
        model = _model()
        dataset = _dataset()
        config = _config(iterations=10, lr=1.0)
        trainer = DistributedTrainer(model, dataset, "topk", config)
        trainer.scheduler = WarmupStepDecay(trainer.optimizer, warmup_iterations=5, decay_every=100)
        result = trainer.run()
        lrs = [r.learning_rate for r in result.metrics.records]
        assert lrs[0] < lrs[4]

    def test_compression_reduces_communication_time(self):
        config = _config(iterations=10, ratio=0.001, dimension_scale=100.0)
        compressed = DistributedTrainer(_model(), _dataset(), "sidco-e", config).run()
        baseline = DistributedTrainer(_model(), _dataset(), "none", config).run()
        assert (
            compressed.metrics.component_breakdown()["communication"]
            < baseline.metrics.component_breakdown()["communication"]
        )

    def test_error_feedback_improves_aggressive_compression(self):
        # With EC off and very aggressive compression the model learns slower.
        config_ec = _config(iterations=60, ratio=0.005, use_error_feedback=True, seed=3)
        config_no = _config(iterations=60, ratio=0.005, use_error_feedback=False, seed=3)
        with_ec = DistributedTrainer(_model(seed=5), _dataset(3), "topk", config_ec).run()
        without = DistributedTrainer(_model(seed=5), _dataset(3), "topk", config_no).run()
        assert with_ec.metrics.final_loss <= without.metrics.final_loss + 0.05

    def test_estimation_quality_close_to_one_for_topk(self):
        result = DistributedTrainer(_model(), _dataset(), "topk", _config()).run()
        mean, _ = result.metrics.estimation_quality()
        assert 0.8 < mean < 1.2


class TestHelpers:
    def test_train_baseline_and_compressed(self):
        results = train_baseline_and_compressed(
            _model, _dataset(), ["topk", "sidco-e"], _config(iterations=10)
        )
        assert set(results) == {"none", "topk", "sidco-e"}
        assert all(len(r.metrics) == 10 for r in results.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_workers=0)
        with pytest.raises(ValueError):
            TrainerConfig(ratio=0.0)
        with pytest.raises(ValueError):
            TrainerConfig(iterations=0)
        with pytest.raises(ValueError):
            TrainerConfig(warmup_iterations=-1)
        with pytest.raises(ValueError):
            TrainerConfig(bucket_bytes=0)


class TestBucketedPipeline:
    def test_bucket_bytes_wraps_worker_compressors(self):
        from repro.pipeline import CompressionPipeline

        trainer = DistributedTrainer(_model(), _dataset(), "sidco-e", _config(bucket_bytes=512))
        assert all(isinstance(w.compressor, CompressionPipeline) for w in trainer.workers)
        assert trainer.compressor_name == "sidco-e-bucketed"
        result = trainer.run()
        assert len(result.metrics) == 30
        assert result.metrics.final_loss < result.metrics.records[0].loss

    def test_bucket_bytes_overrides_prebucketed_registry_default(self):
        # Asking for an already-bucketed compressor name must still honour the
        # trainer config's bucket size, not the factory's 4 MiB default.
        trainer = DistributedTrainer(
            _model(), _dataset(), "sidco-e-bucketed", _config(bucket_bytes=512)
        )
        assert all(w.compressor.bucket_bytes == 512 for w in trainer.workers)

    def test_baseline_is_never_bucketed(self):
        trainer = DistributedTrainer(_model(), _dataset(), "none", _config(bucket_bytes=512))
        assert trainer.is_baseline
        assert trainer.compressor_name == "none"

    def test_bucketed_training_matches_unbucketed_loss_closely(self):
        # Per-bucket thresholds change *which* elements ship, but training
        # still converges to a comparable loss.
        plain = DistributedTrainer(_model(seed=7), _dataset(1), "sidco-e", _config(seed=1)).run()
        bucketed = DistributedTrainer(
            _model(seed=7), _dataset(1), "sidco-e", _config(seed=1, bucket_bytes=2048)
        ).run()
        assert bucketed.metrics.final_loss < plain.metrics.final_loss * 1.25 + 0.05

    def test_bucketed_communication_time_accounts_per_bucket_latency(self):
        plain = DistributedTrainer(_model(), _dataset(), "topk", _config(seed=2)).run()
        bucketed = DistributedTrainer(
            _model(), _dataset(), "topk", _config(seed=2, bucket_bytes=512)
        ).run()
        # Same payload split across many all-gathers pays extra per-message
        # latency, so bucketed communication is >= the single-shot pricing.
        assert (
            bucketed.metrics.records[-1].communication_time
            >= plain.metrics.records[-1].communication_time
        )

    def test_layer_aware_buckets_snap_to_model_layers(self):
        trainer = DistributedTrainer(_model(), _dataset(), "topk", _config(bucket_bytes=512))
        worker = trainer.workers[0]
        assert worker.compressor.flat_spec is not None
        layout = worker.compressor.layout_for(worker.flat_spec.total_size)
        assert not layout.is_uniform
        slot_offsets = set(worker.flat_spec.offsets().tolist())
        capacity = layout.bucket_size
        for boundary in layout.boundaries:
            # Every cut is a layer boundary, or a budget-sized cut inside an
            # oversized layer.
            in_oversized = any(
                s.offset < boundary < s.offset + s.size
                for s in worker.flat_spec.slots
                if s.size > capacity
            )
            assert boundary in slot_offsets or in_oversized

    def test_layer_aware_buckets_can_be_disabled(self):
        trainer = DistributedTrainer(
            _model(), _dataset(), "topk", _config(bucket_bytes=512, layer_aware_buckets=False)
        )
        worker = trainer.workers[0]
        assert worker.compressor.flat_spec is None
        assert worker.compressor.layout_for(worker.flat_spec.total_size).is_uniform


class TestOverlapPolicy:
    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(overlap="pipelined")

    def test_overlap_reduces_wall_time_not_loss(self):
        serial = DistributedTrainer(
            _model(seed=5), _dataset(3), "topk", _config(seed=3, bucket_bytes=512)
        ).run()
        overlapped = DistributedTrainer(
            _model(seed=5), _dataset(3), "topk",
            _config(seed=3, bucket_bytes=512, overlap="comm+compress"),
        ).run()
        # Identical training math: the schedule only reprices time.
        np.testing.assert_allclose(overlapped.metrics.losses, serial.metrics.losses)
        assert overlapped.metrics.total_time < serial.metrics.total_time
        # The serialised-equivalent time of the overlapped run matches the
        # serial run's actual time.
        assert overlapped.metrics.serialized_total_time == pytest.approx(
            serial.metrics.total_time
        )
        summary = overlapped.metrics.overlap_summary()
        assert 0.0 < summary["overlap_saving"] < 1.0

    def test_overlap_noop_without_buckets(self):
        serial = DistributedTrainer(_model(), _dataset(), "topk", _config(seed=4)).run()
        overlapped = DistributedTrainer(
            _model(), _dataset(), "topk", _config(seed=4, overlap="comm+compress")
        ).run()
        assert overlapped.metrics.total_time == pytest.approx(serial.metrics.total_time)
        assert overlapped.metrics.overlap_summary()["overlap_saving"] == pytest.approx(0.0)


class TestTopologyThreading:
    """Cluster topology + collective-algorithm choices threaded end to end."""

    def _two_level(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=NODE_INFINIBAND_100G,
            name="test-2x2",
        )

    def test_invalid_algorithm_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            TrainerConfig(allgather_algorithm="ring-allreduce")
        with pytest.raises(ValueError):
            TrainerConfig(allreduce_algorithm="nccl")

    def test_topology_worker_mismatch_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="workers"):
            _config(num_workers=8, topology=self._two_level())  # 4 workers

    def test_unknown_preset_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown topology"):
            _config(num_workers=8, topology="cluster99")

    def test_preset_resolved_by_name(self):
        from repro.distributed import get_topology
        from repro.distributed.network import CLUSTER_ETHERNET_10G

        config = _config(num_workers=8, topology="cluster1")
        assert config.resolve_topology(CLUSTER_ETHERNET_10G) is get_topology("cluster1")

    def test_default_topology_is_flat_over_network(self):
        from repro.distributed.network import CLUSTER_ETHERNET_10G

        topo = _config(num_workers=4).resolve_topology(CLUSTER_ETHERNET_10G)
        assert topo.is_single_level
        assert topo.num_workers == 4
        assert topo.bottleneck_link is CLUSTER_ETHERNET_10G

    def test_trainer_wires_collective_into_timeline(self):
        config = _config(topology=self._two_level(), allgather_algorithm="hierarchical")
        trainer = DistributedTrainer(_model(), _dataset(), "topk", config)
        assert trainer.collective.topology.name == "test-2x2"
        assert trainer.timeline.collective is trainer.collective

    def test_hierarchical_topology_run_prices_cheaper_iterations(self):
        flat = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk",
            _config(seed=5, topology=self._two_level(), allgather_algorithm="flat-allgather"),
        ).run()
        hier = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk",
            _config(seed=5, topology=self._two_level(), allgather_algorithm="hierarchical"),
        ).run()
        # Identical training math; only the communication pricing changes.
        np.testing.assert_allclose(hier.metrics.losses, flat.metrics.losses)
        assert hier.metrics.total_time < flat.metrics.total_time

    def test_flat_topology_run_matches_default_exactly(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G

        default = DistributedTrainer(_model(), _dataset(), "topk", _config(seed=6)).run()
        flat = DistributedTrainer(
            _model(), _dataset(), "topk",
            _config(seed=6, topology=ClusterTopology.flat(CLUSTER_ETHERNET_10G, 4)),
        ).run()
        assert flat.metrics.total_time == default.metrics.total_time


class TestDedupPipelineThreading:
    """pipeline_chunks / dedup_assumption threaded config -> collective -> metrics."""

    def _two_level(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=NODE_INFINIBAND_100G,
            name="test-2x2",
        )

    def test_invalid_knobs_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="pipeline_chunks"):
            _config(pipeline_chunks=0)
        with pytest.raises(ValueError, match="unknown dedup assumption"):
            _config(dedup_assumption="correlated")

    def test_trainer_builds_dedup_and_pipelined_collective(self):
        config = _config(
            topology=self._two_level(),
            allgather_algorithm="hierarchical",
            pipeline_chunks=4,
            dedup_assumption="uniform",
        )
        trainer = DistributedTrainer(_model(), _dataset(), "topk", config)
        assert trainer.collective.pipeline_chunks == 4
        assert trainer.collective.allgather_dedup.assumption == "uniform"

    def test_dedup_run_prices_cheaper_and_records_achieved_ratio(self):
        base = dict(
            seed=5, ratio=0.1, iterations=10,
            topology=self._two_level(), allgather_algorithm="hierarchical",
        )
        plain = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk", _config(**base)
        ).run()
        deduped = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk",
            _config(**base, dedup_assumption="uniform"),
        ).run()
        # Dedup only reprices the wire: identical training math, lower cost.
        np.testing.assert_allclose(deduped.metrics.losses, plain.metrics.losses)
        assert deduped.metrics.total_time < plain.metrics.total_time
        assert deduped.metrics.mean_dedup_ratio() > 1.0
        assert plain.metrics.mean_dedup_ratio() == 1.0
        assert all(r.dedup_ratio > 1.0 for r in deduped.metrics.records)

    def test_knobs_off_match_pr3_run_exactly(self):
        base = dict(seed=6, topology=self._two_level(), allgather_algorithm="hierarchical")
        default = DistributedTrainer(_model(), _dataset(), "topk", _config(**base)).run()
        knobs_off = DistributedTrainer(
            _model(), _dataset(), "topk",
            _config(**base, pipeline_chunks=1, dedup_assumption=None),
        ).run()
        assert knobs_off.metrics.total_time == default.metrics.total_time


class TestCrossBucketThreading:
    """cross_bucket_pipeline threaded config -> timeline -> run metrics."""

    def _two_level(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, CLUSTER_ETHERNET_25G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=CLUSTER_ETHERNET_25G,
            name="test-2x2-torus",
        )

    def test_invalid_flag_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="cross_bucket_pipeline"):
            _config(cross_bucket_pipeline="yes")

    def test_trainer_threads_flag_into_timeline(self):
        config = _config(
            topology=self._two_level(),
            allgather_algorithm="hierarchical",
            overlap="comm",
            cross_bucket_pipeline=True,
        )
        trainer = DistributedTrainer(_model(), _dataset(), "topk", config)
        assert trainer.timeline.cross_bucket_pipeline

    def test_cross_bucket_run_no_slower_and_same_serialized_time(self):
        base = dict(
            seed=5, ratio=0.1, iterations=8, overlap="comm",
            topology=self._two_level(), allgather_algorithm="hierarchical",
            dimension_scale=2000.0, bucket_bytes=512,
        )
        serial = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk", _config(**base)
        ).run()
        cross = DistributedTrainer(
            _model(seed=7), _dataset(5), "topk",
            _config(**base, cross_bucket_pipeline=True),
        ).run()
        assert cross.metrics.total_time < serial.metrics.total_time
        # The flat component sum is scheduling-invariant.
        assert cross.metrics.serialized_total_time == pytest.approx(
            serial.metrics.serialized_total_time
        )
        assert cross.config.cross_bucket_pipeline
