"""Tests for the simulated worker."""

import numpy as np

from repro.compressors import create_compressor
from repro.data import BatchIterator, make_blobs_classification, shard_dataset
from repro.distributed.worker import Worker
from repro.nn import build_model


def _worker(compressor="topk", use_ec=True, clip=None, seed=0):
    dataset = make_blobs_classification(num_examples=64, num_features=8, num_classes=3, seed=seed)
    model = build_model("mlp", input_dim=8, hidden_dims=(16,), num_classes=3, seed=seed)
    batches = BatchIterator(dataset, batch_size=8, seed=seed)
    return Worker(0, model, batches, create_compressor(compressor), use_error_feedback=use_ec, clip_norm=clip)


class TestWorker:
    def test_compute_gradient_shape(self):
        worker = _worker()
        loss, flat = worker.compute_gradient()
        assert flat.shape == (worker.flat_spec.total_size,)
        assert np.isfinite(loss)
        assert np.any(flat != 0.0)

    def test_step_returns_compression_result(self):
        worker = _worker()
        step = worker.step(0.1)
        assert step.compression.target_ratio == 0.1
        assert step.compression.sparse.dense_size == worker.flat_spec.total_size
        assert step.gradient_norm > 0.0

    def test_error_feedback_memory_updated(self):
        worker = _worker(compressor="topk", use_ec=True)
        worker.step(0.01)
        assert np.count_nonzero(worker.error_feedback.memory) > 0

    def test_no_error_feedback_option(self):
        worker = _worker(use_ec=False)
        assert worker.error_feedback is None
        step = worker.step(0.1)
        assert step.compression.achieved_k >= 1

    def test_clip_norm_bounds_gradient(self):
        worker = _worker(clip=0.001)
        step = worker.step(1.0)
        assert step.gradient_norm <= 0.001 + 1e-9

    def test_reset_clears_state(self):
        worker = _worker(compressor="sidco-e")
        for _ in range(10):
            worker.step(0.001)
        worker.reset()
        assert np.allclose(worker.error_feedback.memory, 0.0)
        assert worker.compressor.num_stages == 1

    def test_workers_on_different_shards_get_different_batches(self):
        dataset = make_blobs_classification(num_examples=64, num_features=8, num_classes=3, seed=0)
        shards = shard_dataset(dataset, 2, seed=0)
        model = build_model("mlp", input_dim=8, hidden_dims=(16,), num_classes=3, seed=0)
        w0 = Worker(0, model, BatchIterator(shards[0], 8, seed=1), create_compressor("topk"))
        w1 = Worker(1, model, BatchIterator(shards[1], 8, seed=2), create_compressor("topk"))
        _, g0 = w0.compute_gradient()
        _, g1 = w1.compute_gradient()
        assert not np.allclose(g0, g1)
