"""Tests for the fault layer: heterogeneity, injection, and sync policies.

The load-bearing contracts, each pinned by a property below:

* a homogeneous profile reproduces today's schedules bit-for-bit (the
  schedulers skip the scaling branch entirely at nominal rates),
* slowdowns >= 1 never shorten an iteration,
* ``backup-workers(k=0)`` prices exactly like ``full-sync``,
* injection is a pure function of ``(seed, iteration)`` — never of call
  count or evaluation order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_blobs_classification
from repro.distributed import (
    OVERLAP_POLICIES,
    BackupWorkers,
    BucketTask,
    ClusterProfile,
    DistributedTrainer,
    FaultModel,
    FullSync,
    LinkDegradation,
    StragglerInjector,
    TimeWindowSync,
    TrainerConfig,
    WorkerChurn,
    WorkerProfile,
    get_sync_policy,
    price_iteration,
    simulate_iteration,
    validate_sync_policy,
    worker_finish_times,
)
from repro.nn import build_model


def _tasks(durations, compute=1.0):
    n = len(durations)
    return [
        BucketTask(
            index=i,
            ready_seconds=compute * (n - i) / n,
            compress_seconds=c,
            comm_seconds=m,
        )
        for i, (c, m) in enumerate(durations)
    ]


_durations = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=0.01, max_value=2.0),
    ),
    min_size=1,
    max_size=6,
)

_rates = st.floats(min_value=1.0, max_value=16.0)

_finish_times = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12
)


class TestProfiles:
    def test_homogeneous_is_nominal(self):
        profile = ClusterProfile.homogeneous(4)
        assert profile.num_workers == 4
        assert profile.homogeneous_nominal
        assert profile.rates().nominal

    def test_degraded_places_single_straggler(self):
        profile = ClusterProfile.degraded(4, worker=2, compute=3.0, link=2.0)
        rates = profile.rates()
        assert rates.compute.tolist() == [1.0, 1.0, 3.0, 1.0]
        assert rates.link.tolist() == [1.0, 1.0, 2.0, 1.0]
        assert not profile.homogeneous_nominal

    def test_degraded_rejects_out_of_range_worker(self):
        with pytest.raises(ValueError, match="worker must be in"):
            ClusterProfile.degraded(4, worker=4, compute=2.0)

    def test_from_factors_requires_equal_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            ClusterProfile.from_factors([1.0, 2.0], link=[1.0])

    def test_lognormal_is_seeded_and_positive(self):
        a = ClusterProfile.lognormal(8, compute_sigma=0.3, link_sigma=0.1, seed=7)
        b = ClusterProfile.lognormal(8, compute_sigma=0.3, link_sigma=0.1, seed=7)
        assert a == b
        assert all(p.compute > 0.0 and p.link > 0.0 for p in a.workers)

    def test_profile_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            WorkerProfile(compute=0.0)
        with pytest.raises(ValueError):
            WorkerProfile(link=-1.0)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ClusterProfile(workers=())


class TestScheduleScaling:
    @settings(max_examples=100, deadline=None)
    @given(durations=_durations, policy=st.sampled_from(OVERLAP_POLICIES))
    def test_nominal_rates_bit_for_bit(self, durations, policy):
        # Explicitly passing (1.0, 1.0) must take today's exact code path.
        tasks = _tasks(durations)
        base = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy, update_seconds=0.05)
        scaled = simulate_iteration(
            tasks,
            compute_seconds=1.0,
            overlap=policy,
            update_seconds=0.05,
            compute_scale=1.0,
            comm_scale=1.0,
        )
        assert scaled.iteration_seconds == base.iteration_seconds
        assert scaled.serialized_seconds == base.serialized_seconds

    @settings(max_examples=100, deadline=None)
    @given(
        durations=_durations,
        policy=st.sampled_from(OVERLAP_POLICIES),
        compute_scale=_rates,
        comm_scale=_rates,
    )
    def test_slowdown_never_shortens(self, durations, policy, compute_scale, comm_scale):
        tasks = _tasks(durations)
        base = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy)
        slow = simulate_iteration(
            tasks,
            compute_seconds=1.0,
            overlap=policy,
            compute_scale=compute_scale,
            comm_scale=comm_scale,
        )
        assert slow.iteration_seconds >= base.iteration_seconds * (1.0 - 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(durations=_durations, policy=st.sampled_from(OVERLAP_POLICIES), scale=_rates)
    def test_uniform_scaling_scales_makespan(self, durations, policy, scale):
        # Scaling both lanes by one factor stretches the whole schedule by it.
        tasks = _tasks(durations)
        base = simulate_iteration(tasks, compute_seconds=1.0, overlap=policy)
        slow = simulate_iteration(
            tasks, compute_seconds=1.0, overlap=policy, compute_scale=scale, comm_scale=scale
        )
        assert slow.iteration_seconds == pytest.approx(base.iteration_seconds * scale, rel=1e-9)

    def test_invalid_rates_rejected(self):
        tasks = _tasks([(0.1, 0.2)])
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="positive finite multiplier"):
                simulate_iteration(tasks, compute_seconds=1.0, compute_scale=bad)


class TestSyncPolicies:
    @settings(max_examples=150, deadline=None)
    @given(times=_finish_times)
    def test_backup_zero_is_full_sync_bit_for_bit(self, times):
        finish = np.array(times)
        active = np.ones(len(times), dtype=bool)
        full = FullSync().price(finish, active)
        backup = BackupWorkers(backup_workers=0).price(finish, active)
        assert backup.iteration_seconds == full.iteration_seconds
        assert np.array_equal(backup.participating, full.participating)
        assert backup.stragglers_cut == full.stragglers_cut == 0

    @settings(max_examples=150, deadline=None)
    @given(times=_finish_times, k=st.integers(min_value=0, max_value=12))
    def test_backup_workers_never_slower_than_full_sync(self, times, k):
        finish = np.array(times)
        active = np.ones(len(times), dtype=bool)
        full = FullSync().price(finish, active)
        backup = BackupWorkers(backup_workers=k).price(finish, active)
        assert backup.iteration_seconds <= full.iteration_seconds
        assert backup.num_participating >= 1
        assert backup.stragglers_cut == min(k, len(times) - 1)

    @settings(max_examples=150, deadline=None)
    @given(times=_finish_times, factor=st.floats(min_value=1.0, max_value=10.0))
    def test_time_window_never_slower_and_keeps_fastest(self, times, factor):
        finish = np.array(times)
        active = np.ones(len(times), dtype=bool)
        full = FullSync().price(finish, active)
        windowed = TimeWindowSync(window_factor=factor).price(finish, active)
        assert windowed.iteration_seconds <= full.iteration_seconds
        fastest = int(np.argmin(finish))
        assert windowed.participating[fastest]

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        value=st.floats(min_value=0.01, max_value=10.0),
        factor=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_time_window_homogeneous_is_full_sync_bit_for_bit(self, n, value, factor):
        # Every finish time ties the minimum, so the window keeps everyone.
        finish = np.full(n, value)
        active = np.ones(n, dtype=bool)
        full = FullSync().price(finish, active)
        windowed = TimeWindowSync(window_factor=factor).price(finish, active)
        assert windowed.iteration_seconds == full.iteration_seconds
        assert np.array_equal(windowed.participating, full.participating)
        assert windowed.stragglers_cut == 0

    def test_backup_ties_break_on_lower_index(self):
        finish = np.array([2.0, 2.0, 1.0])
        outcome = BackupWorkers(backup_workers=1).price(finish, np.ones(3, dtype=bool))
        assert outcome.participating.tolist() == [True, False, True]
        assert outcome.iteration_seconds == 2.0

    def test_policies_respect_membership_mask(self):
        finish = np.array([np.nan, 3.0, 1.0])
        active = np.array([False, True, True])
        outcome = FullSync().price(finish, active)
        assert outcome.iteration_seconds == 3.0
        assert outcome.participating.tolist() == [False, True, True]

    def test_no_active_workers_rejected(self):
        with pytest.raises(ValueError, match="no active workers"):
            FullSync().price(np.array([1.0]), np.array([False]))

    def test_get_sync_policy_dispatch(self):
        assert isinstance(get_sync_policy("full-sync"), FullSync)
        assert get_sync_policy("backup-workers", backup_workers=3).backup_workers == 3
        assert get_sync_policy("time-window").window_factor == 1.5
        assert get_sync_policy("time-window", time_window_factor=2.0).window_factor == 2.0
        with pytest.raises(ValueError, match="unknown sync policy"):
            validate_sync_policy("quorum")


class TestInjectors:
    @settings(max_examples=50, deadline=None)
    @given(iteration=st.integers(min_value=0, max_value=200), seed=st.integers(0, 5))
    def test_injection_pure_in_seed_and_iteration(self, iteration, seed):
        profile = ClusterProfile.homogeneous(8)
        model = FaultModel(
            profile,
            injectors=(
                StragglerInjector(probability=0.5, slowdown=4.0, seed=seed),
                LinkDegradation(probability=0.5, factor=2.0, seed=seed),
                WorkerChurn(leave_probability=0.3, rejoin_probability=0.5, seed=seed),
            ),
        )
        first = model.rates_for_iteration(iteration)
        again = model.rates_for_iteration(iteration)
        assert np.array_equal(first.compute, again.compute)
        assert np.array_equal(first.link, again.link)
        assert np.array_equal(first.active, again.active)

    def test_churn_membership_independent_of_query_order(self):
        forward = WorkerChurn(leave_probability=0.4, rejoin_probability=0.4, seed=3)
        backward = WorkerChurn(leave_probability=0.4, rejoin_probability=0.4, seed=3)
        masks_fwd = [forward.membership(t, 6) for t in range(20)]
        masks_bwd = [backward.membership(t, 6) for t in reversed(range(20))]
        for t in range(20):
            assert np.array_equal(masks_fwd[t], masks_bwd[19 - t])

    def test_churn_min_active_floor(self):
        churn = WorkerChurn(leave_probability=1.0, rejoin_probability=0.0, seed=0, min_active=2)
        for t in range(10):
            assert churn.membership(t, 5).sum() >= 2

    def test_straggler_only_touches_compute(self):
        rates = ClusterProfile.homogeneous(16).rates()
        out = StragglerInjector(probability=1.0, slowdown=3.0, seed=0).apply(4, rates)
        assert np.all(out.compute == 3.0)
        assert np.all(out.link == 1.0)

    def test_link_degradation_only_touches_link(self):
        rates = ClusterProfile.homogeneous(16).rates()
        out = LinkDegradation(probability=1.0, factor=5.0, seed=0).apply(4, rates)
        assert np.all(out.link == 5.0)
        assert np.all(out.compute == 1.0)

    def test_injector_validation(self):
        with pytest.raises(ValueError, match="probability"):
            StragglerInjector(probability=1.5)
        with pytest.raises(ValueError, match="slowdown must be >= 1"):
            StragglerInjector(slowdown=0.5)
        with pytest.raises(ValueError, match="factor must be >= 1"):
            LinkDegradation(factor=0.9)
        with pytest.raises(ValueError, match="min_active"):
            WorkerChurn(min_active=0)
        with pytest.raises(ValueError, match="apply"):
            FaultModel(ClusterProfile.homogeneous(2), injectors=(object(),))


class TestPriceIteration:
    def test_memoizes_distinct_rate_pairs(self):
        calls = []

        def price(compute, link):
            calls.append((compute, link))
            return 1.0 * compute + 0.5 * link

        rates = ClusterProfile.degraded(8, compute=2.0).rates()
        finish = worker_finish_times(price, rates)
        assert len(calls) == 2  # one straggler pair + one nominal pair
        assert finish[0] == pytest.approx(2.5)
        assert np.all(finish[1:] == pytest.approx(1.5))

    def test_inactive_workers_priced_nan(self):
        rates = ClusterProfile.homogeneous(3).rates()
        rates.active[1] = False
        finish = worker_finish_times(lambda c, m: c + m, rates)
        assert np.isnan(finish[1])
        assert finish[0] == finish[2] == 2.0

    def test_price_iteration_threads_policy(self):
        rates = ClusterProfile.degraded(4, compute=10.0).rates()
        result = price_iteration(
            lambda c, m: c, rates, BackupWorkers(backup_workers=1)
        )
        assert result.iteration_seconds == 1.0
        assert result.outcome.stragglers_cut == 1
        assert not result.outcome.participating[0]


def _dataset(seed=0):
    return make_blobs_classification(num_examples=128, num_features=16, num_classes=4, seed=seed)


def _model(seed=1):
    return build_model("mlp", input_dim=16, hidden_dims=(32,), num_classes=4, seed=seed)


def _config(**kwargs):
    defaults = dict(
        num_workers=4, batch_size=8, iterations=12, ratio=0.01, lr=0.05, seed=0, compute_seconds=0.01
    )
    defaults.update(kwargs)
    return TrainerConfig(**defaults)


class TestTrainerIntegration:
    def test_clean_config_builds_no_fault_model(self):
        trainer = DistributedTrainer(_model(), _dataset(), "topk", _config())
        assert trainer.fault_model is None
        result = trainer.run()
        assert all(r.participating_workers is None for r in result.metrics.records)
        assert result.metrics.straggler_summary()["faulted_iterations"] == 0.0

    def test_straggler_knob_slows_training(self):
        clean = DistributedTrainer(_model(), _dataset(), "topk", _config()).run()
        slow = DistributedTrainer(
            _model(), _dataset(), "topk", _config(straggler_severity=8.0)
        ).run()
        assert slow.metrics.total_time > clean.metrics.total_time
        assert all(r.participating_workers == 4 for r in slow.metrics.records)

    def test_backup_workers_cut_the_straggler(self):
        config = _config(
            straggler_severity=8.0, sync_policy="backup-workers", backup_workers=1
        )
        full = DistributedTrainer(
            _model(), _dataset(), "topk", _config(straggler_severity=8.0)
        ).run()
        backup = DistributedTrainer(_model(), _dataset(), "topk", config).run()
        assert backup.metrics.total_time < full.metrics.total_time
        summary = backup.metrics.straggler_summary()
        assert summary["total_cut"] == 12.0
        assert summary["mean_participants"] == 3.0

    def test_churn_runs_and_records_membership(self):
        config = _config(
            fault_injectors=(
                WorkerChurn(leave_probability=0.4, rejoin_probability=0.5, seed=2),
            )
        )
        result = DistributedTrainer(_model(), _dataset(), "topk", config).run()
        participants = [r.participating_workers for r in result.metrics.records]
        assert all(1 <= p <= 4 for p in participants)
        assert min(participants) < 4  # churn actually removed someone

    def test_churn_run_deterministic_under_fixed_seed(self):
        def run():
            config = _config(
                straggler_severity=1.0,
                fault_injectors=(
                    StragglerInjector(probability=0.5, slowdown=4.0, seed=5),
                    WorkerChurn(leave_probability=0.3, rejoin_probability=0.5, seed=5),
                ),
                sync_policy="time-window",
                time_window_factor=1.2,
            )
            return DistributedTrainer(_model(), _dataset(), "topk", config).run()

        a, b = run(), run()
        assert a.metrics.total_time == b.metrics.total_time
        assert [r.participating_workers for r in a.metrics.records] == [
            r.participating_workers for r in b.metrics.records
        ]
        assert [r.loss for r in a.metrics.records] == [r.loss for r in b.metrics.records]

    def test_cluster_profile_excludes_straggler_knobs(self):
        with pytest.raises(ValueError, match="cluster_profile or the single-straggler"):
            _config(
                cluster_profile=ClusterProfile.homogeneous(4), straggler_severity=2.0
            )

    def test_cluster_profile_must_match_worker_count(self):
        with pytest.raises(ValueError, match="num_workers"):
            _config(cluster_profile=ClusterProfile.homogeneous(3))

    def test_backup_workers_must_leave_a_participant(self):
        with pytest.raises(ValueError, match="at least one participant"):
            _config(sync_policy="backup-workers", backup_workers=4)
