"""Tests for the consolidated SimulationKnobs bundle and its single-source contract.

The API redesign's core promise: every surface that prices an iteration
(``TrainerConfig``, ``BenchmarkConfig``, the sweep grid, ``run_benchmark``)
reads its knob names, defaults and validation from ``SimulationKnobs`` — so a
default can no longer drift between surfaces, and a new knob is automatically
a trainer field, a benchmark field and a sweep axis.
"""

import warnings
from dataclasses import fields

import pytest

from repro.distributed import (
    KNOB_FIELDS,
    SimulationKnobs,
    TrainerConfig,
    apply_flat_overrides,
    knob_defaults,
)
from repro.harness import BenchmarkConfig
from repro.harness.sweep import DEFAULT_KNOBS, SWEEP_KNOBS


class TestSingleSourceOfTruth:
    def test_knob_fields_order_matches_dataclass(self):
        assert KNOB_FIELDS == tuple(f.name for f in fields(SimulationKnobs))

    def test_sweep_knobs_derive_from_knob_fields(self):
        assert SWEEP_KNOBS == ("compressor", "ratio", *KNOB_FIELDS)
        assert set(DEFAULT_KNOBS) == set(SWEEP_KNOBS)

    def test_trainer_config_defaults_pin_knob_defaults(self):
        # Regression for knob-default drift: TrainerConfig's knob fields must
        # default to exactly the SimulationKnobs values.
        config = TrainerConfig(num_workers=2, compute_seconds=0.01)
        for name, default in knob_defaults().items():
            assert getattr(config, name) == default, name

    def test_benchmark_config_defaults_pin_knob_defaults(self):
        config = BenchmarkConfig(
            name="x",
            task="t",
            quality_metric="accuracy",
            full_dimension=1000,
            per_worker_batch=8,
            learning_rate=0.1,
            epochs=1,
            comm_overhead=0.5,
            optimizer="sgd",
        )
        for name, default in knob_defaults().items():
            assert getattr(config, name) == default, name

    def test_benchmark_config_bundles_knobs(self):
        config = BenchmarkConfig(
            name="x",
            task="t",
            quality_metric="accuracy",
            full_dimension=1000,
            per_worker_batch=8,
            learning_rate=0.1,
            epochs=1,
            comm_overhead=0.5,
            optimizer="sgd",
            overlap="comm",
            sync_policy="time-window",
            time_window_factor=2.0,
        )
        knobs = config.simulation_knobs()
        assert knobs.overlap == "comm"
        assert knobs.time_window_factor == 2.0
        assert knobs.faulted

    def test_trainer_config_snapshot_and_knobs_param(self):
        bundle = SimulationKnobs(overlap="comm", scheduler_backend="vectorized")
        via_knobs = TrainerConfig(num_workers=2, compute_seconds=0.01, knobs=bundle)
        via_flat = TrainerConfig(
            num_workers=2, compute_seconds=0.01, overlap="comm", scheduler_backend="vectorized"
        )
        assert via_knobs.overlap == via_flat.overlap == "comm"
        assert via_knobs.knobs == via_flat.knobs


class TestValidation:
    def test_defaults_are_clean(self):
        knobs = SimulationKnobs()
        assert not knobs.faulted
        assert knobs.as_dict() == knob_defaults()

    def test_cross_knob_implications(self):
        with pytest.raises(ValueError, match="backup_workers > 0 requires"):
            SimulationKnobs(backup_workers=1)
        with pytest.raises(ValueError, match="time_window_factor requires"):
            SimulationKnobs(time_window_factor=1.5)
        # The consistent combinations construct fine.
        assert SimulationKnobs(sync_policy="backup-workers", backup_workers=2).faulted
        assert SimulationKnobs(sync_policy="time-window", time_window_factor=1.5).faulted

    def test_rate_knobs_must_be_finite_and_at_least_one(self):
        for name in ("straggler_severity", "link_degradation"):
            for bad in (0.5, 0.0, float("inf"), float("nan")):
                with pytest.raises(ValueError, match=name):
                    SimulationKnobs(**{name: bad})

    def test_per_knob_validators_run(self):
        with pytest.raises(ValueError, match="bucket_bytes"):
            SimulationKnobs(bucket_bytes=0)
        with pytest.raises(ValueError, match="overlap"):
            SimulationKnobs(overlap="all-of-it")
        with pytest.raises(ValueError, match="sync policy"):
            SimulationKnobs(sync_policy="quorum")
        with pytest.raises(ValueError):
            SimulationKnobs(topology="no-such-fabric")

    def test_replace_revalidates(self):
        knobs = SimulationKnobs()
        assert knobs.replace(overlap="comm").overlap == "comm"
        with pytest.raises(ValueError):
            knobs.replace(backup_workers=1)


class TestDeprecationShim:
    def test_none_values_mean_not_passed(self):
        base = SimulationKnobs(overlap="comm")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            out = apply_flat_overrides(base, {"overlap": None, "bucket_bytes": None}, "f")
        assert out is base

    def test_passed_knobs_warn_and_win(self):
        base = SimulationKnobs()
        with pytest.warns(DeprecationWarning, match="deprecated.*SimulationKnobs"):
            out = apply_flat_overrides(base, {"overlap": "comm+compress"}, "run_benchmark")
        assert out.overlap == "comm+compress"

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown knobs"):
            apply_flat_overrides(SimulationKnobs(), {"turbo": True}, "f")
