"""Tests for dense layers and activations."""

import numpy as np
import pytest

from repro.nn import Dropout, Flatten, Linear, ReLU, Sequential, Sigmoid, Tanh

from .helpers import layer_input_gradient_check


class TestLinear:
    def test_forward_shape_and_bias(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(rng.normal(size=(7, 5)))
        assert out.shape == (7, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len([p for p in layer.parameters()]) == 1

    def test_input_gradient(self, rng):
        layer = Linear(6, 4, rng=rng)
        err = layer_input_gradient_check(layer, rng.normal(size=(3, 6)))
        assert err < 1e-5

    def test_parameter_gradients_accumulate(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        layer(x)
        layer.backward(np.ones((3, 2)))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((3, 2)))
        assert np.allclose(layer.weight.grad, 2 * first)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.ones((1, 2)))


@pytest.mark.parametrize("activation_cls", [ReLU, Tanh, Sigmoid])
class TestActivations:
    def test_input_gradient(self, activation_cls, rng):
        layer = activation_cls()
        err = layer_input_gradient_check(layer, rng.normal(size=(4, 5)))
        assert err < 1e-5

    def test_backward_before_forward_rejected(self, activation_cls):
        with pytest.raises(RuntimeError):
            activation_cls().backward(np.ones((1, 2)))


class TestReLU:
    def test_zeroes_negatives(self):
        out = ReLU()(np.array([[-1.0, 2.0, 0.0]]))
        assert np.allclose(out, [[0.0, 2.0, 0.0]])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4))
        assert np.allclose(layer(x), x)

    def test_training_mode_scales_survivors(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000,))
        out = layer(x)
        survivors = out[out != 0.0]
        assert np.allclose(survivors, 2.0)  # inverted dropout scaling
        assert 0.3 < survivors.size / x.size < 0.7

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_masks_gradient(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = rng.normal(size=(10, 10))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert np.allclose(grad[out == 0.0], 0.0)


class TestFlattenAndSequential:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4))
        out = layer(x)
        assert out.shape == (3, 8)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_sequential_indexing_and_append(self, rng):
        model = Sequential(Linear(4, 3, rng=rng))
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_sequential_forward_backward_chain(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.normal(size=(5, 4))
        out = model(x)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
