"""Tests for loss functions and metrics."""

import numpy as np
import pytest

from repro.nn import accuracy, cross_entropy, mse, perplexity, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_uniform_prediction_loss_is_log_c(self):
        logits = np.zeros((4, 10))
        loss, _ = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_finite_differences(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = rng.integers(0, 5, size=3)
        loss, grad = cross_entropy(logits, targets)
        eps = 1e-6
        for i, j in [(0, 0), (1, 3), (2, 4)]:
            perturbed = logits.copy()
            perturbed[i, j] += eps
            loss_plus, _ = cross_entropy(perturbed, targets)
            assert (loss_plus - loss) / eps == pytest.approx(grad[i, j], abs=1e-4)

    def test_sequence_logits_supported(self, rng):
        logits = rng.normal(size=(2, 4, 6))
        targets = rng.integers(0, 6, size=(2, 4))
        loss, grad = cross_entropy(logits, targets)
        assert grad.shape == logits.shape
        assert loss > 0.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(rng.normal(size=(2, 3)), np.zeros((3,), dtype=int))

    def test_target_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0, 3]))


class TestMSE:
    def test_zero_for_exact_prediction(self, rng):
        x = rng.normal(size=(4, 2))
        loss, grad = mse(x, x)
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_direction(self):
        loss, grad = mse(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)
        assert grad[0, 0] == pytest.approx(4.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_perplexity_is_exp_loss(self):
        assert perplexity(np.log(100.0)) == pytest.approx(100.0)

    def test_perplexity_saturates_instead_of_overflowing(self):
        assert np.isfinite(perplexity(1e6))
