"""Tests for the proxy models, including end-to-end gradient checks."""

import numpy as np
import pytest

from repro.nn import build_model, cross_entropy
from repro.optim import SGD

from .helpers import numeric_gradient_check


class TestBuildModel:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_model("transformer")

    def test_known_names_constructed(self):
        assert build_model("mlp", input_dim=8, num_classes=3).num_parameters() > 0
        assert build_model("cnn", image_size=8, channels=(4,), num_classes=3).num_parameters() > 0


class TestGradients:
    def test_mlp_gradients(self, rng):
        model = build_model("mlp", input_dim=10, hidden_dims=(8,), num_classes=4, seed=0)
        err = numeric_gradient_check(model, rng.normal(size=(5, 10)), rng.integers(0, 4, size=5))
        assert err < 1e-4

    def test_cnn_gradients(self, rng):
        model = build_model("cnn", in_channels=2, image_size=8, channels=(3,), num_classes=4, seed=0)
        err = numeric_gradient_check(model, rng.normal(size=(3, 2, 8, 8)), rng.integers(0, 4, size=3))
        assert err < 1e-4

    def test_resnet_gradients(self, rng):
        model = build_model("resnet", in_channels=2, num_blocks=1, width=4, num_classes=3, seed=0)
        err = numeric_gradient_check(model, rng.normal(size=(2, 2, 8, 8)), rng.integers(0, 3, size=2))
        assert err < 1e-4

    def test_lstm_lm_gradients(self, rng):
        model = build_model("lstm_lm", vocab_size=12, embedding_dim=5, hidden_size=6, num_layers=2, seed=0)
        tokens = rng.integers(0, 12, size=(2, 5))
        targets = rng.integers(0, 12, size=(2, 5))
        err = numeric_gradient_check(model, tokens, targets, eps=1e-5)
        assert err < 5e-3  # tiny LSTM gradients make finite differences noisy

    def test_lstm_seq_gradients(self, rng):
        model = build_model("lstm_seq", input_dim=4, hidden_size=6, num_layers=1, num_classes=3, seed=0)
        err = numeric_gradient_check(model, rng.normal(size=(3, 6, 4)), rng.integers(0, 3, size=3))
        assert err < 1e-3


class TestTrainability:
    """A few steps of SGD on a tiny dataset must reduce the loss."""

    def _loss_drop(self, model, inputs, targets, lr=0.1, steps=30):
        optimizer = SGD(model, lr=lr)
        first = None
        last = None
        for _ in range(steps):
            model.zero_grad()
            logits = model(inputs)
            loss, grad = cross_entropy(logits, targets)
            model.backward(grad)
            optimizer.step()
            first = loss if first is None else first
            last = loss
        return first, last

    def test_mlp_learns(self, rng):
        model = build_model("mlp", input_dim=6, hidden_dims=(16,), num_classes=3, seed=1)
        inputs = rng.normal(size=(32, 6))
        targets = rng.integers(0, 3, size=32)
        first, last = self._loss_drop(model, inputs, targets)
        assert last < first

    def test_cnn_learns(self, rng):
        model = build_model("cnn", in_channels=1, image_size=8, channels=(4,), num_classes=2, seed=1)
        inputs = rng.normal(size=(16, 1, 8, 8))
        targets = rng.integers(0, 2, size=16)
        first, last = self._loss_drop(model, inputs, targets, lr=0.05)
        assert last < first

    def test_lstm_lm_learns(self, rng):
        model = build_model("lstm_lm", vocab_size=10, embedding_dim=8, hidden_size=12, num_layers=1, seed=1)
        tokens = rng.integers(0, 10, size=(8, 6))
        targets = np.roll(tokens, -1, axis=1)
        first, last = self._loss_drop(model, tokens, targets, lr=0.5, steps=40)
        assert last < first
