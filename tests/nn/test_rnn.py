"""Tests for the embedding and LSTM layers."""

import numpy as np
import pytest

from repro.nn import LSTM, Embedding


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = rng.integers(0, 10, size=(3, 5))
        out = emb(ids)
        assert out.shape == (3, 5, 4)
        assert np.allclose(out[0, 0], emb.weight.data[ids[0, 0]])

    def test_out_of_range_rejected(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(ValueError):
            emb(np.array([[10]]))

    def test_backward_accumulates_per_token(self, rng):
        emb = Embedding(5, 3, rng=rng)
        ids = np.array([[0, 0, 2]])
        emb(ids)
        emb.backward(np.ones((1, 3, 3)))
        assert np.allclose(emb.weight.grad[0], 2.0)  # token 0 appears twice
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[1], 0.0)

    def test_backward_before_forward_rejected(self, rng):
        with pytest.raises(RuntimeError):
            Embedding(5, 3, rng=rng).backward(np.ones((1, 1, 3)))


class TestLSTM:
    def test_output_shape(self, rng):
        lstm = LSTM(6, 8, num_layers=2, rng=rng)
        out = lstm(rng.normal(size=(4, 7, 6)))
        assert out.shape == (4, 7, 8)

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError):
            LSTM(4, 4)(rng.normal(size=(3, 4)))

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            LSTM(4, 4, num_layers=0)

    def test_parameter_count(self):
        hidden, inp = 8, 6
        lstm = LSTM(inp, hidden, num_layers=2)
        expected_l0 = 4 * hidden * inp + 4 * hidden * hidden + 4 * hidden
        expected_l1 = 4 * hidden * hidden + 4 * hidden * hidden + 4 * hidden
        assert lstm.num_parameters() == expected_l0 + expected_l1

    def test_hidden_state_bounded_by_tanh(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        out = lstm(rng.normal(size=(2, 20, 4)) * 10.0)
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

    def test_sequence_dependence(self, rng):
        # Permuting time steps must change the final hidden state.
        lstm = LSTM(3, 5, rng=rng)
        x = rng.normal(size=(1, 6, 3))
        out_a = lstm(x)[:, -1, :].copy()
        out_b = lstm(x[:, ::-1, :])[:, -1, :]
        assert not np.allclose(out_a, out_b)

    def test_input_gradient_numerically(self, rng):
        lstm = LSTM(3, 4, num_layers=2, rng=rng)
        x = rng.normal(size=(2, 5, 3))
        out = lstm(x)
        grad_in = lstm.backward(out.copy())

        eps = 1e-6
        max_err = 0.0
        probes = [(0, 1, 2), (1, 4, 0), (0, 0, 1), (1, 2, 2)]
        for n, t, f in probes:
            original = x[n, t, f]
            x[n, t, f] = original + eps
            loss_plus = 0.5 * float(np.sum(lstm(x) ** 2))
            x[n, t, f] = original - eps
            loss_minus = 0.5 * float(np.sum(lstm(x) ** 2))
            x[n, t, f] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            denom = max(1e-7, abs(numeric) + abs(grad_in[n, t, f]))
            max_err = max(max_err, abs(numeric - grad_in[n, t, f]) / denom)
        assert max_err < 1e-4

    def test_backward_before_forward_rejected(self, rng):
        with pytest.raises(RuntimeError):
            LSTM(3, 4, rng=rng).backward(np.zeros((1, 2, 4)))
