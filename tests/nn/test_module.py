"""Tests for the Module/Parameter base classes."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_grad_initialised_to_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.shape == (2, 3)
        assert p.size == 6
        assert np.all(p.grad == 0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(4))
        p.grad += 2.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)


class TestModuleTraversal:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        names = set(model.named_parameters())
        assert names == {"0.weight", "0.bias", "2.weight", "2.bias"}

    def test_num_parameters(self):
        model = Sequential(Linear(4, 3), Linear(3, 2))
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_zero_grad_recursive(self):
        model = Sequential(Linear(4, 3))
        model.parameters()[0].grad += 1.0
        model.zero_grad()
        assert np.all(model.parameters()[0].grad == 0.0)

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert not model.training and not model[1].training
        model.train()
        assert model.training and model[1].training


class TestStateDict:
    def test_roundtrip(self):
        model = Sequential(Linear(4, 3, rng=np.random.default_rng(0)))
        state = model.state_dict()
        model.parameters()[0].data += 5.0
        model.load_state_dict(state)
        assert np.allclose(model.parameters()[0].data, state["0.weight"])

    def test_missing_key_rejected(self):
        model = Sequential(Linear(4, 3))
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_shape_mismatch_rejected(self):
        model = Sequential(Linear(4, 3))
        state = model.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_gradient_dict_matches_parameters(self):
        model = Sequential(Linear(4, 3))
        grads = model.gradient_dict()
        assert set(grads) == set(model.named_parameters())
        assert all(np.all(g == 0.0) for g in grads.values())

    def test_abstract_forward_backward(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            Module().backward(np.zeros(1))
