"""Tests for convolutional layers and the residual block."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, MaxPool2d, ResidualBlock

from .helpers import layer_input_gradient_check


class TestConv2d:
    def test_output_shape_same_padding(self, rng):
        layer = Conv2d(3, 5, kernel_size=3, stride=1, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 5, 8, 8)

    def test_output_shape_stride_two(self, rng):
        layer = Conv2d(3, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 4, 4, 4)

    def test_matches_manual_convolution_1x1(self, rng):
        # A 1x1 convolution is a per-pixel linear map; verify against einsum.
        layer = Conv2d(3, 2, kernel_size=1, stride=1, padding=0, rng=rng)
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        weights = layer.weight.data.reshape(2, 3)
        expected = np.einsum("oc,nchw->nohw", weights, x) + layer.bias.data[None, :, None, None]
        assert np.allclose(out, expected)

    def test_input_gradient(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        err = layer_input_gradient_check(layer, rng.normal(size=(2, 2, 5, 5)))
        assert err < 1e-5

    def test_input_gradient_with_stride(self, rng):
        layer = Conv2d(2, 2, kernel_size=3, stride=2, padding=1, rng=rng)
        err = layer_input_gradient_check(layer, rng.normal(size=(1, 2, 6, 6)))
        assert err < 1e-5

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Conv2d(1, 1).backward(np.zeros((1, 1, 2, 2)))


class TestMaxPool2d:
    def test_forward_picks_maximum(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        layer(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of "5"

    def test_input_gradient(self, rng):
        # Use distinct values so the argmax is stable under the FD perturbation.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8) * 0.1
        err = layer_input_gradient_check(MaxPool2d(2), x)
        assert err < 1e-5

    def test_indivisible_size_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(2)(rng.normal(size=(1, 1, 5, 5)))


class TestGlobalAvgPool2d:
    def test_forward_is_spatial_mean(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool2d()(x)
        assert np.allclose(out, x.mean(axis=(2, 3)))

    def test_input_gradient(self, rng):
        err = layer_input_gradient_check(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))
        assert err < 1e-6


class TestResidualBlock:
    def test_preserves_shape(self, rng):
        block = ResidualBlock(4, rng=rng)
        out = block(rng.normal(size=(2, 4, 6, 6)))
        assert out.shape == (2, 4, 6, 6)

    def test_input_gradient(self, rng):
        block = ResidualBlock(2, rng=rng)
        err = layer_input_gradient_check(block, rng.normal(size=(1, 2, 4, 4)))
        assert err < 1e-4

    def test_skip_connection_contributes(self, rng):
        # Zeroing the convolution weights leaves ReLU(x) thanks to the skip.
        block = ResidualBlock(2, rng=rng)
        for param in block.parameters():
            param.data[...] = 0.0
        x = rng.normal(size=(1, 2, 4, 4))
        assert np.allclose(block(x), np.maximum(x, 0.0))
