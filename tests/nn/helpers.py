"""Numerical gradient-checking helpers shared by the nn tests."""

from __future__ import annotations

import numpy as np

from repro.nn import cross_entropy
from repro.nn.module import Module


def numeric_gradient_check(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    num_probes: int = 6,
    eps: float = 1e-5,
    seed: int = 0,
) -> float:
    """Compare analytic parameter gradients to central finite differences.

    Returns the maximum relative error over randomly probed parameter entries.
    """
    model.zero_grad()
    logits = model(inputs)
    _, grad_logits = cross_entropy(logits, targets)
    model.backward(grad_logits)

    rng = np.random.default_rng(seed)
    max_err = 0.0
    for param in model.named_parameters().values():
        flat = param.data.ravel()
        grad_flat = param.grad.ravel()
        probes = rng.choice(flat.size, size=min(num_probes, flat.size), replace=False)
        for idx in probes:
            original = flat[idx]
            flat[idx] = original + eps
            loss_plus, _ = cross_entropy(model(inputs), targets)
            flat[idx] = original - eps
            loss_minus, _ = cross_entropy(model(inputs), targets)
            flat[idx] = original
            numeric = (loss_plus - loss_minus) / (2.0 * eps)
            denom = max(1e-7, abs(numeric) + abs(grad_flat[idx]))
            max_err = max(max_err, abs(numeric - grad_flat[idx]) / denom)
    return max_err


def layer_input_gradient_check(layer, x: np.ndarray, *, eps: float = 1e-6, num_probes: int = 6, seed: int = 0) -> float:
    """Check a single layer's input gradient against finite differences.

    Uses the scalar objective ``0.5 * sum(layer(x)^2)`` whose gradient with
    respect to the layer output is simply the output itself.
    """
    out = layer(x)
    grad_input = layer.backward(out.copy())
    rng = np.random.default_rng(seed)
    flat_x = x.ravel()
    flat_grad = grad_input.ravel()
    max_err = 0.0
    probes = rng.choice(flat_x.size, size=min(num_probes, flat_x.size), replace=False)
    for idx in probes:
        original = flat_x[idx]
        flat_x[idx] = original + eps
        loss_plus = 0.5 * float(np.sum(np.asarray(layer(x)) ** 2))
        flat_x[idx] = original - eps
        loss_minus = 0.5 * float(np.sum(np.asarray(layer(x)) ** 2))
        flat_x[idx] = original
        numeric = (loss_plus - loss_minus) / (2.0 * eps)
        denom = max(1e-7, abs(numeric) + abs(flat_grad[idx]))
        max_err = max(max_err, abs(numeric - flat_grad[idx]) / denom)
    return max_err
