"""Registry-wide batched fitting (``fit_all_buckets``) against the scalar loop.

Every registry compressor's vectorized bucket-axis path must reproduce the
per-bucket scalar loop bit-for-bit: same indices, same values, same per-bucket
thresholds and counts, and the same evolution of cross-call adaptive state
(RNG streams, adaptive threshold scales, SIDCo stage controllers).  The only
tolerated divergence is argpartition tie-breaking on exactly-equal magnitudes,
which the realistic float gradients used here make measure-zero.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import BucketedFit, Compressor, available_compressors, create_compressor
from repro.gradients import realistic_gradient
from repro.pipeline import CompressionPipeline

#: Every registry name that is a raw compressor (the ``sidco-*-bucketed``
#: entries are already pipelines; they are exercised via the vectorized flag
#: in :class:`TestBucketedRegistryVariants`).
PLAIN_NAMES = [n for n in available_compressors() if not n.endswith("-bucketed")]


def _twin_pipelines(name: str, bucket_bytes: int = 4000) -> tuple[CompressionPipeline, CompressionPipeline]:
    """Two pipelines over independently built (seed-twin) compressors."""
    return (
        CompressionPipeline(create_compressor(name), bucket_bytes=bucket_bytes, vectorized=True),
        CompressionPipeline(create_compressor(name), bucket_bytes=bucket_bytes, vectorized=False),
    )


def _thresholds_array(meta: dict) -> np.ndarray:
    raw = meta["bucket_thresholds"]
    return np.asarray([np.nan if t is None else float(t) for t in raw], dtype=np.float64)


def _assert_results_match(rv, rl, *, threshold_rtol: float = 0.0):
    """Selections are always bit-for-bit; thresholds too, except for SIDCo.

    SIDCo's batched estimator reassociates the stage-tail reductions (one
    fused pass over all buckets), so its thresholds match the scalar loop to
    ``rtol=1e-9`` rather than exactly — the documented tolerance from the
    PR-1 fast path.  Every other compressor replays the scalar float ops in
    order and must be exact.
    """
    np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
    np.testing.assert_array_equal(rv.sparse.values, rl.sparse.values)
    assert rv.sparse.dense_size == rl.sparse.dense_size
    assert rv.target_ratio == rl.target_ratio
    assert rv.metadata["bucket_nnz"] == rl.metadata["bucket_nnz"]
    if "bucket_thresholds" in rv.metadata and "bucket_thresholds" in rl.metadata:
        tv, tl = _thresholds_array(rv.metadata), _thresholds_array(rl.metadata)
        if threshold_rtol:
            np.testing.assert_allclose(tv, tl, rtol=threshold_rtol)
        else:
            np.testing.assert_array_equal(tv, tl)
    if rl.threshold is None:
        assert rv.threshold is None
    else:
        np.testing.assert_allclose(rv.threshold, rl.threshold, rtol=max(threshold_rtol, 1e-12))


def _rtol_for(name: str) -> float:
    return 1e-9 if name.startswith("sidco") else 0.0


@pytest.mark.parametrize("name", PLAIN_NAMES)
class TestMatchesScalarLoopRegistryWide:
    def test_single_call_matches_bit_for_bit(self, name, small_gradient):
        vectorized, loop = _twin_pipelines(name)
        rv = vectorized.compress(small_gradient, 0.02)
        rl = loop.compress(small_gradient, 0.02)
        assert rv.metadata["num_buckets"] > 1
        _assert_results_match(rv, rl, threshold_rtol=_rtol_for(name))

    def test_adaptive_state_stays_aligned_across_calls(self, name):
        # Stateful compressors (RNG streams, adaptive scales, stage
        # controllers) must evolve identically under both paths, so every
        # call in a sequence of distinct gradients keeps matching.
        vectorized, loop = _twin_pipelines(name)
        for call in range(4):
            gradient = realistic_gradient(12_288, seed=100 + call)
            rv = vectorized.compress(gradient, 0.01)
            rl = loop.compress(gradient, 0.01)
            _assert_results_match(rv, rl, threshold_rtol=_rtol_for(name))

    def test_ragged_tail_bucket_matches(self, name):
        # 20 full buckets of 1000 plus a 37-element tail.
        gradient = realistic_gradient(20_037, seed=17)
        vectorized, loop = _twin_pipelines(name)
        rv = vectorized.compress(gradient, 0.02)
        rl = loop.compress(gradient, 0.02)
        assert rv.metadata["bucket_sizes"][-1] == 37
        _assert_results_match(rv, rl, threshold_rtol=_rtol_for(name))

    def test_full_ratio_matches(self, name, small_gradient):
        if name.startswith("sidco"):
            pytest.skip("SIDCo's SID fit rejects delta=1.0 by contract")
        vectorized, loop = _twin_pipelines(name)
        _assert_results_match(
            vectorized.compress(small_gradient, 1.0),
            loop.compress(small_gradient, 1.0),
            threshold_rtol=_rtol_for(name),
        )


class TestAdaptiveStateEquality:
    def test_hard_threshold_scale_identical_after_calls(self, small_gradient):
        vectorized, loop = _twin_pipelines("hard_threshold")
        for _ in range(5):
            vectorized.compress(small_gradient, 0.01)
            loop.compress(small_gradient, 0.01)
        # The batched path replays the sequential per-bucket scale recurrence
        # exactly, so the internal state is bit-identical, not just close.
        assert vectorized.compressor._scale == loop.compressor._scale

    @pytest.mark.parametrize("name", ["dgc", "randomk"])
    def test_rng_stream_identical_after_calls(self, name, small_gradient):
        vectorized, loop = _twin_pipelines(name)
        for _ in range(3):
            vectorized.compress(small_gradient, 0.02)
            loop.compress(small_gradient, 0.02)
        # Both generators must sit at the same point of the same stream.
        assert (
            vectorized.compressor._rng.bit_generator.state
            == loop.compressor._rng.bit_generator.state
        )


class TestBucketedRegistryVariants:
    @pytest.mark.parametrize("name", [n for n in available_compressors() if n.endswith("-bucketed")])
    def test_bucketed_registry_names_match_their_scalar_loop(self, name, medium_gradient):
        rv = create_compressor(name, bucket_bytes=32 * 1024, vectorized=True).compress(
            medium_gradient, 0.01
        )
        rl = create_compressor(name, bucket_bytes=32 * 1024, vectorized=False).compress(
            medium_gradient, 0.01
        )
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
        np.testing.assert_array_equal(rv.sparse.values, rl.sparse.values)
        assert rv.metadata["bucket_nnz"] == rl.metadata["bucket_nnz"]


class TestFitContract:
    def test_base_compressor_declines_by_default(self, small_gradient):
        class Opaque(Compressor):
            name = "opaque"

            def compress(self, gradient, ratio):
                return create_compressor("topk").compress(gradient, ratio)

        pipeline = CompressionPipeline(Opaque(), bucket_bytes=4000, vectorized=True)
        layout = pipeline.layout_for(small_gradient.size)
        assert Opaque().fit_all_buckets(small_gradient, layout, 0.02) is None
        # The pipeline silently falls back to the per-bucket scalar loop.
        result = pipeline.compress(small_gradient, 0.02)
        assert result.metadata["num_buckets"] == layout.num_buckets
        assert "vectorized" not in result.metadata

    @pytest.mark.parametrize("name", [n for n in PLAIN_NAMES if not n.startswith("sidco")])
    def test_fit_is_bucket_major_and_consistent(self, name, small_gradient):
        pipeline = CompressionPipeline(create_compressor(name), bucket_bytes=4000)
        layout = pipeline.layout_for(small_gradient.size)
        fit = pipeline.compressor.fit_all_buckets(small_gradient, layout, 0.02)
        assert isinstance(fit, BucketedFit)
        nnz = np.asarray(fit.bucket_nnz, dtype=np.int64)
        assert nnz.size == layout.num_buckets
        assert int(nnz.sum()) == fit.indices.size == fit.values.size
        assert len(list(fit.bucket_thresholds)) == layout.num_buckets
        # Indices are bucket-major: each bucket's block stays inside its bounds.
        offset = 0
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            block = fit.indices[offset : offset + int(nnz[i])]
            assert block.size == int(nnz[i])
            if block.size:
                assert block.min() >= start and block.max() < stop
            offset += int(nnz[i])


class TestPropertyBasedEquivalence:
    @given(
        name=st.sampled_from([n for n in PLAIN_NAMES if n != "none"]),
        size=st.integers(min_value=64, max_value=9000),
        ratio=st.sampled_from([0.5, 0.1, 0.02]),
        seed=st.integers(min_value=0, max_value=500),
        bucket_bytes=st.sampled_from([512, 2048, 6400]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_shapes_and_ratios_match(self, name, size, ratio, seed, bucket_bytes):
        gradient = realistic_gradient(size, seed=seed)
        vectorized, loop = _twin_pipelines(name, bucket_bytes=bucket_bytes)
        rv = vectorized.compress(gradient, ratio)
        rl = loop.compress(gradient, ratio)
        _assert_results_match(rv, rl, threshold_rtol=_rtol_for(name))
