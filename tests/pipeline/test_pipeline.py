"""CompressionPipeline behaviour: wrapping, merging, metadata, invariances."""

import numpy as np
import pytest

from repro.compressors import available_compressors, create_compressor
from repro.compressors.topk import NoCompression, TopK
from repro.pipeline import CompressionPipeline
from repro.tensor.sparse import FLOAT_BYTES, INDEX_BYTES


class TestConstruction:
    def test_accepts_registry_name(self):
        pipeline = CompressionPipeline("topk", bucket_bytes=1024)
        assert isinstance(pipeline.compressor, TopK)
        assert pipeline.name == "topk-bucketed"

    def test_bucketed_sidco_registered(self):
        for name in ("sidco-e-bucketed", "sidco-gp-bucketed", "sidco-p-bucketed"):
            assert name in available_compressors()
            built = create_compressor(name, bucket_bytes=2048)
            assert isinstance(built, CompressionPipeline)
            assert built.name == name

    def test_rejects_nesting_and_bad_budget(self):
        with pytest.raises(ValueError):
            CompressionPipeline(CompressionPipeline("topk"))
        with pytest.raises(ValueError):
            CompressionPipeline("topk", bucket_bytes=2, element_bytes=4)

    def test_reset_propagates_to_inner(self, small_gradient):
        pipeline = create_compressor("sidco-e-bucketed", bucket_bytes=8 * 1024)
        for _ in range(12):
            pipeline.compress(small_gradient, 0.001)
        assert pipeline.compressor.controller.num_stages > 1
        pipeline.reset()
        assert pipeline.compressor.controller.num_stages == 1


class TestGenericBucketing:
    def test_no_compression_is_bucketing_invariant(self, small_gradient):
        unbucketed = NoCompression().compress(small_gradient, 1.0)
        bucketed = CompressionPipeline(NoCompression(), bucket_bytes=4096).compress(small_gradient, 1.0)
        assert bucketed.metadata["num_buckets"] > 1
        np.testing.assert_array_equal(bucketed.sparse.indices, unbucketed.sparse.indices)
        np.testing.assert_array_equal(bucketed.sparse.values, unbucketed.sparse.values)
        assert bucketed.target_ratio == unbucketed.target_ratio == 1.0

    def test_topk_selects_k_per_bucket(self, small_gradient):
        ratio = 0.05
        pipeline = CompressionPipeline(TopK(), bucket_bytes=4000)
        result = pipeline.compress(small_gradient, ratio)
        layout = pipeline.layout_for(small_gradient.size)
        per_bucket_k = [max(1, int(round(ratio * s))) for s in layout.sizes()]
        assert result.metadata["bucket_nnz"] == per_bucket_k
        assert result.achieved_k == sum(per_bucket_k)
        # Values always come from the original vector at the merged indices.
        np.testing.assert_allclose(result.sparse.values, small_gradient[result.sparse.indices])

    def test_bucket_payload_metadata_consistent(self, small_gradient):
        result = CompressionPipeline(TopK(), bucket_bytes=4000).compress(small_gradient, 0.05)
        nnz = result.metadata["bucket_nnz"]
        payload = result.metadata["bucket_payload_bytes"]
        assert payload == [n * (FLOAT_BYTES + INDEX_BYTES) for n in nnz]
        assert sum(nnz) == result.sparse.nnz
        assert sum(payload) == result.sparse.payload_bytes()

    def test_scalar_loop_ops_concatenate_per_bucket_traces(self, small_gradient):
        single = TopK().compress(small_gradient, 0.05)
        bucketed = CompressionPipeline(TopK(), bucket_bytes=4000, vectorized=False).compress(
            small_gradient, 0.05
        )
        num_buckets = bucketed.metadata["num_buckets"]
        assert len(bucketed.ops) == num_buckets * len(single.ops)

    def test_vectorized_ops_are_fused_across_buckets(self, small_gradient):
        # The batched path launches each primitive once over the whole vector
        # rather than once per bucket: a constant-length trace whose sizes
        # still cover every element.
        single = TopK().compress(small_gradient, 0.05)
        fused = CompressionPipeline(TopK(), bucket_bytes=4000).compress(small_gradient, 0.05)
        assert fused.metadata["num_buckets"] > 1
        assert len(fused.ops) == len(single.ops)
        assert {op.op for op in fused.ops} == {op.op for op in single.ops}
        assert all(op.size == small_gradient.size for op in fused.ops)


class TestSIDCoBucketing:
    def test_achieved_ratio_within_controller_band(self, medium_gradient):
        target = 0.01
        pipeline = create_compressor("sidco-e-bucketed", bucket_bytes=32 * 1024)
        result = None
        for _ in range(15):
            result = pipeline.compress(medium_gradient, target)
        tolerance = pipeline.compressor.controller.config.error_tolerance
        # Steady state: the global achieved ratio sits inside the stage
        # controller's tolerance band around the target, like unbucketed SIDCo.
        assert abs(result.achieved_ratio / target - 1.0) <= tolerance + 0.05

    def test_controller_observes_globally_once_per_call(self, medium_gradient):
        pipeline = create_compressor("sidco-e-bucketed", bucket_bytes=32 * 1024)
        interval = pipeline.compressor.controller.config.adaptation_interval
        for _ in range(interval):
            pipeline.compress(medium_gradient, 0.001)
        # One observation per compress call -> exactly one adaptation decision.
        assert len(pipeline.compressor.controller.history) == 2

    def test_all_zero_gradient_degrades_gracefully(self):
        pipeline = create_compressor("sidco-e-bucketed", bucket_bytes=1024)
        result = pipeline.compress(np.zeros(5000), 0.01)
        assert result.achieved_k == max(1, round(0.01 * 5000))
        assert np.all(np.isfinite(result.sparse.values))
        # The degenerate fallback still honours the bucket-metadata contract.
        assert result.metadata["num_buckets"] == pipeline.layout_for(5000).num_buckets
        assert sum(result.metadata["bucket_nnz"]) == result.achieved_k
        assert sum(result.metadata["bucket_payload_bytes"]) == result.sparse.payload_bytes()

    def test_single_element_gradient_keeps_the_element(self):
        for name in ("sidco-e-bucketed", "sidco-gp-bucketed", "sidco-p-bucketed"):
            result = create_compressor(name).compress(np.array([0.5]), 0.5)
            assert result.achieved_k == 1
            assert result.metadata["num_buckets"] == 1

    def test_zero_bucket_inside_nonzero_gradient_selects_nothing_there(self, rng):
        flat = rng.laplace(size=4096)
        flat[1024:2048] = 0.0
        pipeline = create_compressor("sidco-e-bucketed", bucket_bytes=1024 * FLOAT_BYTES)
        result = pipeline.compress(flat, 0.05)
        assert result.metadata["bucket_nnz"][1] == 0
        assert result.achieved_k > 0

    def test_threshold_is_mean_of_finite_bucket_thresholds(self, medium_gradient):
        result = create_compressor("sidco-e-bucketed", bucket_bytes=64 * 1024).compress(
            medium_gradient, 0.01
        )
        thresholds = np.asarray(result.metadata["bucket_thresholds"])
        finite = thresholds[np.isfinite(thresholds)]
        assert result.threshold == pytest.approx(float(finite.mean()))
