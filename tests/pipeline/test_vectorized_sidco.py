"""The vectorized batched SIDCo fast path against the per-bucket scalar loop."""

import numpy as np
import pytest

from repro.core.sidco import SIDCo
from repro.core.threshold import estimate_multi_stage
from repro.gradients import realistic_gradient
from repro.pipeline import BucketLayout, CompressionPipeline, estimate_multi_stage_bucketed

VARIANTS = ["exponential", "gamma", "gpareto"]


def _pipelines(sid, bucket_bytes):
    return (
        CompressionPipeline(SIDCo(sid), bucket_bytes=bucket_bytes, vectorized=True),
        CompressionPipeline(SIDCo(sid), bucket_bytes=bucket_bytes, vectorized=False),
    )


@pytest.mark.parametrize("sid", VARIANTS)
class TestMatchesScalarLoop:
    def test_single_call_thresholds_and_selection_match(self, sid, medium_gradient):
        vectorized, loop = _pipelines(sid, 32 * 1024)
        rv = vectorized.compress(medium_gradient, 0.01)
        rl = loop.compress(medium_gradient, 0.01)
        tv = np.asarray(rv.metadata["bucket_thresholds"])
        tl = np.asarray(rl.metadata["bucket_thresholds"])
        np.testing.assert_allclose(tv, tl, rtol=1e-9)
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
        np.testing.assert_array_equal(rv.metadata["bucket_stages_used"], rl.metadata["bucket_stages_used"])

    def test_steady_state_with_adaptive_stages_matches(self, sid, medium_gradient):
        # Both controllers see identical global observations, so they escalate
        # stages in lockstep and the batched fits must keep matching.
        vectorized, loop = _pipelines(sid, 32 * 1024)
        for _ in range(12):
            rv = vectorized.compress(medium_gradient, 0.001)
            rl = loop.compress(medium_gradient, 0.001)
        assert vectorized.compressor.num_stages == loop.compressor.num_stages
        np.testing.assert_allclose(
            np.asarray(rv.metadata["bucket_thresholds"]),
            np.asarray(rl.metadata["bucket_thresholds"]),
            rtol=1e-9,
        )
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)

    def test_ragged_last_bucket_matches(self, sid):
        gradient = realistic_gradient(100_003, seed=23)
        vectorized, loop = _pipelines(sid, 24_000)
        rv = vectorized.compress(gradient, 0.01)
        rl = loop.compress(gradient, 0.01)
        assert rv.metadata["num_buckets"] == rl.metadata["num_buckets"]
        np.testing.assert_allclose(
            np.asarray(rv.metadata["bucket_thresholds"]),
            np.asarray(rl.metadata["bucket_thresholds"]),
            rtol=1e-9,
        )
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)

    def test_tiny_tail_bucket_uses_single_stage_fallback(self, sid):
        # Last bucket has 7 (< MIN_STAGE_SAMPLE) elements: both paths fall back
        # to a single-stage fit on the raw target ratio for it.
        gradient = realistic_gradient(1024 * 3 + 7, seed=29)
        vectorized, loop = _pipelines(sid, 4096)
        rv = vectorized.compress(gradient, 0.05)
        rl = loop.compress(gradient, 0.05)
        np.testing.assert_allclose(
            np.asarray(rv.metadata["bucket_thresholds"]),
            np.asarray(rl.metadata["bucket_thresholds"]),
            rtol=1e-9,
        )
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)


class TestEstimatorDirect:
    def test_matches_per_bucket_scalar_estimates(self, medium_gradient):
        abs_flat = np.abs(medium_gradient)
        layout = BucketLayout(total_size=abs_flat.size, bucket_size=10_000)
        for sid, stages in [("exponential", 3), ("gamma", 2), ("gpareto", 2)]:
            batched = estimate_multi_stage_bucketed(
                abs_flat, layout, 0.005, sid, stages, first_stage_ratio=0.25
            )
            for i in range(layout.num_buckets):
                start, stop = layout.bounds(i)
                scalar = estimate_multi_stage(
                    abs_flat[start:stop], 0.005, sid, stages, first_stage_ratio=0.25
                )
                assert batched.thresholds[i] == pytest.approx(scalar.threshold, rel=1e-9)
                assert batched.stages_used[i] == scalar.stages_used

    def test_single_bucket_matches_unbucketed_estimator(self, medium_gradient):
        abs_flat = np.abs(medium_gradient)
        layout = BucketLayout(total_size=abs_flat.size, bucket_size=abs_flat.size)
        batched = estimate_multi_stage_bucketed(
            abs_flat, layout, 0.01, "exponential", 2, first_stage_ratio=0.25
        )
        scalar = estimate_multi_stage(abs_flat, 0.01, "exponential", 2, first_stage_ratio=0.25)
        assert batched.thresholds[0] == pytest.approx(scalar.threshold, rel=1e-12)

    def test_degenerate_bucket_gets_infinite_threshold(self):
        flat = np.abs(realistic_gradient(2048, seed=3))
        flat[:1024] = 0.0
        layout = BucketLayout(total_size=2048, bucket_size=1024)
        batched = estimate_multi_stage_bucketed(
            flat, layout, 0.05, "exponential", 1, first_stage_ratio=0.25
        )
        assert np.isinf(batched.thresholds[0])
        assert np.isfinite(batched.thresholds[1])

    def test_input_validation(self):
        flat = np.abs(realistic_gradient(128, seed=0))
        layout = BucketLayout(total_size=128, bucket_size=64)
        with pytest.raises(ValueError):
            estimate_multi_stage_bucketed(flat, layout, 0.0, "exponential", 1, first_stage_ratio=0.25)
        with pytest.raises(ValueError):
            estimate_multi_stage_bucketed(flat, layout, 0.1, "exponential", 0, first_stage_ratio=0.25)
        with pytest.raises(ValueError):
            estimate_multi_stage_bucketed(flat[:100], layout, 0.1, "exponential", 1, first_stage_ratio=0.25)

    def test_batched_ops_are_fused_not_per_bucket(self, medium_gradient):
        # One reduce per stage regardless of bucket count: the modelled trace
        # reflects the batched launches.
        abs_flat = np.abs(medium_gradient)
        layout = BucketLayout(total_size=abs_flat.size, bucket_size=10_000)
        batched = estimate_multi_stage_bucketed(
            abs_flat, layout, 0.1, "exponential", 1, first_stage_ratio=0.25
        )
        reduces = [op for op in batched.ops if op.op == "reduce"]
        assert len(reduces) == 1
        assert reduces[0].size == abs_flat.size
