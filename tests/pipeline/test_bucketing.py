"""Bucket layout arithmetic and split/merge round-trips."""

import numpy as np
import pytest

from repro.pipeline import BucketLayout, merge_sparse_buckets, split_into_buckets
from repro.tensor.flatten import FlatSpec
from repro.tensor.sparse import FLOAT_BYTES, SparseGradient


class TestBucketLayout:
    def test_even_split(self):
        layout = BucketLayout(total_size=1000, bucket_size=250)
        assert layout.num_buckets == 4
        assert not layout.is_ragged
        assert layout.last_bucket_size == 250
        assert layout.sizes().tolist() == [250] * 4
        assert layout.starts().tolist() == [0, 250, 500, 750]

    def test_ragged_split(self):
        layout = BucketLayout(total_size=1003, bucket_size=250)
        assert layout.num_buckets == 5
        assert layout.is_ragged
        assert layout.last_bucket_size == 3
        assert layout.sizes().tolist() == [250, 250, 250, 250, 3]
        assert layout.bounds(4) == (1000, 1003)

    def test_single_bucket_when_budget_exceeds_size(self):
        layout = BucketLayout(total_size=10, bucket_size=1000)
        assert layout.num_buckets == 1
        assert layout.last_bucket_size == 10

    def test_from_bytes_uses_element_size(self):
        layout = BucketLayout.from_bytes(1_000_000, 4 * 1024, element_bytes=FLOAT_BYTES)
        assert layout.bucket_size == 1024

    def test_sizes_sum_to_total(self):
        for total in (1, 7, 64, 1000, 1003):
            layout = BucketLayout(total_size=total, bucket_size=64)
            assert int(layout.sizes().sum()) == total

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            BucketLayout(total_size=0, bucket_size=10)
        with pytest.raises(ValueError):
            BucketLayout(total_size=10, bucket_size=0)
        with pytest.raises(ValueError):
            BucketLayout.from_bytes(10, 2, element_bytes=4)
        with pytest.raises(IndexError):
            BucketLayout(total_size=10, bucket_size=4).bounds(3)


class TestLayerAwareLayout:
    """DDP-style snapping of bucket boundaries to FlatSpec slot boundaries."""

    def _spec(self, sizes):
        return FlatSpec.from_named_shapes({f"p{i}": (s,) for i, s in enumerate(sizes)})

    @staticmethod
    def _element_budget(elements):
        """bucket_bytes for an fp32 budget of ``elements`` wire elements."""
        return elements * FLOAT_BYTES

    def test_boundaries_snap_to_slot_offsets(self):
        spec = self._spec([30, 50, 40, 10, 60])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(100))
        assert not layout.is_uniform
        slot_offsets = set(spec.offsets().tolist())
        assert all(b in slot_offsets for b in layout.boundaries)
        # [30+50], [40+10], [60]
        assert layout.starts().tolist() == [0, 80, 130]
        assert layout.sizes().tolist() == [80, 50, 60]

    def test_no_slot_split_across_buckets(self, rng):
        sizes = rng.integers(1, 90, size=40).tolist()
        spec = self._spec(sizes)
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(100))
        slot_edges = set(spec.offsets().tolist())
        assert all(b in slot_edges for b in layout.boundaries)
        assert int(layout.sizes().sum()) == spec.total_size
        assert (layout.sizes() <= 100).all()

    def test_oversized_slot_is_chunked_to_budget(self):
        spec = self._spec([20, 350, 30])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(100))
        # [20], [100], [100], [100], [50+30]
        assert layout.starts().tolist() == [0, 20, 120, 220, 320]
        assert layout.sizes().tolist() == [20, 100, 100, 100, 80]
        assert (layout.sizes() <= 100).all()
        # Boundaries inside the flat vector are either slot offsets or cuts
        # inside the single oversized slot.
        big = spec.slot("p1")
        for b in layout.boundaries:
            inside_big = big.offset < b < big.offset + big.size
            assert b in set(spec.offsets().tolist()) or inside_big

    def test_single_slot_smaller_than_budget(self):
        spec = self._spec([7])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(100))
        assert layout.num_buckets == 1
        assert layout.sizes().tolist() == [7]
        assert layout.ready_fractions().tolist() == [1.0]

    def test_ready_fractions_reverse_layer_order(self):
        spec = self._spec([40, 40, 40])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(40))
        fractions = layout.ready_fractions()
        # Bucket 0 holds the first layer, whose gradient arrives last.
        assert fractions[0] == pytest.approx(1.0)
        assert np.all(np.diff(fractions) < 0.0)
        assert fractions[-1] == pytest.approx(40 / 120)

    def test_bucket_of_maps_indices_to_buckets(self):
        spec = self._spec([30, 50, 40])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(80))
        assert layout.starts().tolist() == [0, 80]
        ids = layout.bucket_of(np.array([0, 79, 80, 119]))
        assert ids.tolist() == [0, 0, 1, 1]
        # Uniform layouts use plain division.
        uniform = BucketLayout(total_size=120, bucket_size=50)
        assert uniform.bucket_of(np.array([0, 49, 50, 119])).tolist() == [0, 0, 1, 2]

    def test_split_merge_round_trip_layer_aware(self, rng):
        spec = self._spec([30, 50, 300, 10, 60])
        layout = BucketLayout.from_flat_spec(spec, self._element_budget(100))
        flat = rng.normal(size=spec.total_size)
        views = split_into_buckets(flat, layout)
        assert [v.size for v in views] == layout.sizes().tolist()
        merged = merge_sparse_buckets([SparseGradient.from_dense(v) for v in views], layout)
        np.testing.assert_array_equal(merged.to_dense(), flat)

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            BucketLayout(total_size=100, bucket_size=10, boundaries=(5, 20))
        with pytest.raises(ValueError):
            BucketLayout(total_size=100, bucket_size=10, boundaries=(0, 20, 20))
        with pytest.raises(ValueError):
            BucketLayout(total_size=100, bucket_size=10, boundaries=(0, 120))
        with pytest.raises(ValueError):
            BucketLayout(total_size=100, bucket_size=10, boundaries=())
        with pytest.raises(ValueError):
            BucketLayout.from_flat_spec(self._spec([10]), bucket_bytes=1)


class TestSplitMergeRoundTrip:
    @pytest.mark.parametrize("total,bucket", [(1000, 250), (1003, 250), (5, 2), (17, 17), (1, 4)])
    def test_dense_round_trip_is_exact(self, total, bucket, rng):
        flat = rng.normal(size=total)
        layout = BucketLayout(total_size=total, bucket_size=bucket)
        views = split_into_buckets(flat, layout)
        assert len(views) == layout.num_buckets
        # Views are zero-copy slices that tile the vector exactly.
        assert all(v.base is flat or v.base is v for v in views)
        assert np.array_equal(np.concatenate(views), flat)
        merged = merge_sparse_buckets([SparseGradient.from_dense(v) for v in views], layout)
        np.testing.assert_array_equal(merged.to_dense(), flat)

    def test_sparse_round_trip_ragged_last_bucket(self, rng):
        flat = rng.normal(size=1003)
        layout = BucketLayout(total_size=1003, bucket_size=100)
        views = split_into_buckets(flat, layout)
        buckets = []
        for view in views:
            keep = np.abs(view) >= np.quantile(np.abs(view), 0.9)
            buckets.append(SparseGradient.from_mask(view, keep))
        merged = merge_sparse_buckets(buckets, layout)
        # Global indices are unique, sorted, and point back at the original values.
        assert merged.indices.size == np.unique(merged.indices).size
        assert np.all(np.diff(merged.indices) > 0)
        np.testing.assert_array_equal(merged.values, flat[merged.indices])

    def test_merge_validates_bucket_shapes(self, rng):
        flat = rng.normal(size=100)
        layout = BucketLayout(total_size=100, bucket_size=50)
        good = [SparseGradient.from_dense(v) for v in split_into_buckets(flat, layout)]
        with pytest.raises(ValueError):
            merge_sparse_buckets(good[:1], layout)
        bad = [good[0], SparseGradient.from_dense(np.ones(3))]
        with pytest.raises(ValueError):
            merge_sparse_buckets(bad, layout)

    def test_split_validates_length(self, rng):
        layout = BucketLayout(total_size=100, bucket_size=50)
        with pytest.raises(ValueError):
            split_into_buckets(rng.normal(size=99), layout)
