"""Tests for the per-primitive cost model."""

import pytest

from repro.compressors import OpRecord
from repro.perfmodel import DeviceProfile, PRIMITIVES, breakdown, distribute_cost, scale_ops


def _profile(launch=1e-6):
    return DeviceProfile(
        name="test-device",
        per_element={p: 1e-9 * (i + 1) for i, p in enumerate(PRIMITIVES)},
        launch_overhead=launch,
    )


class TestDeviceProfile:
    def test_missing_primitive_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", per_element={"elementwise": 1e-9}, launch_overhead=0.0)

    def test_negative_cost_rejected(self):
        costs = {p: 1e-9 for p in PRIMITIVES}
        costs["sort"] = -1.0
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", per_element=costs, launch_overhead=0.0)

    def test_op_cost_linear_in_size(self):
        profile = _profile(launch=0.0)
        small = profile.op_cost(OpRecord("elementwise", 1000))
        large = profile.op_cost(OpRecord("elementwise", 10_000))
        assert large == pytest.approx(10 * small)

    def test_launch_overhead_added_per_op(self):
        profile = _profile(launch=1e-3)
        assert profile.op_cost(OpRecord("reduce", 0)) == pytest.approx(1e-3)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(KeyError):
            _profile().op_cost(OpRecord("fft", 100))

    def test_trace_cost_sums_ops(self):
        profile = _profile(launch=0.0)
        ops = [OpRecord("elementwise", 100), OpRecord("reduce", 100)]
        assert profile.trace_cost(ops) == pytest.approx(sum(profile.op_cost(o) for o in ops))


class TestBreakdown:
    def test_per_primitive_totals(self):
        profile = _profile(launch=0.0)
        ops = [OpRecord("elementwise", 100), OpRecord("elementwise", 100), OpRecord("reduce", 50)]
        result = breakdown(ops, profile)
        assert result.num_ops == 3
        assert set(result.per_primitive_seconds) == {"elementwise", "reduce"}
        assert result.total_seconds == pytest.approx(sum(result.per_primitive_seconds.values()))


class TestScaleOps:
    def test_sizes_scaled(self):
        ops = [OpRecord("elementwise", 100, 10)]
        scaled = scale_ops(ops, 2.5)
        assert scaled[0].size == 250
        assert scaled[0].k == 25

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_ops([], 0.0)


class TestDistributeCost:
    def test_proportional_split_sums_to_total(self):
        parts = distribute_cost(1.0, [100, 300, 100])
        assert parts.tolist() == pytest.approx([0.2, 0.6, 0.2])
        assert float(parts.sum()) == pytest.approx(1.0)

    def test_zero_weights_fall_back_to_equal_split(self):
        parts = distribute_cost(0.9, [0, 0, 0])
        assert parts.tolist() == pytest.approx([0.3, 0.3, 0.3])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            distribute_cost(-1.0, [1])
        with pytest.raises(ValueError):
            distribute_cost(1.0, [])
        with pytest.raises(ValueError):
            distribute_cost(1.0, [1, -1])
