"""Tests for the calibrated device profiles (the Figure 1 asymmetries)."""

import pytest

from repro.compressors import OpRecord
from repro.perfmodel import CPU_XEON, GPU_V100, get_device


class TestLookup:
    def test_short_and_full_names(self):
        assert get_device("gpu") is GPU_V100
        assert get_device("cpu") is CPU_XEON
        assert get_device("gpu-v100") is GPU_V100

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_device("tpu")


class TestCalibratedAsymmetries:
    """The relative orderings that drive the paper's micro-benchmarks."""

    def test_gpu_topk_much_slower_than_reductions(self):
        d = 10_000_000
        topk = GPU_V100.op_cost(OpRecord("topk_select", d))
        reduce_ = GPU_V100.op_cost(OpRecord("reduce", d))
        assert topk / reduce_ > 50

    def test_cpu_topk_only_moderately_slower_than_reductions(self):
        d = 10_000_000
        topk = CPU_XEON.op_cost(OpRecord("topk_select", d))
        reduce_ = CPU_XEON.op_cost(OpRecord("reduce", d))
        assert 2 < topk / reduce_ < 100

    def test_cpu_random_sampling_more_expensive_than_selection(self):
        d = 10_000_000
        sample = CPU_XEON.op_cost(OpRecord("random_sample", d))
        topk = CPU_XEON.op_cost(OpRecord("topk_select", d))
        assert sample > topk

    def test_gpu_random_sampling_cheap(self):
        d = 10_000_000
        sample = GPU_V100.op_cost(OpRecord("random_sample", d))
        topk = GPU_V100.op_cost(OpRecord("topk_select", d))
        assert sample < topk / 10

    def test_gpu_faster_than_cpu_for_streaming_ops(self):
        d = 10_000_000
        assert GPU_V100.op_cost(OpRecord("elementwise", d)) < CPU_XEON.op_cost(OpRecord("elementwise", d))
