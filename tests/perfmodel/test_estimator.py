"""Tests for compression-latency estimation (Figure 1 / 14-17 machinery)."""

import numpy as np
import pytest

from repro.compressors import create_compressor
from repro.gradients import realistic_gradient
from repro.perfmodel import (
    CPU_XEON,
    GPU_V100,
    estimate_latency,
    estimate_latency_for_dimension,
    latency_breakdown,
    speedup_over_reference,
)


@pytest.fixture(scope="module")
def sample():
    return realistic_gradient(200_000, seed=2)


class TestEstimateLatency:
    def test_latency_positive_and_device_dependent(self, sample):
        result = create_compressor("topk").compress(sample, 0.01)
        gpu = estimate_latency(result, GPU_V100)
        cpu = estimate_latency(result, CPU_XEON)
        assert gpu > 0.0 and cpu > 0.0
        assert cpu > gpu  # streaming + selection is faster on the accelerator

    def test_breakdown_sums_to_total(self, sample):
        result = create_compressor("sidco-e").compress(sample, 0.01)
        total = estimate_latency(result, GPU_V100)
        parts = latency_breakdown(result, GPU_V100)
        assert parts.total_seconds == pytest.approx(total)


class TestDimensionScaling:
    def test_latency_scales_linearly_with_dimension(self, sample):
        compressor = create_compressor("topk")
        small = estimate_latency_for_dimension(compressor, sample, 1_000_000, 0.01, GPU_V100)
        large = estimate_latency_for_dimension(compressor, sample, 10_000_000, 0.01, GPU_V100)
        assert large.seconds / small.seconds == pytest.approx(10.0, rel=0.05)

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            estimate_latency_for_dimension(create_compressor("topk"), np.array([]), 100, 0.1, GPU_V100)

    def test_rejects_bad_dimension(self, sample):
        with pytest.raises(ValueError):
            estimate_latency_for_dimension(create_compressor("topk"), sample, 0, 0.1, GPU_V100)


class TestPaperOrderings:
    """Figure 1's qualitative result must emerge from the cost model."""

    @pytest.fixture(scope="class")
    def latencies(self):
        sample = realistic_gradient(200_000, seed=2)
        dimension = 14_982_987  # VGG16
        out = {}
        for device in (GPU_V100, CPU_XEON):
            per_device = {}
            for name in ("topk", "dgc", "redsync", "gaussiank", "sidco-e"):
                compressor = create_compressor(name)
                for _ in range(10):
                    compressor.compress(sample, 0.001)
                per_device[name] = estimate_latency_for_dimension(
                    compressor, sample, dimension, 0.001, device
                ).seconds
            out[device.name] = per_device
        return out

    def test_gpu_every_compressor_beats_topk(self, latencies):
        speedups = speedup_over_reference(latencies["gpu-v100"])
        for name in ("dgc", "redsync", "gaussiank", "sidco-e"):
            assert speedups[name] > 1.0

    def test_gpu_sidco_fastest(self, latencies):
        speedups = speedup_over_reference(latencies["gpu-v100"])
        assert speedups["sidco-e"] == max(speedups.values())
        assert speedups["sidco-e"] > 10.0

    def test_cpu_dgc_slower_than_topk(self, latencies):
        speedups = speedup_over_reference(latencies["cpu-xeon"])
        assert speedups["dgc"] < 1.0

    def test_cpu_sidco_faster_than_topk(self, latencies):
        speedups = speedup_over_reference(latencies["cpu-xeon"])
        assert 1.0 < speedups["sidco-e"] < 10.0

    def test_reference_missing_rejected(self):
        with pytest.raises(KeyError):
            speedup_over_reference({"dgc": 1.0}, reference="topk")
