"""Tests for the compressibility diagnostics (Definition 1 / Figure 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gradients import realistic_gradient
from repro.stats.compressibility import (
    fit_power_law_decay,
    power_law_envelope,
    sorted_magnitudes,
    sparsification_error,
    sparsification_error_curve,
)


class TestSortedMagnitudes:
    def test_descending_and_absolute(self):
        g = np.array([-3.0, 1.0, 2.0, -0.5])
        mags = sorted_magnitudes(g)
        assert np.allclose(mags, [3.0, 2.0, 1.0, 0.5])


class TestSparsificationError:
    def test_zero_when_keeping_everything(self):
        g = np.array([1.0, -2.0, 3.0])
        assert sparsification_error(g, 3) == 0.0
        assert sparsification_error(g, 10) == 0.0

    def test_full_norm_when_keeping_nothing(self):
        g = np.array([3.0, 4.0])
        assert np.isclose(sparsification_error(g, 0), 5.0)

    def test_matches_manual_topk(self):
        g = np.array([0.1, -5.0, 2.0, 0.3, -1.0])
        # keep top 2 -> drop {0.1, 0.3, 1.0}
        assert np.isclose(sparsification_error(g, 2), np.sqrt(0.01 + 0.09 + 1.0))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            sparsification_error(np.ones(4), -1)

    def test_curve_matches_pointwise(self):
        rng = np.random.default_rng(0)
        g = rng.laplace(size=500)
        ks = [0, 5, 50, 499, 500]
        curve = sparsification_error_curve(g, ks)
        expected = [sparsification_error(g, k) for k in ks]
        assert np.allclose(curve, expected)

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_property_error_decreases_in_k(self, size):
        rng = np.random.default_rng(size)
        g = rng.normal(size=size)
        ks = np.arange(0, size + 1)
        curve = sparsification_error_curve(g, ks)
        assert np.all(np.diff(curve) <= 1e-12)
        assert curve[-1] == 0.0


class TestPowerLawFit:
    def test_detects_compressible_gradient(self):
        report = fit_power_law_decay(realistic_gradient(50_000, seed=0))
        assert report.is_compressible
        assert report.decay_exponent > 0.5
        assert report.dimension == 50_000

    def test_gaussian_vector_is_not_compressible(self):
        rng = np.random.default_rng(1)
        report = fit_power_law_decay(rng.normal(size=50_000))
        # An i.i.d. Gaussian has a very flat sorted-magnitude profile.
        assert report.decay_exponent < 0.5
        assert not report.is_compressible

    def test_exact_power_law_recovered(self):
        j = np.arange(1, 10_001, dtype=np.float64)
        g = 2.0 * j**-0.9
        report = fit_power_law_decay(g, head_fraction=1.0)
        assert np.isclose(report.decay_exponent, 0.9, atol=0.01)
        assert np.isclose(report.decay_constant, 2.0, rtol=0.05)
        assert report.r_squared > 0.999

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law_decay(np.ones(4))

    def test_invalid_head_fraction_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law_decay(np.ones(100), head_fraction=0.0)

    def test_envelope_shape(self):
        env = power_law_envelope(100, 3.0, 0.7)
        assert env.shape == (100,)
        assert env[0] == pytest.approx(3.0)
        assert np.all(np.diff(env) < 0)
