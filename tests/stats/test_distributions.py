"""Tests for the sparsity-inducing distributions, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import (
    DoubleGamma,
    DoubleGeneralizedPareto,
    Exponential,
    Gamma,
    GeneralizedPareto,
    Laplace,
)

ONE_SIDED = [
    Exponential(scale=0.5),
    Gamma(shape=0.7, scale=1.3),
    GeneralizedPareto(shape=0.2, scale=0.8),
    GeneralizedPareto(shape=-0.2, scale=0.8),
]

SYMMETRIC = [
    Laplace(scale=0.5),
    DoubleGamma(shape=0.7, scale=1.3),
    DoubleGeneralizedPareto(shape=0.2, scale=0.8),
]


@pytest.mark.parametrize("dist", ONE_SIDED + SYMMETRIC, ids=lambda d: type(d).__name__ + str(getattr(d, 'shape', '')))
class TestDistributionContracts:
    def test_cdf_monotone_and_bounded(self, dist):
        xs = np.linspace(-5.0, 5.0, 301)
        cdf = np.asarray(dist.cdf(xs))
        assert np.all(cdf >= -1e-12) and np.all(cdf <= 1.0 + 1e-12)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_ppf_inverts_cdf(self, dist):
        for p in (0.05, 0.3, 0.5, 0.9, 0.999):
            x = dist.ppf(p)
            assert np.isclose(float(dist.cdf(x)), p, atol=1e-8)

    def test_pdf_integrates_to_one(self, dist):
        # Integrate over a generous support numerically.
        upper = max(dist.ppf(0.99999), 1.0)
        lower = -upper if dist in SYMMETRIC or isinstance(dist, (Laplace, DoubleGamma, DoubleGeneralizedPareto)) else 0.0
        xs = np.linspace(lower, upper, 200_001)
        pdf = np.asarray(dist.pdf(xs))
        integral = np.trapezoid(pdf, xs)
        assert np.isclose(integral, 1.0, atol=5e-3)

    def test_sampling_matches_cdf(self, dist):
        rng = np.random.default_rng(0)
        sample = dist.sample(100_000, rng)
        for p in (0.25, 0.5, 0.9):
            q = dist.ppf(p)
            assert abs(np.mean(sample <= q) - p) < 0.01

    def test_invalid_probability_rejected(self, dist):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                dist.ppf(p)


class TestExponential:
    def test_fit_recovers_scale(self):
        rng = np.random.default_rng(1)
        sample = rng.exponential(0.37, size=100_000)
        fitted = Exponential.fit(sample)
        assert np.isclose(fitted.scale, 0.37, rtol=0.02)

    def test_threshold_for_ratio_matches_survival(self):
        dist = Exponential(scale=0.2)
        for delta in (0.1, 0.01, 0.001):
            eta = dist.threshold_for_ratio(delta)
            assert np.isclose(1.0 - dist.cdf(eta), delta, rtol=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            Exponential(scale=0.0)
        with pytest.raises(ValueError):
            Exponential.fit(np.zeros(10))


class TestGamma:
    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(2)
        sample = rng.gamma(0.6, 2.5, size=200_000)
        fitted = Gamma.fit(sample)
        assert np.isclose(fitted.shape, 0.6, rtol=0.05)
        assert np.isclose(fitted.mean(), sample.mean(), rtol=0.02)

    def test_exact_mle_option(self):
        rng = np.random.default_rng(3)
        sample = rng.gamma(0.8, 1.0, size=100_000)
        closed = Gamma.fit(sample)
        exact = Gamma.fit(sample, exact_mle=True)
        assert abs(closed.shape - exact.shape) / exact.shape < 0.05

    def test_threshold_exact_vs_approximate(self):
        dist = Gamma(shape=0.9, scale=1.0)
        exact = dist.threshold_for_ratio(0.001, approximate=False)
        approx = dist.threshold_for_ratio(0.001, approximate=True)
        assert approx >= exact
        assert approx / exact < 1.3

    def test_rejects_all_zero_sample(self):
        with pytest.raises(ValueError):
            Gamma.fit(np.zeros(32))


class TestGeneralizedPareto:
    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(4)
        true = GeneralizedPareto(shape=0.25, scale=1.5)
        sample = true.sample(300_000, rng)
        fitted = GeneralizedPareto.fit(sample)
        assert np.isclose(fitted.shape, 0.25, atol=0.03)
        assert np.isclose(fitted.scale, 1.5, rtol=0.05)

    def test_shape_zero_degrades_to_exponential(self):
        gp = GeneralizedPareto(shape=0.0, scale=0.7)
        exp = Exponential(scale=0.7)
        xs = np.linspace(0.0, 5.0, 101)
        assert np.allclose(gp.cdf(xs), exp.cdf(xs), atol=1e-9)

    def test_location_shifts_support(self):
        gp = GeneralizedPareto(shape=0.1, scale=1.0, loc=2.0)
        assert float(gp.cdf(1.9)) == 0.0
        assert float(gp.pdf(1.9)) == 0.0
        assert gp.ppf(0.5) > 2.0

    def test_fit_requires_exceedances(self):
        with pytest.raises(ValueError):
            GeneralizedPareto.fit(np.array([1.0]), loc=0.0)

    def test_threshold_for_ratio_matches_survival(self):
        dist = GeneralizedPareto(shape=0.3, scale=0.5, loc=0.1)
        eta = dist.threshold_for_ratio(0.01)
        assert np.isclose(1.0 - float(dist.cdf(eta)), 0.01, rtol=1e-8)


class TestSymmetricWrappers:
    @pytest.mark.parametrize("dist", SYMMETRIC, ids=lambda d: type(d).__name__)
    def test_symmetry_of_pdf(self, dist):
        xs = np.linspace(0.1, 3.0, 50)
        assert np.allclose(dist.pdf(xs), dist.pdf(-xs))

    @pytest.mark.parametrize("dist", SYMMETRIC, ids=lambda d: type(d).__name__)
    def test_median_is_zero(self, dist):
        assert abs(dist.ppf(0.5)) < 1e-9

    def test_laplace_fit_uses_mean_absolute(self):
        rng = np.random.default_rng(5)
        sample = rng.laplace(0.0, 0.4, size=200_000)
        fitted = Laplace.fit(sample)
        assert np.isclose(fitted.scale, 0.4, rtol=0.02)

    def test_double_gamma_absolute_is_gamma(self):
        d = DoubleGamma(shape=0.5, scale=2.0)
        assert isinstance(d.absolute, Gamma)
        assert d.absolute.shape == 0.5

    def test_double_gp_fit_roundtrip(self):
        rng = np.random.default_rng(6)
        true = DoubleGeneralizedPareto(shape=0.2, scale=1.0)
        fitted = DoubleGeneralizedPareto.fit(true.sample(300_000, rng))
        assert np.isclose(fitted.shape, 0.2, atol=0.04)


class TestPropertyBased:
    @given(scale=st.floats(min_value=1e-4, max_value=1e3), p=st.floats(min_value=1e-6, max_value=1.0 - 1e-6))
    @settings(max_examples=60, deadline=None)
    def test_exponential_ppf_cdf_roundtrip(self, scale, p):
        dist = Exponential(scale=scale)
        assert np.isclose(float(dist.cdf(dist.ppf(p))), p, atol=1e-7)

    @given(
        shape=st.floats(min_value=-0.45, max_value=0.45),
        scale=st.floats(min_value=1e-3, max_value=1e2),
        p=st.floats(min_value=1e-5, max_value=1.0 - 1e-5),
    )
    @settings(max_examples=60, deadline=None)
    def test_gpareto_ppf_cdf_roundtrip(self, shape, scale, p):
        dist = GeneralizedPareto(shape=shape, scale=scale)
        assert np.isclose(float(dist.cdf(dist.ppf(p))), p, atol=1e-6)

    @given(
        scale=st.floats(min_value=1e-3, max_value=10.0),
        delta=st.floats(min_value=1e-5, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_threshold_keeps_delta_mass(self, scale, delta):
        dist = Exponential(scale=scale)
        eta = dist.threshold_for_ratio(delta)
        assert np.isclose(1.0 - float(dist.cdf(eta)), delta, rtol=1e-6)
