"""Tests for goodness-of-fit diagnostics."""

import numpy as np
import pytest

from repro.stats.distributions import Laplace
from repro.stats.goodness import (
    empirical_cdf,
    empirical_pdf,
    evaluate_fit,
    ks_statistic,
    log_likelihood,
    tail_quantile_relative_error,
)


class TestEmpirical:
    def test_empirical_cdf_monotone(self, rng):
        xs, probs = empirical_cdf(rng.normal(size=1000))
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(probs) > 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    def test_empirical_pdf_integrates_to_one(self, rng):
        density = empirical_pdf(rng.laplace(size=5000), bins=100)
        widths = np.diff(density.centers).mean()
        assert np.isclose(np.sum(density.density) * widths, 1.0, atol=0.05)


class TestKS:
    def test_ks_small_for_correct_model(self, rng):
        dist = Laplace(scale=0.5)
        sample = dist.sample(20_000, rng)
        assert ks_statistic(sample, dist.cdf) < 0.02

    def test_ks_large_for_wrong_model(self, rng):
        sample = rng.normal(0.0, 5.0, size=20_000)
        dist = Laplace(scale=0.01)
        assert ks_statistic(sample, dist.cdf) > 0.3


class TestTailError:
    def test_zero_for_matching_distribution(self, rng):
        dist = Laplace(scale=1.0)
        sample = dist.sample(500_000, rng)
        err = tail_quantile_relative_error(sample, dist.ppf, quantile=0.99)
        assert err < 0.05

    def test_detects_tail_mismatch(self, rng):
        sample = rng.normal(size=100_000)
        heavy = Laplace(scale=5.0)
        assert tail_quantile_relative_error(sample, heavy.ppf, quantile=0.999) > 1.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            tail_quantile_relative_error(np.ones(10), lambda p: p, quantile=1.5)


class TestEvaluateFit:
    def test_bundles_all_metrics(self, rng):
        dist = Laplace(scale=0.3)
        sample = dist.sample(20_000, rng)
        quality = evaluate_fit(sample, dist)
        assert quality.ks_statistic < 0.02
        assert quality.tail_quantile_rel_error < 0.2
        assert np.isfinite(quality.log_likelihood)

    def test_better_model_has_higher_likelihood(self, rng):
        true = Laplace(scale=0.3)
        sample = true.sample(10_000, rng)
        good = log_likelihood(sample, true.pdf)
        bad = log_likelihood(sample, Laplace(scale=3.0).pdf)
        assert good > bad
