"""Tests for repro.stats.special."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import special


class TestBasicFunctions:
    def test_log_gamma_matches_factorial(self):
        # Gamma(n) = (n-1)! for integer n.
        assert np.isclose(special.log_gamma(5.0), np.log(24.0))

    def test_digamma_recurrence(self):
        # psi(x+1) = psi(x) + 1/x
        x = 2.7
        assert np.isclose(special.digamma(x + 1.0), special.digamma(x) + 1.0 / x)

    def test_incomplete_gamma_roundtrip(self):
        a, p = 0.8, 0.95
        x = special.inv_reg_lower_incomplete_gamma(a, p)
        assert np.isclose(special.reg_lower_incomplete_gamma(a, x), p)


class TestGammaQuantiles:
    def test_exact_quantile_matches_scipy(self):
        alpha, beta, delta = 0.7, 2.0, 0.01
        eta = special.gamma_quantile_exact(alpha, beta, delta)
        assert np.isclose(eta, sps.gamma.ppf(1.0 - delta, alpha, scale=beta), rtol=1e-10)

    def test_approx_upper_bounds_exact_for_small_alpha(self):
        alpha, beta, delta = 0.6, 1.5, 0.001
        exact = special.gamma_quantile_exact(alpha, beta, delta)
        approx = special.gamma_quantile_upper_tail_approx(alpha, beta, delta)
        assert approx >= exact
        # ... and is reasonably tight at aggressive ratios.
        assert approx <= exact * 1.5

    def test_approx_exact_at_alpha_one(self):
        # alpha=1 gamma is exponential; the approximation is exact there.
        beta, delta = 3.0, 0.01
        exact = special.gamma_quantile_exact(1.0, beta, delta)
        approx = special.gamma_quantile_upper_tail_approx(1.0, beta, delta)
        assert np.isclose(exact, approx, rtol=1e-9)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            special.gamma_quantile_upper_tail_approx(0.5, 1.0, delta)
        with pytest.raises(ValueError):
            special.gamma_quantile_exact(0.5, 1.0, delta)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            special.gamma_quantile_upper_tail_approx(0.5, -1.0, 0.1)
        with pytest.raises(ValueError):
            special.gamma_quantile_exact(-0.5, 1.0, 0.1)


class TestShapeEstimators:
    def test_minka_close_to_mle(self):
        rng = np.random.default_rng(0)
        sample = rng.gamma(0.7, 2.0, size=200_000)
        s = np.log(sample.mean()) - np.log(sample).mean()
        minka = special.minka_gamma_shape(s)
        mle = special.gamma_shape_mle(sample.mean(), np.log(sample).mean())
        assert abs(minka - mle) / mle < 0.02
        assert abs(mle - 0.7) < 0.05

    def test_degenerate_sample_capped(self):
        assert special.minka_gamma_shape(0.0) == pytest.approx(1e6)
        assert special.gamma_shape_mle(1.0, np.log(1.0)) == pytest.approx(1e6)
