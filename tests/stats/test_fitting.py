"""Tests for the closed-form SID fitters and threshold helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import Exponential, Gamma, GeneralizedPareto
from repro.stats.fitting import (
    VALID_SIDS,
    estimate_threshold,
    fit_absolute,
    threshold_from_fit,
    validate_sid,
)


class TestValidateSid:
    @pytest.mark.parametrize("sid", VALID_SIDS)
    def test_accepts_known(self, sid):
        assert validate_sid(sid) == sid

    @pytest.mark.parametrize("sid", ["gaussian", "laplace", "", "EXPONENTIAL"])
    def test_rejects_unknown(self, sid):
        with pytest.raises(ValueError):
            validate_sid(sid)


class TestFitAbsolute:
    def test_exponential_fit_type_and_stats(self, rng):
        sample = rng.exponential(0.1, size=50_000)
        fit = fit_absolute(sample, "exponential")
        assert isinstance(fit.distribution, Exponential)
        assert fit.sample_size == 50_000
        assert np.isclose(fit.sample_mean, sample.mean())
        assert np.isclose(fit.params["scale"], sample.mean())

    def test_gamma_fit_type(self, rng):
        sample = rng.gamma(0.5, 1.0, size=50_000)
        fit = fit_absolute(sample, "gamma")
        assert isinstance(fit.distribution, Gamma)
        assert 0.4 < fit.params["shape"] < 0.6

    def test_gpareto_fit_carries_location(self, rng):
        sample = 2.0 + rng.exponential(1.0, size=50_000)
        fit = fit_absolute(sample, "gpareto", loc=2.0)
        assert isinstance(fit.distribution, GeneralizedPareto)
        assert fit.params["loc"] == 2.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_absolute(np.array([]), "exponential")

    def test_exponential_fit_with_loc_shifts(self, rng):
        base = rng.exponential(0.5, size=100_000)
        shifted = base + 3.0
        fit = fit_absolute(shifted, "exponential", loc=3.0)
        assert np.isclose(fit.params["scale"], 0.5, rtol=0.02)


class TestThresholds:
    def test_threshold_from_exponential_fit_adds_loc(self, rng):
        sample = 1.0 + rng.exponential(0.2, size=100_000)
        fit = fit_absolute(sample, "exponential", loc=1.0)
        eta = threshold_from_fit(fit, 0.01, loc=1.0)
        assert eta > 1.0
        # Empirically ~1% of the sample should exceed the threshold.
        assert abs(np.mean(sample >= eta) - 0.01) < 0.005

    def test_estimate_threshold_keeps_target_fraction(self, rng):
        for sid in VALID_SIDS:
            sample = rng.exponential(1.0, size=200_000)
            eta = estimate_threshold(sample, 0.05, sid)
            kept = np.mean(sample >= eta)
            assert 0.02 < kept < 0.10, f"{sid} kept {kept}"

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.2, 2.0])
    def test_invalid_delta_rejected(self, delta, rng):
        fit = fit_absolute(rng.exponential(1.0, size=100), "exponential")
        with pytest.raises(ValueError):
            threshold_from_fit(fit, delta)

    @given(
        delta=st.floats(min_value=1e-4, max_value=0.3),
        scale=st.floats(min_value=1e-3, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_threshold_positive_and_decreasing_in_delta(self, delta, scale):
        rng = np.random.default_rng(0)
        sample = rng.exponential(scale, size=20_000)
        eta = estimate_threshold(sample, delta, "exponential")
        eta_larger_delta = estimate_threshold(sample, min(delta * 2, 0.5), "exponential")
        assert eta > 0.0
        assert eta >= eta_larger_delta  # keeping more elements means a lower threshold
