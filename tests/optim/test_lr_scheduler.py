"""Tests for learning-rate schedules."""

import pytest

from repro.nn import Linear, Sequential
from repro.optim import SGD, ConstantLR, CosineAnnealing, WarmupStepDecay


def _optimizer(lr=1.0):
    return SGD(Sequential(Linear(2, 2)), lr=lr)


class TestConstantLR:
    def test_never_changes(self):
        sched = ConstantLR(_optimizer(0.3))
        assert all(sched.step() == pytest.approx(0.3) for _ in range(5))


class TestWarmupStepDecay:
    def test_linear_warmup(self):
        sched = WarmupStepDecay(_optimizer(1.0), warmup_iterations=4, decay_every=100)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_step_decay_after_warmup(self):
        sched = WarmupStepDecay(_optimizer(1.0), warmup_iterations=0, decay_every=2, decay_factor=0.1)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01, 0.01])

    def test_applies_to_optimizer(self):
        opt = _optimizer(1.0)
        sched = WarmupStepDecay(opt, warmup_iterations=2, decay_every=10)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    @pytest.mark.parametrize("kwargs", [
        {"warmup_iterations": -1, "decay_every": 1},
        {"warmup_iterations": 0, "decay_every": 0},
        {"warmup_iterations": 0, "decay_every": 1, "decay_factor": 0.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WarmupStepDecay(_optimizer(), **kwargs)


class TestCosineAnnealing:
    def test_starts_at_base_and_ends_at_min(self):
        sched = CosineAnnealing(_optimizer(1.0), total_iterations=10, min_lr=0.1)
        lrs = [sched.step() for _ in range(11)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_midpoint_is_halfway(self):
        sched = CosineAnnealing(_optimizer(1.0), total_iterations=10, min_lr=0.0)
        assert sched.lr_at(5) == pytest.approx(0.5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CosineAnnealing(_optimizer(), total_iterations=0)
        with pytest.raises(ValueError):
            CosineAnnealing(_optimizer(), total_iterations=5, min_lr=-0.1)
