"""Tests for the SGD optimiser."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.optim import SGD


def _model(seed=0):
    return Sequential(Linear(3, 2, rng=np.random.default_rng(seed)))


class TestVanillaSGD:
    def test_step_with_explicit_gradients(self):
        model = _model()
        before = model.state_dict()
        grads = {name: np.ones_like(p.data) for name, p in model.named_parameters().items()}
        SGD(model, lr=0.1).step(grads)
        after = model.state_dict()
        for name in before:
            assert np.allclose(after[name], before[name] - 0.1)

    def test_step_uses_accumulated_grads_by_default(self):
        model = _model()
        for p in model.parameters():
            p.grad += 2.0
        before = model.state_dict()
        SGD(model, lr=0.5).step()
        for name, p in model.named_parameters().items():
            assert np.allclose(p.data, before[name] - 1.0)

    def test_weight_decay_shrinks_parameters(self):
        model = _model()
        for p in model.parameters():
            p.data[...] = 1.0
        grads = {name: np.zeros_like(p.data) for name, p in model.named_parameters().items()}
        SGD(model, lr=0.1, weight_decay=0.5).step(grads)
        assert np.allclose(model.parameters()[0].data, 1.0 - 0.1 * 0.5)

    def test_missing_gradient_rejected(self):
        model = _model()
        with pytest.raises(KeyError):
            SGD(model, lr=0.1).step({})

    def test_shape_mismatch_rejected(self):
        model = _model()
        grads = {name: np.zeros((1,)) for name in model.named_parameters()}
        with pytest.raises(ValueError):
            SGD(model, lr=0.1).step(grads)

    @pytest.mark.parametrize(
        "kwargs",
        [{"lr": 0.0}, {"lr": -1.0}, {"momentum": 1.0}, {"momentum": 0.5, "nesterov": True, "lr": 0.1, "momentum": -0.1}, {"weight_decay": -1.0}],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs):
        kwargs.setdefault("lr", 0.1)
        with pytest.raises(ValueError):
            SGD(_model(), **kwargs)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD(_model(), lr=0.1, momentum=0.0, nesterov=True)


class TestMomentum:
    def test_momentum_accumulates_velocity(self):
        model = _model()
        opt = SGD(model, lr=1.0, momentum=0.9)
        grads = {name: np.ones_like(p.data) for name, p in model.named_parameters().items()}
        before = model.state_dict()
        opt.step(grads)  # velocity = 1, update = 1
        opt.step(grads)  # velocity = 1.9, update = 1.9
        after = model.state_dict()
        for name in before:
            assert np.allclose(after[name], before[name] - 1.0 - 1.9)

    def test_nesterov_applies_lookahead(self):
        plain = _model()
        nesterov = _model()
        grads = {name: np.ones_like(p.data) for name, p in plain.named_parameters().items()}
        SGD(plain, lr=1.0, momentum=0.9).step(grads)
        SGD(nesterov, lr=1.0, momentum=0.9, nesterov=True).step(grads)
        # Nesterov's first step is larger: grad + momentum * velocity = 1.9 vs 1.0.
        assert nesterov.parameters()[0].data.mean() < plain.parameters()[0].data.mean()

    def test_state_dict_exposes_velocity(self):
        model = _model()
        opt = SGD(model, lr=0.1, momentum=0.9)
        grads = {name: np.ones_like(p.data) for name, p in model.named_parameters().items()}
        opt.step(grads)
        state = opt.state_dict()
        assert set(state) == set(model.named_parameters())
