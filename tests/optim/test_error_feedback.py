"""Tests for the error-feedback (EC) memory."""

import numpy as np
import pytest

from repro.compressors import TopK
from repro.optim import ErrorFeedback
from repro.tensor import SparseGradient


class TestErrorFeedback:
    def test_first_correction_is_identity(self):
        ef = ErrorFeedback(5)
        grad = np.arange(5, dtype=np.float64)
        assert np.allclose(ef.correct(grad), grad)

    def test_residual_added_next_iteration(self):
        ef = ErrorFeedback(4)
        grad = np.array([1.0, 2.0, 3.0, 4.0])
        corrected = ef.correct(grad)
        # transmit only the largest element
        sparse = SparseGradient(indices=np.array([3]), values=np.array([4.0]), dense_size=4)
        ef.update(corrected, sparse)
        assert np.allclose(ef.memory, [1.0, 2.0, 3.0, 0.0])
        next_corrected = ef.correct(grad)
        assert np.allclose(next_corrected, [2.0, 4.0, 6.0, 4.0])

    def test_no_residual_when_everything_transmitted(self):
        ef = ErrorFeedback(3)
        grad = np.array([1.0, -2.0, 3.0])
        corrected = ef.correct(grad)
        ef.update(corrected, SparseGradient.from_dense(corrected))
        assert np.allclose(ef.memory, 0.0)

    def test_step_convenience_wrapper(self):
        ef = ErrorFeedback(100)
        rng = np.random.default_rng(0)
        grad = rng.normal(size=100)
        compressor = TopK()
        sparse, corrected = ef.step(grad, lambda g: compressor.compress(g, 0.1))
        assert sparse.nnz == 10
        assert np.allclose(corrected, grad)
        assert np.count_nonzero(ef.memory) == 90

    def test_error_accumulates_until_transmitted(self):
        # A coordinate that is never selected keeps accumulating in memory, so
        # its corrected value grows linearly with iterations.
        ef = ErrorFeedback(2)
        grad = np.array([1.0, 0.1])
        sparse_first_only = SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=2)
        for _ in range(5):
            corrected = ef.correct(grad)
            ef.update(corrected, sparse_first_only)
        assert ef.memory[1] == pytest.approx(0.5)

    def test_dimension_mismatch_rejected(self):
        ef = ErrorFeedback(4)
        with pytest.raises(ValueError):
            ef.correct(np.zeros(5))
        with pytest.raises(ValueError):
            ef.update(np.zeros(4), SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=5))

    def test_reset(self):
        ef = ErrorFeedback(3)
        ef.update(np.ones(3), SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=3))
        ef.reset()
        assert np.allclose(ef.memory, 0.0)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            ErrorFeedback(0)
