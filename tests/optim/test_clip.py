"""Tests for gradient clipping."""

import numpy as np
import pytest

from repro.optim import clip_by_global_norm, clip_flat_by_norm


class TestClipFlat:
    def test_no_clipping_below_threshold(self):
        grad = np.array([0.3, 0.4])
        clipped, norm = clip_flat_by_norm(grad, 1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(clipped, grad)

    def test_clipping_rescales_to_max_norm(self):
        grad = np.array([3.0, 4.0])
        clipped, norm = clip_flat_by_norm(grad, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        assert clipped[1] / clipped[0] == pytest.approx(4.0 / 3.0)

    def test_invalid_max_norm_rejected(self):
        with pytest.raises(ValueError):
            clip_flat_by_norm(np.ones(3), 0.0)


class TestClipGlobal:
    def test_global_norm_across_tensors(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        clipped, norm = clip_by_global_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(sum(float(np.sum(g**2)) for g in clipped.values()))
        assert total == pytest.approx(1.0)

    def test_zero_gradient_untouched(self):
        grads = {"a": np.zeros(3)}
        clipped, norm = clip_by_global_norm(grads, 1.0)
        assert norm == 0.0
        assert np.allclose(clipped["a"], 0.0)

    def test_invalid_max_norm_rejected(self):
        with pytest.raises(ValueError):
            clip_by_global_norm({"a": np.ones(2)}, -1.0)
