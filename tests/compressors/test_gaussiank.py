"""Tests for the GaussianKSGD heuristic threshold compressor."""

import numpy as np
import pytest

from repro.compressors import GaussianKSGD
from repro.gradients import laplace_gradient


class TestGaussianKSGD:
    def test_exact_on_gaussian_gradients(self, rng):
        # When the modelling assumption holds the estimate is good.
        gradient = rng.normal(0.0, 1e-3, size=200_000)
        result = GaussianKSGD(max_adjust_iters=0).compress(gradient, 0.01)
        assert 0.7 <= result.estimation_quality <= 1.3

    def test_biased_on_heavy_tailed_gradients(self):
        # On Laplace (SID) gradients the Gaussian assumption misplaces the
        # threshold noticeably before correction.
        gradient = laplace_gradient(200_000, scale=1e-3, seed=0)
        result = GaussianKSGD(max_adjust_iters=0).compress(gradient, 0.001)
        assert abs(result.estimation_quality - 1.0) > 0.3

    def test_adjustment_iterations_improve_quality(self):
        gradient = laplace_gradient(200_000, scale=1e-3, seed=0)
        raw = GaussianKSGD(max_adjust_iters=0).compress(gradient, 0.001)
        adjusted = GaussianKSGD(max_adjust_iters=8).compress(gradient, 0.001)
        assert abs(adjusted.estimation_quality - 1.0) <= abs(raw.estimation_quality - 1.0)

    def test_constant_vector_degenerate_path(self):
        result = GaussianKSGD().compress(np.full(512, 3.0), 0.1)
        assert result.achieved_k >= 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GaussianKSGD(max_adjust_iters=-1)
        with pytest.raises(ValueError):
            GaussianKSGD(tolerance=0.0)
        with pytest.raises(ValueError):
            GaussianKSGD(step=1.0)

    def test_metadata_reports_iterations(self, small_gradient):
        result = GaussianKSGD(max_adjust_iters=4).compress(small_gradient, 0.01)
        assert 0 <= result.metadata["iterations"] <= 4
