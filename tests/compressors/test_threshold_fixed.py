"""Tests for the adaptive hard-threshold baseline."""

import pytest

from repro.compressors import AdaptiveHardThreshold
from repro.gradients import realistic_gradient


class TestAdaptiveHardThreshold:
    def test_converges_toward_target_over_calls(self):
        compressor = AdaptiveHardThreshold(adjustment_rate=1.0)
        quality = None
        for i in range(25):
            gradient = realistic_gradient(50_000, seed=i)
            quality = compressor.compress(gradient, 0.01).estimation_quality
        assert 0.5 <= quality <= 2.0

    def test_reset_clears_state(self, small_gradient):
        compressor = AdaptiveHardThreshold()
        first = compressor.compress(small_gradient, 0.01)
        for _ in range(5):
            compressor.compress(small_gradient, 0.01)
        compressor.reset()
        again = compressor.compress(small_gradient, 0.01)
        assert again.threshold == pytest.approx(first.threshold)

    def test_threshold_scales_with_gradient_magnitude(self):
        compressor = AdaptiveHardThreshold()
        small = compressor.compress(realistic_gradient(10_000, seed=0) * 0.1, 0.01)
        compressor.reset()
        large = compressor.compress(realistic_gradient(10_000, seed=0) * 10.0, 0.01)
        assert large.threshold > small.threshold * 10

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveHardThreshold(adjustment_rate=0.0)
