"""Tests for the DGC sampling-based compressor."""

import numpy as np
import pytest

from repro.compressors import DGC


class TestDGC:
    def test_estimation_quality_close_to_target(self, medium_gradient):
        for ratio in (0.1, 0.01, 0.001):
            result = DGC(seed=1).compress(medium_gradient, ratio)
            assert 0.5 <= result.estimation_quality <= 1.5, ratio

    def test_trim_caps_selection_at_k(self, medium_gradient):
        # overshoot_trim=1.0 forces a second Top-k whenever the threshold
        # selection exceeds k, so the result is never larger than k.
        result = DGC(sample_ratio=0.01, overshoot_trim=1.0, seed=0).compress(medium_gradient, 0.01)
        k = int(round(0.01 * medium_gradient.size))
        assert result.achieved_k <= k

    def test_sampling_ops_recorded(self, small_gradient):
        result = DGC(seed=0).compress(small_gradient, 0.01)
        sample_ops = [op for op in result.ops if op.op == "random_sample"]
        assert len(sample_ops) == 1
        assert sample_ops[0].size == small_gradient.size
        assert result.metadata["sample_size"] >= int(0.01 * small_gradient.size)

    def test_deterministic_given_seed(self, small_gradient):
        a = DGC(seed=42).compress(small_gradient, 0.01)
        b = DGC(seed=42).compress(small_gradient, 0.01)
        assert np.array_equal(a.sparse.indices, b.sparse.indices)

    def test_reset_restores_rng(self, small_gradient):
        compressor = DGC(seed=7)
        first = compressor.compress(small_gradient, 0.01)
        compressor.compress(small_gradient, 0.01)
        compressor.reset()
        again = compressor.compress(small_gradient, 0.01)
        assert np.array_equal(first.sparse.indices, again.sparse.indices)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DGC(sample_ratio=0.0)
        with pytest.raises(ValueError):
            DGC(sample_ratio=1.5)
        with pytest.raises(ValueError):
            DGC(overshoot_trim=0.5)

    def test_sample_ratio_one_is_exact_topk_threshold(self, small_gradient):
        # Sampling the whole vector makes the first stage an exact Top-k.
        result = DGC(sample_ratio=1.0, seed=0).compress(small_gradient, 0.05)
        k = int(round(0.05 * small_gradient.size))
        assert abs(result.achieved_k - k) <= max(2, 0.01 * k)
