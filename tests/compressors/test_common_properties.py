"""Contract tests every compressor must satisfy, parametrised across the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import available_compressors, create_compressor
from repro.gradients import realistic_gradient

ALL_NAMES = [n for n in available_compressors() if n != "none"]


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCompressorContract:
    def test_values_come_from_original_vector(self, name, small_gradient):
        compressor = create_compressor(name)
        result = compressor.compress(small_gradient, 0.05)
        sparse = result.sparse
        if name == "randomk":
            # Random-k rescales by d/k to stay unbiased.
            scale = small_gradient.size / sparse.nnz
            assert np.allclose(sparse.values, small_gradient[sparse.indices] * scale)
        else:
            assert np.allclose(sparse.values, small_gradient[sparse.indices])

    def test_indices_unique_and_in_range(self, name, small_gradient):
        result = create_compressor(name).compress(small_gradient, 0.05)
        idx = result.sparse.indices
        assert idx.size == np.unique(idx).size
        assert idx.min() >= 0 and idx.max() < small_gradient.size

    def test_dense_size_preserved(self, name, small_gradient):
        result = create_compressor(name).compress(small_gradient, 0.05)
        assert result.sparse.dense_size == small_gradient.size

    def test_ops_trace_nonempty(self, name, small_gradient):
        result = create_compressor(name).compress(small_gradient, 0.05)
        assert len(result.ops) >= 1
        assert all(op.size >= 0 for op in result.ops)

    def test_achieved_ratio_reported(self, name, small_gradient):
        result = create_compressor(name).compress(small_gradient, 0.05)
        assert result.target_ratio == 0.05
        assert 0.0 < result.achieved_ratio <= 1.0
        assert result.achieved_k == result.sparse.nnz

    def test_empty_gradient_rejected(self, name):
        with pytest.raises(ValueError):
            create_compressor(name).compress(np.array([]), 0.1)

    @pytest.mark.parametrize("ratio", [0.0, -0.1, 1.5])
    def test_invalid_ratio_rejected(self, name, ratio, small_gradient):
        with pytest.raises(ValueError):
            create_compressor(name).compress(small_gradient, ratio)

    def test_reset_is_safe(self, name, small_gradient):
        compressor = create_compressor(name)
        compressor.compress(small_gradient, 0.01)
        compressor.reset()
        result = compressor.compress(small_gradient, 0.01)
        assert result.achieved_k >= 1


@pytest.mark.parametrize("name", ["topk", "dgc", "sidco-e", "sidco-gp", "sidco-p"])
class TestSelectionQuality:
    """Magnitude-selecting compressors must keep (approximately) the largest elements."""

    def test_kept_values_are_large(self, name, medium_gradient):
        compressor = create_compressor(name)
        ratio = 0.01
        # Warm adaptive compressors into steady state.
        for _ in range(10):
            result = compressor.compress(medium_gradient, ratio)
        kept_min = np.abs(result.sparse.values).min()
        dropped = np.delete(np.abs(medium_gradient), result.sparse.indices)
        # Threshold selections are exact: no dropped element exceeds the smallest kept one.
        assert dropped.max() <= kept_min + 1e-12

    def test_estimation_quality_reasonable(self, name, medium_gradient):
        compressor = create_compressor(name)
        quality = None
        for _ in range(20):
            quality = compressor.compress(medium_gradient, 0.01).estimation_quality
        assert 0.5 <= quality <= 2.0


def _degenerate_case(name: str) -> np.ndarray:
    base = realistic_gradient(4096, seed=99)
    if name == "tiny":
        return realistic_gradient(48, seed=5)
    if name == "ragged-noncontiguous":
        view = base[::3]
        assert not view.flags["C_CONTIGUOUS"]
        return view[:1333]
    if name == "all-zero":
        return np.zeros(256)
    if name == "single-element":
        return np.array([0.37])
    raise AssertionError(name)


@pytest.mark.parametrize("case", ["tiny", "ragged-noncontiguous", "all-zero", "single-element"])
@pytest.mark.parametrize("name", available_compressors())
class TestRegistryWideEdgeInputs:
    """Every registered compressor must survive awkward-but-legal inputs.

    Structural validity (unique in-range indices, finite values, preserved
    dense size) must hold for every input.  The achieved-ratio bound is only
    asserted for inputs with a usable magnitude distribution: on an all-zero
    vector the threshold-search baselines (RedSync, GaussianKSGD) legitimately
    land on threshold 0 and keep everything, so no ratio bound is meaningful
    there.
    """

    RATIO = 0.02
    #: Threshold estimators overshoot on tiny samples; the bound only needs to
    #: catch "selected essentially everything" failures.
    SLACK = 5.0

    def test_structurally_valid_result(self, name, case):
        arr = _degenerate_case(case)
        result = create_compressor(name).compress(arr, self.RATIO)
        idx = result.sparse.indices
        assert result.sparse.dense_size == arr.size
        assert idx.size == np.unique(idx).size
        if idx.size:
            assert idx.min() >= 0 and idx.max() < arr.size
        assert np.all(np.isfinite(result.sparse.values))
        assert 0.0 <= result.achieved_ratio <= 1.0

    def test_achieved_ratio_bounded(self, name, case):
        if case == "all-zero":
            pytest.skip("no magnitude distribution to select from")
        arr = _degenerate_case(case)
        result = create_compressor(name).compress(arr, self.RATIO)
        target = result.target_ratio  # NoCompression normalises the target to 1.0
        bound = max(1, int(np.ceil(self.SLACK * target * arr.size)))
        assert result.achieved_k <= bound

    def test_repeat_calls_stay_valid(self, name, case):
        # Adaptive compressors update internal state from degenerate calls;
        # the follow-up call must still produce a valid result.
        arr = _degenerate_case(case)
        compressor = create_compressor(name)
        compressor.compress(arr, self.RATIO)
        result = compressor.compress(arr, self.RATIO)
        assert result.sparse.indices.size == np.unique(result.sparse.indices).size
        assert np.all(np.isfinite(result.sparse.values))


class TestPropertyBasedContract:
    @given(
        size=st.integers(min_value=100, max_value=5000),
        ratio=st.sampled_from([0.5, 0.1, 0.01]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_topk_keeps_exactly_k(self, size, ratio, seed):
        gradient = realistic_gradient(size, seed=seed)
        result = create_compressor("topk").compress(gradient, ratio)
        expected_k = max(1, int(round(ratio * size)))
        assert result.achieved_k == expected_k

    @given(
        size=st.integers(min_value=1000, max_value=20000),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_sidco_reconstruction_error_bounded_by_dense_norm(self, size, seed):
        gradient = realistic_gradient(size, seed=seed)
        result = create_compressor("sidco-e").compress(gradient, 0.1)
        error = np.linalg.norm(result.sparse.to_dense() - gradient)
        assert error <= np.linalg.norm(gradient) + 1e-12


def _bucketed_pipeline(name: str, *, vectorized: bool):
    """A multi-bucket vectorized (or scalar-loop) pipeline around ``name``.

    128-byte buckets hold 32 float32 elements, so even the 48-element "tiny"
    case splits into several buckets and the single-element case exercises a
    one-element layout.
    """
    from repro.pipeline import CompressionPipeline

    inner = create_compressor(name)
    return CompressionPipeline(inner, bucket_bytes=128, vectorized=vectorized)


@pytest.mark.parametrize("case", ["tiny", "ragged-noncontiguous", "all-zero", "single-element"])
@pytest.mark.parametrize("name", [n for n in available_compressors() if not n.endswith("-bucketed")])
class TestRegistryWideBucketedEdgeInputs:
    """The batched ``fit_all_buckets`` paths on the same awkward inputs.

    Each case runs through a many-small-buckets pipeline twice — once on the
    vectorized fast path and once on the per-bucket scalar loop — and the two
    must agree on the selection while staying structurally valid.
    """

    RATIO = 0.02

    def test_vectorized_result_structurally_valid(self, name, case):
        arr = _degenerate_case(case)
        result = _bucketed_pipeline(name, vectorized=True).compress(arr, self.RATIO)
        idx = result.sparse.indices
        assert result.sparse.dense_size == arr.size
        assert idx.size == np.unique(idx).size
        if idx.size:
            assert idx.min() >= 0 and idx.max() < arr.size
        assert np.all(np.isfinite(result.sparse.values))
        assert sum(result.metadata["bucket_nnz"]) == result.sparse.nnz

    def test_vectorized_matches_scalar_loop(self, name, case):
        arr = _degenerate_case(case)
        rv = _bucketed_pipeline(name, vectorized=True).compress(arr, self.RATIO)
        rl = _bucketed_pipeline(name, vectorized=False).compress(arr, self.RATIO)
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
        np.testing.assert_array_equal(rv.sparse.values, rl.sparse.values)
        assert rv.metadata["bucket_nnz"] == rl.metadata["bucket_nnz"]

    def test_full_ratio_keeps_everything_selectable(self, name, case):
        if name.startswith("sidco"):
            pytest.skip("SIDCo's SID fit rejects delta=1.0 by contract")
        arr = _degenerate_case(case)
        rv = _bucketed_pipeline(name, vectorized=True).compress(arr, 1.0)
        rl = _bucketed_pipeline(name, vectorized=False).compress(arr, 1.0)
        np.testing.assert_array_equal(rv.sparse.indices, rl.sparse.indices)
        if name in ("none", "topk"):
            # Exact selectors must keep every coordinate at ratio 1.0.
            assert rv.sparse.nnz == arr.size

    def test_empty_gradient_rejected(self, name, case):
        del case  # the empty vector is its own case; parametrisation reused for the id
        with pytest.raises(ValueError):
            _bucketed_pipeline(name, vectorized=True).compress(np.array([]), self.RATIO)
