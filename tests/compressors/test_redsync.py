"""Tests for the RedSync heuristic threshold compressor."""

import numpy as np
import pytest

from repro.compressors import RedSync


class TestRedSync:
    def test_selects_at_least_roughly_k_when_search_succeeds(self, medium_gradient):
        result = RedSync().compress(medium_gradient, 0.01)
        k = int(0.01 * medium_gradient.size)
        # RedSync stops as soon as it selects >= k, so it overshoots but not
        # by more than a shrink step's worth.
        assert result.achieved_k >= k * 0.5

    def test_quality_deviates_from_target(self):
        # The paper's point: RedSync's achieved ratio is unstable — at
        # aggressive ratios on large gradients it lands far from the target.
        from repro.gradients import realistic_gradient

        gradient = realistic_gradient(200_000, seed=1)
        qualities = [RedSync().compress(gradient, r).estimation_quality for r in (0.1, 0.01, 0.001)]
        assert max(abs(q - 1.0) for q in qualities) > 0.5

    def test_iteration_budget_respected(self, medium_gradient):
        result = RedSync(max_search_iters=3).compress(medium_gradient, 0.1)
        assert result.metadata["iterations"] <= 3

    def test_constant_vector_degenerate_path(self):
        g = np.ones(1000)
        result = RedSync().compress(g, 0.1)
        assert result.achieved_k == 1000  # everything sits at the mean

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RedSync(max_search_iters=0)
        with pytest.raises(ValueError):
            RedSync(shrink_factor=1.0)

    def test_ops_include_probe_reductions(self, small_gradient):
        result = RedSync().compress(small_gradient, 0.01)
        reduce_ops = [op for op in result.ops if op.op == "reduce"]
        assert len(reduce_ops) >= 3
