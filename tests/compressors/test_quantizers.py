"""Tests for the quantizer extension baselines (sign-SGD, TernGrad)."""

import numpy as np
import pytest

from repro.compressors.quantizers import FLOAT_BITS, SignSGD, TernGrad


class TestSignSGD:
    def test_preserves_signs_and_scale(self, small_gradient):
        result = SignSGD().quantize(small_gradient)
        nonzero = small_gradient != 0.0
        assert np.allclose(np.sign(result.dequantized[nonzero]), np.sign(small_gradient[nonzero]))
        assert np.allclose(np.abs(result.dequantized), result.metadata["scale"])

    def test_volume_reduction_close_to_32x(self, small_gradient):
        result = SignSGD().quantize(small_gradient)
        assert 30.0 < result.volume_reduction <= FLOAT_BITS
        assert result.payload_bytes() < small_gradient.size * 4 / 30

    def test_l1_scale_minimises_error_among_uniform_scales(self, rng):
        # mean(|g|) is the optimal per-call scale for sign quantization in L2.
        grad = rng.laplace(size=10_000)
        result = SignSGD().quantize(grad)
        best_scale = result.metadata["scale"]
        err_best = np.linalg.norm(grad - best_scale * np.sign(grad))
        for worse in (best_scale * 0.5, best_scale * 2.0):
            assert err_best <= np.linalg.norm(grad - worse * np.sign(grad))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SignSGD().quantize(np.array([]))

    def test_error_feedback_compatible(self, rng):
        # The residual g - Q(g) is well defined and smaller than g on average.
        grad = rng.laplace(size=5000)
        result = SignSGD().quantize(grad)
        residual = grad - result.dequantized
        assert np.linalg.norm(residual) < np.linalg.norm(grad) * 1.5


class TestTernGrad:
    def test_values_are_ternary(self, small_gradient):
        result = TernGrad(seed=0).quantize(small_gradient)
        scale = result.metadata["scale"]
        unique = np.unique(result.dequantized)
        assert set(np.round(unique / scale, 12)).issubset({-1.0, 0.0, 1.0})

    def test_unbiasedness(self, rng):
        grad = rng.normal(size=500)
        total = np.zeros_like(grad)
        trials = 600
        quantizer = TernGrad(seed=1)
        for _ in range(trials):
            total += quantizer.quantize(grad).dequantized
        mean_estimate = total / trials
        correlation = np.corrcoef(mean_estimate, grad)[0, 1]
        assert correlation > 0.95

    def test_zero_gradient_stays_zero(self):
        result = TernGrad().quantize(np.zeros(100))
        assert np.allclose(result.dequantized, 0.0)

    def test_reset_restores_stream(self, small_gradient):
        quantizer = TernGrad(seed=3)
        first = quantizer.quantize(small_gradient).dequantized
        quantizer.quantize(small_gradient)
        quantizer.reset()
        again = quantizer.quantize(small_gradient).dequantized
        assert np.allclose(first, again)

    def test_bits_per_element_below_two(self, small_gradient):
        result = TernGrad().quantize(small_gradient)
        assert result.bits_per_element < 2.0
        assert result.volume_reduction > 16.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TernGrad().quantize(np.array([]))


class TestBucketedQuantization:
    """``quantize_all_buckets`` against per-bucket ``quantize`` concatenation."""

    def _layout(self, size, bucket_bytes=4000):
        from repro.pipeline import BucketLayout

        return BucketLayout.from_bytes(size, bucket_bytes)

    def test_signsgd_matches_per_bucket_concat(self, small_gradient):
        layout = self._layout(small_gradient.size)
        batched = SignSGD().quantize_all_buckets(small_gradient, layout)
        chunks, scales = [], []
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            r = SignSGD().quantize(small_gradient[start:stop])
            chunks.append(r.dequantized)
            scales.append(r.metadata["scale"])
        np.testing.assert_array_equal(batched.dequantized, np.concatenate(chunks))
        np.testing.assert_array_equal(batched.metadata["bucket_scales"], scales)
        # One fp32 scale per bucket instead of one per call.
        expected_bits = 1.0 + FLOAT_BITS * layout.num_buckets / small_gradient.size
        assert batched.bits_per_element == expected_bits

    def test_terngrad_matches_per_bucket_concat(self, small_gradient):
        layout = self._layout(small_gradient.size)
        batched = TernGrad(seed=42).quantize_all_buckets(small_gradient, layout)
        twin = TernGrad(seed=42)
        chunks = []
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            chunks.append(twin.quantize(small_gradient[start:stop]).dequantized)
        # Bit-for-bit: the fused keep-draw replays the per-bucket stream.
        np.testing.assert_array_equal(batched.dequantized, np.concatenate(chunks))

    def test_terngrad_all_zero_bucket_skips_draws(self):
        # An all-zero bucket consumes no uniforms on either path, so the
        # streams stay aligned across it.
        grad = np.concatenate([np.full(500, 0.0), np.linspace(-1.0, 1.0, 500)])
        layout = self._layout(grad.size, bucket_bytes=2000)
        assert layout.num_buckets == 2
        batched = TernGrad(seed=7).quantize_all_buckets(grad, layout)
        twin = TernGrad(seed=7)
        chunks = [twin.quantize(grad[s:e]).dequantized for s, e in (layout.bounds(i) for i in range(2))]
        np.testing.assert_array_equal(batched.dequantized, np.concatenate(chunks))
        assert batched.metadata["bucket_scales"][0] == 0.0

    def test_empty_rejected(self):
        layout = self._layout(100)
        with pytest.raises(ValueError):
            SignSGD().quantize_all_buckets(np.array([]), layout)
        with pytest.raises(ValueError):
            TernGrad().quantize_all_buckets(np.array([]), layout)
