"""Tests for the compressor registry."""

import pytest

from repro.compressors import (
    PAPER_COMPRESSORS,
    SIDCO_VARIANTS,
    Compressor,
    available_compressors,
    create_compressor,
    register_compressor,
)
from repro.core import SIDCo


class TestRegistry:
    def test_all_paper_compressors_available(self):
        names = available_compressors()
        for name in PAPER_COMPRESSORS + SIDCO_VARIANTS + ("none", "randomk", "hard_threshold"):
            assert name in names

    def test_create_returns_compressor_instances(self):
        for name in available_compressors():
            assert isinstance(create_compressor(name), Compressor)

    def test_sidco_variants_map_to_sids(self):
        assert create_compressor("sidco-e").sid == "exponential"
        assert create_compressor("sidco-gp").sid == "gamma"
        assert create_compressor("sidco-p").sid == "gpareto"
        assert isinstance(create_compressor("sidco-e"), SIDCo)

    def test_kwargs_forwarded(self):
        dgc = create_compressor("dgc", sample_ratio=0.05)
        assert dgc.sample_ratio == 0.05

    def test_case_insensitive(self):
        assert create_compressor("TopK").name == "topk"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_compressor("does-not-exist")

    def test_unknown_name_error_lists_every_registered_compressor(self):
        # Mirrors get_network/get_topology: the error is self-documenting and
        # names every registry key, including the sidco-*-bucketed variants.
        with pytest.raises(ValueError, match="unknown compressor") as excinfo:
            create_compressor("does-not-exist")
        message = str(excinfo.value)
        for name in available_compressors():
            assert name in message, name
        for name in PAPER_COMPRESSORS:
            assert name in message, name

    def test_register_custom_compressor(self, small_gradient):
        class Dummy(Compressor):
            name = "dummy"

            def compress(self, gradient, ratio):
                from repro.compressors import TopK

                return TopK().compress(gradient, ratio)

        register_compressor("dummy-test", Dummy, overwrite=True)
        assert "dummy-test" in available_compressors()
        result = create_compressor("dummy-test").compress(small_gradient, 0.1)
        assert result.achieved_k >= 1

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_compressor("topk", lambda: None)
