"""Tests for the exact Top-k and no-compression baselines."""

import numpy as np
import pytest

from repro.compressors import NoCompression, TopK


class TestTopK:
    def test_selects_largest_magnitudes(self):
        g = np.array([0.1, -5.0, 2.0, 0.3, -1.0, 4.0])
        result = TopK().compress(g, 0.5)  # k = 3
        kept = set(result.sparse.indices.tolist())
        assert kept == {1, 5, 2}
        assert result.threshold == pytest.approx(2.0)

    def test_keeps_exact_count(self, medium_gradient):
        for ratio in (0.1, 0.01, 0.001):
            result = TopK().compress(medium_gradient, ratio)
            assert result.achieved_k == max(1, int(round(ratio * medium_gradient.size)))
            assert result.estimation_quality == pytest.approx(1.0, rel=0.01)

    def test_ratio_one_keeps_everything(self, small_gradient):
        result = TopK().compress(small_gradient, 1.0)
        assert result.achieved_k == small_gradient.size

    def test_reconstruction_is_best_k_approximation(self, small_gradient):
        ratio = 0.05
        result = TopK().compress(small_gradient, ratio)
        error = np.linalg.norm(result.sparse.to_dense() - small_gradient)
        # Any other selection of the same size has error >= the Top-k error.
        rng = np.random.default_rng(0)
        random_idx = rng.choice(small_gradient.size, size=result.achieved_k, replace=False)
        random_dense = np.zeros_like(small_gradient)
        random_dense[random_idx] = small_gradient[random_idx]
        assert error <= np.linalg.norm(random_dense - small_gradient) + 1e-12

    def test_ops_contain_topk_select(self, small_gradient):
        result = TopK().compress(small_gradient, 0.01)
        assert any(op.op == "topk_select" and op.size == small_gradient.size for op in result.ops)


class TestNoCompression:
    def test_identity(self, small_gradient):
        result = NoCompression().compress(small_gradient)
        assert result.achieved_k == small_gradient.size
        assert np.allclose(result.sparse.to_dense(), small_gradient)
        assert result.metadata["dense"] is True

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NoCompression().compress(np.array([]))
