"""Tests for the Random-k baseline."""

import numpy as np

from repro.compressors import RandomK


class TestRandomK:
    def test_keeps_exact_count(self, small_gradient):
        result = RandomK(seed=0).compress(small_gradient, 0.05)
        assert result.achieved_k == int(round(0.05 * small_gradient.size))

    def test_rescaling_makes_estimator_unbiased(self, rng):
        gradient = rng.normal(size=2000)
        total = np.zeros_like(gradient)
        trials = 400
        for seed in range(trials):
            total += RandomK(seed=seed).compress(gradient, 0.25).sparse.to_dense()
        mean_estimate = total / trials
        # The mean over many random selections approaches the original vector.
        correlation = np.corrcoef(mean_estimate, gradient)[0, 1]
        assert correlation > 0.95

    def test_without_rescale_values_match_original(self, small_gradient):
        result = RandomK(seed=0, rescale=False).compress(small_gradient, 0.05)
        assert np.allclose(result.sparse.values, small_gradient[result.sparse.indices])

    def test_worse_than_topk_in_approximation_error(self, medium_gradient):
        from repro.compressors import TopK

        ratio = 0.01
        topk_err = np.linalg.norm(TopK().compress(medium_gradient, ratio).sparse.to_dense() - medium_gradient)
        rand = RandomK(seed=0, rescale=False).compress(medium_gradient, ratio)
        rand_err = np.linalg.norm(rand.sparse.to_dense() - medium_gradient)
        assert topk_err < rand_err

    def test_deterministic_given_seed(self, small_gradient):
        a = RandomK(seed=9).compress(small_gradient, 0.02)
        b = RandomK(seed=9).compress(small_gradient, 0.02)
        assert np.array_equal(a.sparse.indices, b.sparse.indices)
