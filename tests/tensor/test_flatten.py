"""Tests for flatten/unflatten of named parameter groups."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.flatten import FlatSpec, flatten, unflatten


def _named_arrays(rng):
    return {
        "layer1.weight": rng.normal(size=(4, 3)),
        "layer1.bias": rng.normal(size=(4,)),
        "layer2.weight": rng.normal(size=(2, 4)),
        "scalar": np.array(rng.normal()),
    }


class TestFlatSpec:
    def test_offsets_and_sizes(self, rng):
        arrays = _named_arrays(rng)
        spec = FlatSpec.from_arrays(arrays)
        assert spec.total_size == 12 + 4 + 8 + 1
        assert spec.slot("layer1.bias").offset == 12
        assert spec.slot("scalar").size == 1

    def test_missing_slot_raises(self, rng):
        spec = FlatSpec.from_arrays(_named_arrays(rng))
        with pytest.raises(KeyError):
            spec.slot("nope")


class TestRoundTrip:
    def test_flatten_unflatten_roundtrip(self, rng):
        arrays = _named_arrays(rng)
        flat, spec = flatten(arrays)
        assert flat.shape == (spec.total_size,)
        restored = unflatten(flat, spec)
        for name, arr in arrays.items():
            assert restored[name].shape == np.asarray(arr).shape
            assert np.allclose(restored[name], arr)

    def test_flatten_with_existing_spec_checks_sizes(self, rng):
        arrays = _named_arrays(rng)
        _, spec = flatten(arrays)
        arrays["layer1.weight"] = np.zeros((5, 3))
        with pytest.raises(ValueError):
            flatten(arrays, spec)

    def test_unflatten_wrong_size_rejected(self, rng):
        _, spec = flatten(_named_arrays(rng))
        with pytest.raises(ValueError):
            unflatten(np.zeros(spec.total_size + 1), spec)

    @given(
        shapes=st.lists(
            st.tuples(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, shapes):
        rng = np.random.default_rng(0)
        arrays = {f"p{i}": rng.normal(size=s) for i, s in enumerate(shapes)}
        flat, spec = flatten(arrays)
        restored = unflatten(flat, spec)
        for name, arr in arrays.items():
            assert np.allclose(restored[name], arr)
