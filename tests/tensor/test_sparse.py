"""Tests for the sparse gradient container and aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.sparse import FLOAT_BYTES, INDEX_BYTES, SparseGradient, aggregate_sparse


class TestConstruction:
    def test_basic_properties(self):
        sp = SparseGradient(indices=np.array([1, 3]), values=np.array([0.5, -2.0]), dense_size=6)
        assert sp.nnz == 2
        assert sp.density == pytest.approx(2 / 6)
        assert sp.payload_bytes() == 2 * (FLOAT_BYTES + INDEX_BYTES)
        assert sp.dense_bytes() == 6 * FLOAT_BYTES
        assert sp.volume_reduction() == pytest.approx(6 * FLOAT_BYTES / (2 * 8))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseGradient(indices=np.array([0]), values=np.array([1.0, 2.0]), dense_size=4)

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            SparseGradient(indices=np.array([5]), values=np.array([1.0]), dense_size=4)
        with pytest.raises(ValueError):
            SparseGradient(indices=np.array([-1]), values=np.array([1.0]), dense_size=4)

    def test_dense_size_too_small_rejected(self):
        with pytest.raises(ValueError):
            SparseGradient(indices=np.arange(5), values=np.ones(5), dense_size=3)


class TestRoundTrip:
    def test_to_dense_from_dense(self):
        dense = np.array([0.0, 1.5, 0.0, -2.0, 0.0])
        sp = SparseGradient.from_dense(dense)
        assert sp.nnz == 2
        assert np.allclose(sp.to_dense(), dense)

    def test_from_mask(self):
        dense = np.array([1.0, -3.0, 0.5, 2.0])
        mask = np.abs(dense) >= 1.0
        sp = SparseGradient.from_mask(dense, mask)
        assert sp.nnz == 3
        assert np.allclose(sp.to_dense(), [1.0, -3.0, 0.0, 2.0])

    def test_from_mask_wrong_length(self):
        with pytest.raises(ValueError):
            SparseGradient.from_mask(np.ones(3), np.array([True, False]))

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, size):
        rng = np.random.default_rng(size)
        dense = rng.normal(size=size) * (rng.uniform(size=size) > 0.7)
        sp = SparseGradient.from_dense(dense)
        assert np.allclose(sp.to_dense(), dense)
        assert sp.nnz == np.count_nonzero(dense)


class TestAggregation:
    def test_sums_overlapping_and_disjoint_indices(self):
        a = SparseGradient(indices=np.array([0, 2]), values=np.array([1.0, 1.0]), dense_size=4)
        b = SparseGradient(indices=np.array([2, 3]), values=np.array([2.0, 5.0]), dense_size=4)
        total = aggregate_sparse([a, b])
        assert np.allclose(total, [1.0, 0.0, 3.0, 5.0])

    def test_duplicate_indices_within_one_gradient(self):
        a = SparseGradient(indices=np.array([1, 1]), values=np.array([1.0, 2.0]), dense_size=3)
        assert np.allclose(aggregate_sparse([a]), [0.0, 3.0, 0.0])

    def test_dimension_mismatch_rejected(self):
        a = SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=3)
        b = SparseGradient(indices=np.array([0]), values=np.array([1.0]), dense_size=4)
        with pytest.raises(ValueError):
            aggregate_sparse([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            aggregate_sparse([])
