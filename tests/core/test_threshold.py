"""Tests for single- and multi-stage threshold estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import (
    estimate_multi_stage,
    estimate_single_stage,
    stage_ratios,
    stage_sid,
)
from repro.gradients import laplace_gradient, realistic_gradient


class TestStageSid:
    def test_exponential_chains_to_exponential(self):
        assert stage_sid("exponential", 0) == "exponential"
        assert stage_sid("exponential", 3) == "exponential"

    def test_gamma_and_gp_chain_to_gp(self):
        assert stage_sid("gamma", 0) == "gamma"
        assert stage_sid("gamma", 1) == "gpareto"
        assert stage_sid("gpareto", 2) == "gpareto"

    def test_unknown_sid_rejected(self):
        with pytest.raises(ValueError):
            stage_sid("gaussian", 0)


class TestStageRatios:
    def test_single_stage_is_target(self):
        assert stage_ratios(0.01, 1) == [0.01]

    def test_moderate_target_collapses_to_single_stage(self):
        assert stage_ratios(0.3, 4) == [0.3]

    def test_product_equals_target(self):
        for m in (2, 3, 5):
            ratios = stage_ratios(0.001, m, 0.25)
            assert np.isclose(np.prod(ratios), 0.001)
            assert ratios[0] == 0.25

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            stage_ratios(delta, 2)

    def test_invalid_stage_count_rejected(self):
        with pytest.raises(ValueError):
            stage_ratios(0.01, 0)


class TestSingleStage:
    def test_exact_on_laplace_gradients(self):
        abs_grad = np.abs(laplace_gradient(500_000, scale=1e-3, seed=0))
        estimate = estimate_single_stage(abs_grad, 0.01, "exponential")
        kept = np.mean(abs_grad >= estimate.threshold)
        assert abs(kept - 0.01) / 0.01 < 0.1
        assert estimate.stages_used == 1

    def test_ops_reflect_sid(self):
        abs_grad = np.abs(laplace_gradient(10_000, seed=1))
        exp_est = estimate_single_stage(abs_grad, 0.01, "exponential")
        gamma_est = estimate_single_stage(abs_grad, 0.01, "gamma")
        assert any(op.op == "reduce" for op in exp_est.ops)
        assert any(op.op == "log_reduce" for op in gamma_est.ops)


class TestMultiStage:
    @pytest.mark.parametrize("sid", ["exponential", "gamma", "gpareto"])
    def test_two_stages_accurate_at_aggressive_ratio(self, sid):
        abs_grad = np.abs(realistic_gradient(300_000, seed=3))
        delta = 0.001
        estimate = estimate_multi_stage(abs_grad, delta, sid, 2)
        kept = np.mean(abs_grad >= estimate.threshold)
        assert abs(kept - delta) / delta < 0.35
        assert estimate.stages_used >= 2

    def test_multi_stage_beats_single_stage_on_mixture(self):
        abs_grad = np.abs(realistic_gradient(300_000, seed=4))
        delta = 0.001
        single = estimate_single_stage(abs_grad, delta, "exponential")
        multi = estimate_multi_stage(abs_grad, delta, "exponential", 2)
        err_single = abs(np.mean(abs_grad >= single.threshold) - delta)
        err_multi = abs(np.mean(abs_grad >= multi.threshold) - delta)
        assert err_multi < err_single

    def test_thresholds_non_decreasing_across_stages(self):
        abs_grad = np.abs(realistic_gradient(100_000, seed=5))
        estimate = estimate_multi_stage(abs_grad, 0.0005, "exponential", 4)
        assert all(b >= a for a, b in zip(estimate.stage_thresholds, estimate.stage_thresholds[1:]))

    def test_excess_stages_collapse_when_not_needed(self):
        abs_grad = np.abs(realistic_gradient(50_000, seed=6))
        estimate = estimate_multi_stage(abs_grad, 0.3, "exponential", 5)
        assert estimate.stages_used == 1  # moderate ratio resolved in one stage

    def test_tiny_vector_falls_back_gracefully(self):
        abs_grad = np.abs(laplace_gradient(8, seed=7))
        estimate = estimate_multi_stage(abs_grad, 0.5, "exponential", 3)
        assert estimate.threshold >= 0.0
        assert estimate.stages_used >= 1

    def test_empty_vector_rejected(self):
        with pytest.raises(ValueError):
            estimate_multi_stage(np.array([]), 0.01, "exponential", 2)

    @pytest.mark.parametrize("bad_delta", [0.0, 1.0, 1.2])
    def test_invalid_delta_rejected(self, bad_delta):
        with pytest.raises(ValueError):
            estimate_multi_stage(np.ones(100), bad_delta, "exponential", 2)

    def test_invalid_stage_count_rejected(self):
        with pytest.raises(ValueError):
            estimate_multi_stage(np.ones(100), 0.1, "exponential", 0)

    @given(
        num_stages=st.integers(min_value=1, max_value=5),
        delta_exp=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_threshold_positive_and_finite(self, num_stages, delta_exp, seed):
        abs_grad = np.abs(realistic_gradient(20_000, seed=seed))
        delta = 10.0**-delta_exp
        estimate = estimate_multi_stage(abs_grad, delta, "exponential", num_stages)
        assert np.isfinite(estimate.threshold)
        assert estimate.threshold > 0.0
