"""Tests for the adaptive stage controller."""

import pytest

from repro.core.stages import StageController, StageControllerConfig


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = StageControllerConfig()
        assert cfg.adaptation_interval == 5
        assert cfg.eps_high == pytest.approx(0.2)
        assert cfg.eps_low == pytest.approx(0.2)
        assert cfg.initial_stages == 1
        assert cfg.error_tolerance == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"adaptation_interval": 0},
            {"eps_high": 1.0},
            {"eps_low": -0.1},
            {"max_stages": 0},
            {"initial_stages": 0},
            {"initial_stages": 20, "max_stages": 5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StageControllerConfig(**kwargs)


class TestAdaptation:
    def test_no_change_within_tolerance(self):
        controller = StageController(StageControllerConfig(adaptation_interval=2))
        for _ in range(10):
            controller.observe(achieved_k=105, target_k=100)
        assert controller.num_stages == 1

    def test_adds_stage_on_over_selection(self):
        controller = StageController(StageControllerConfig(adaptation_interval=3))
        for _ in range(3):
            controller.observe(achieved_k=500, target_k=100)
        assert controller.num_stages == 2

    def test_adds_stage_on_under_selection(self):
        controller = StageController(StageControllerConfig(adaptation_interval=3))
        for _ in range(3):
            controller.observe(achieved_k=10, target_k=100)
        assert controller.num_stages == 2

    def test_paper_pseudocode_direction_variant(self):
        cfg = StageControllerConfig(adaptation_interval=1, initial_stages=3, paper_pseudocode_direction=True)
        controller = StageController(cfg)
        controller.observe(achieved_k=500, target_k=100)  # over-selection -> decrement
        assert controller.num_stages == 2
        controller.observe(achieved_k=10, target_k=100)  # under-selection -> increment
        assert controller.num_stages == 3

    def test_clamped_at_max_stages(self):
        cfg = StageControllerConfig(adaptation_interval=1, max_stages=3)
        controller = StageController(cfg)
        for _ in range(10):
            controller.observe(achieved_k=10_000, target_k=100)
        assert controller.num_stages == 3

    def test_clamped_at_one_stage(self):
        cfg = StageControllerConfig(adaptation_interval=1, initial_stages=1, paper_pseudocode_direction=True)
        controller = StageController(cfg)
        for _ in range(5):
            controller.observe(achieved_k=10_000, target_k=100)
        assert controller.num_stages == 1

    def test_window_averaging(self):
        # A single outlier inside the window does not trigger adaptation if the
        # average stays within tolerance.
        controller = StageController(StageControllerConfig(adaptation_interval=5))
        observations = [100, 100, 100, 100, 150]  # mean = 110 < 1.2 * 100
        for k in observations:
            controller.observe(achieved_k=k, target_k=100)
        assert controller.num_stages == 1

    def test_adaptation_only_every_q_iterations(self):
        controller = StageController(StageControllerConfig(adaptation_interval=5))
        for i in range(4):
            controller.observe(achieved_k=1000, target_k=100)
            assert controller.num_stages == 1  # not yet adapted
        controller.observe(achieved_k=1000, target_k=100)
        assert controller.num_stages == 2

    def test_invalid_target_rejected(self):
        controller = StageController()
        with pytest.raises(ValueError):
            controller.observe(achieved_k=10, target_k=0)

    def test_reset_restores_initial_state(self):
        controller = StageController(StageControllerConfig(adaptation_interval=1))
        for _ in range(4):
            controller.observe(achieved_k=1000, target_k=100)
        assert controller.num_stages > 1
        controller.reset()
        assert controller.num_stages == 1
        assert controller.history == [1]

    def test_history_records_decisions(self):
        controller = StageController(StageControllerConfig(adaptation_interval=1))
        controller.observe(achieved_k=1000, target_k=100)
        controller.observe(achieved_k=100, target_k=100)
        assert controller.history == [1, 2, 2]
