"""Tests for the SIDCo compressor (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import SIDCo, StageControllerConfig
from repro.gradients import evolving_gradients, laplace_gradient, realistic_gradient


class TestConstruction:
    def test_variant_names(self):
        assert SIDCo.from_variant("sidco-e").sid == "exponential"
        assert SIDCo.from_variant("SIDCO-GP").sid == "gamma"
        assert SIDCo.from_variant("sidco-p").sid == "gpareto"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            SIDCo.from_variant("sidco-x")

    def test_invalid_sid_rejected(self):
        with pytest.raises(ValueError):
            SIDCo(sid="gaussian")

    def test_invalid_first_stage_ratio_rejected(self):
        with pytest.raises(ValueError):
            SIDCo(first_stage_ratio=1.5)

    def test_name_reflects_variant(self):
        assert SIDCo("exponential").name == "sidco-e"
        assert SIDCo("gamma").name == "sidco-gp"
        assert SIDCo("gpareto").name == "sidco-p"


class TestCompression:
    def test_exact_on_matching_sid(self):
        # Laplace gradients + exponential SIDCo: even single-stage is accurate.
        gradient = laplace_gradient(400_000, scale=1e-3, seed=0)
        result = SIDCo("exponential").compress(gradient, 0.01)
        assert abs(result.estimation_quality - 1.0) < 0.1

    @pytest.mark.parametrize("variant", ["sidco-e", "sidco-gp", "sidco-p"])
    @pytest.mark.parametrize("ratio", [0.01, 0.001])
    def test_adaptation_converges_on_mixture_gradients(self, variant, ratio):
        compressor = SIDCo.from_variant(variant)
        qualities = []
        for i in range(40):
            gradient = realistic_gradient(150_000, seed=100 + i)
            qualities.append(compressor.compress(gradient, ratio).estimation_quality)
        steady_state = np.mean(qualities[-10:])
        assert 0.7 <= steady_state <= 1.3, f"{variant} at {ratio}: {steady_state}"

    def test_stage_count_grows_for_aggressive_ratio(self):
        compressor = SIDCo("exponential")
        for i in range(15):
            compressor.compress(realistic_gradient(100_000, seed=i), 0.001)
        assert compressor.num_stages >= 2

    def test_stage_count_stays_one_for_moderate_ratio_on_matching_sid(self):
        compressor = SIDCo("exponential")
        for i in range(15):
            compressor.compress(laplace_gradient(100_000, scale=1e-3, seed=i), 0.1)
        assert compressor.num_stages == 1

    def test_metadata_reports_stages(self, medium_gradient):
        result = SIDCo("exponential").compress(medium_gradient, 0.01)
        assert result.metadata["sid"] == "exponential"
        assert result.metadata["stages_used"] >= 1
        assert len(result.metadata["stage_thresholds"]) == result.metadata["stages_used"]

    def test_reset_restores_single_stage(self):
        compressor = SIDCo("exponential")
        for i in range(15):
            compressor.compress(realistic_gradient(100_000, seed=i), 0.001)
        assert compressor.num_stages > 1
        compressor.reset()
        assert compressor.num_stages == 1

    def test_handles_evolving_sparsity(self):
        # Gradients become sparser over "training" (Figure 2); quality should
        # remain near the target once the controller settles.
        compressor = SIDCo("exponential")
        gradients = evolving_gradients(100_000, 50, seed=3)
        qualities = [compressor.compress(g, 0.001).estimation_quality for g in gradients]
        assert 0.6 <= np.mean(qualities[-10:]) <= 1.4

    def test_threshold_selection_is_consistent(self, medium_gradient):
        result = SIDCo("exponential").compress(medium_gradient, 0.01)
        dense = result.sparse.to_dense()
        kept_mask = dense != 0.0
        assert np.all(np.abs(medium_gradient[kept_mask]) >= result.threshold - 1e-15)
        assert np.all(np.abs(medium_gradient[~kept_mask]) < result.threshold + 1e-15)

    def test_custom_controller_config(self):
        cfg = StageControllerConfig(adaptation_interval=2, max_stages=3, initial_stages=2)
        compressor = SIDCo("exponential", controller=cfg)
        assert compressor.num_stages == 2
        compressor.compress(realistic_gradient(50_000, seed=0), 0.001)
        assert compressor.controller.config.max_stages == 3

    def test_ops_are_cheaper_than_topk(self, medium_gradient):
        from repro.compressors import TopK
        from repro.perfmodel import GPU_V100

        sidco_result = SIDCo("exponential").compress(medium_gradient, 0.01)
        topk_result = TopK().compress(medium_gradient, 0.01)
        assert GPU_V100.trace_cost(sidco_result.ops) < GPU_V100.trace_cost(topk_result.ops)
