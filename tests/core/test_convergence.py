"""Tests for the convergence-analysis helpers (Lemma 3)."""

import pytest

from repro.core.convergence import (
    ConvergenceBound,
    contraction_factor,
    error_feedback_residual_bound,
    extra_iterations_fraction,
    iterations_to_sgd_rate,
)


class TestContraction:
    def test_full_compression_gives_zero_error(self):
        assert contraction_factor(1.0) == 0.0

    def test_aggressive_compression_keeps_most_error(self):
        assert contraction_factor(0.001) == pytest.approx(0.999)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            contraction_factor(0.0)
        with pytest.raises(ValueError):
            contraction_factor(1.5)


class TestIterationsToRate:
    def test_matches_paper_scaling(self):
        # I > O(1/delta^2) without estimation error.
        assert iterations_to_sgd_rate(0.01) == pytest.approx(1e4)
        assert iterations_to_sgd_rate(0.001) == pytest.approx(1e6)

    def test_estimation_error_inflates_bound(self):
        exact = iterations_to_sgd_rate(0.01, eps=0.0)
        loose = iterations_to_sgd_rate(0.01, eps=0.2)
        assert loose > exact
        assert loose / exact == pytest.approx(1.0 / 0.8**2)

    def test_eps_twenty_percent_means_about_fifty_percent_more(self):
        # The paper: "we need at most about 50% more iterations than Top-k".
        assert extra_iterations_fraction(0.2) == pytest.approx(0.5625)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            iterations_to_sgd_rate(0.0)
        with pytest.raises(ValueError):
            iterations_to_sgd_rate(0.1, eps=1.0)
        with pytest.raises(ValueError):
            extra_iterations_fraction(-0.1)


class TestBundles:
    def test_convergence_bound_bundle(self):
        bound = ConvergenceBound.for_config(0.01, 0.2)
        assert bound.delta == 0.01
        assert bound.contraction == pytest.approx(0.99)
        assert bound.iterations_to_rate == pytest.approx(1e4 / 0.64)

    def test_residual_bound_decreases_with_iterations(self):
        early = error_feedback_residual_bound(0.01, 10, grad_second_moment=1.0, smoothness=1.0)
        late = error_feedback_residual_bound(0.01, 1000, grad_second_moment=1.0, smoothness=1.0)
        assert late < early

    def test_residual_bound_zero_when_no_compression(self):
        assert error_feedback_residual_bound(1.0, 10, 1.0, 1.0) == 0.0

    def test_residual_bound_invalid_inputs(self):
        with pytest.raises(ValueError):
            error_feedback_residual_bound(0.0, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            error_feedback_residual_bound(0.5, -1, 1.0, 1.0)
