"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data import make_blobs_classification, make_image_classification, make_language_modeling
from repro.gradients import realistic_gradient


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Pin every global RNG before each test.

    Library and test code must take explicit seeds / generators, but anything
    that accidentally falls through to the legacy module-level state
    (``np.random.*`` or the stdlib ``random``) still behaves deterministically
    and identically no matter which subset of tests runs or in which order.
    """
    random.seed(0x5EEDC0)
    np.random.seed(0x5EEDC0)
    yield


@pytest.fixture(autouse=True)
def _reset_bucket_fallback_warnings():
    """Clear the timeline's warn-once guard around every test.

    The guard is module-global process state: without the reset, whichever
    test first triggers (or swallows) a bucket-metadata fallback warning would
    hide the same warning from every later test in the process, making
    warning assertions order-dependent.
    """
    from repro.distributed import reset_bucket_fallback_warnings

    reset_bucket_fallback_warnings()
    yield
    reset_bucket_fallback_warnings()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_gradient() -> np.ndarray:
    """A 20k-element realistic (mixture) gradient used across compressor tests."""
    return realistic_gradient(20_000, seed=7)


@pytest.fixture
def medium_gradient() -> np.ndarray:
    """A 100k-element realistic gradient for estimation-quality tests."""
    return realistic_gradient(100_000, seed=11)


@pytest.fixture
def blobs_dataset():
    return make_blobs_classification(num_examples=128, num_features=16, num_classes=4, seed=3)


@pytest.fixture
def image_dataset():
    return make_image_classification(num_examples=64, num_classes=4, image_size=8, seed=3)


@pytest.fixture
def lm_dataset():
    return make_language_modeling(num_sequences=48, seq_len=8, vocab_size=24, seed=3)


@pytest.fixture
def two_fabric_schedule():
    """Factory for the canonical two-fabric workload, scheduled either way.

    Three hierarchical-style buckets (gather/broadcast on ``intra``, exchange
    on ``inter``) with reverse-order readiness; ``build(cross)`` runs them
    under ``overlap="comm"`` on the serial network lane (``False``) or the
    per-link lanes (``True``).  Shared by the schedule- and reporting-level
    link-utilisation tests.
    """
    from repro.distributed import BucketTask, simulate_iteration

    def build(cross: bool):
        tasks = [
            BucketTask(
                index=i,
                ready_seconds=0.3 * (3 - i) / 3,
                compress_seconds=0.01,
                comm_seconds=0.68,
                comm_phases=(
                    ("gather", 0.1, 0.0, "intra"),
                    ("exchange", 0.5, 0.1, "inter"),
                    ("broadcast", 0.08, 0.6, "intra"),
                ),
            )
            for i in range(3)
        ]
        return simulate_iteration(
            tasks, compute_seconds=0.3, overlap="comm", cross_bucket_pipeline=cross
        )

    return build
