"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data import make_blobs_classification, make_image_classification, make_language_modeling
from repro.gradients import realistic_gradient


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Pin every global RNG before each test.

    Library and test code must take explicit seeds / generators, but anything
    that accidentally falls through to the legacy module-level state
    (``np.random.*`` or the stdlib ``random``) still behaves deterministically
    and identically no matter which subset of tests runs or in which order.
    """
    random.seed(0x5EEDC0)
    np.random.seed(0x5EEDC0)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_gradient() -> np.ndarray:
    """A 20k-element realistic (mixture) gradient used across compressor tests."""
    return realistic_gradient(20_000, seed=7)


@pytest.fixture
def medium_gradient() -> np.ndarray:
    """A 100k-element realistic gradient for estimation-quality tests."""
    return realistic_gradient(100_000, seed=11)


@pytest.fixture
def blobs_dataset():
    return make_blobs_classification(num_examples=128, num_features=16, num_classes=4, seed=3)


@pytest.fixture
def image_dataset():
    return make_image_classification(num_examples=64, num_classes=4, image_size=8, seed=3)


@pytest.fixture
def lm_dataset():
    return make_language_modeling(num_sequences=48, seq_len=8, vocab_size=24, seed=3)
