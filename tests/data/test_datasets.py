"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    make_blobs_classification,
    make_image_classification,
    make_language_modeling,
    make_regression,
    make_sequence_classification,
)


class TestArrayDataset:
    def test_length_and_subset(self, rng):
        ds = ArrayDataset(inputs=rng.normal(size=(10, 3)), targets=rng.integers(0, 2, size=10))
        assert len(ds) == 10
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        assert np.allclose(sub.inputs[1], ds.inputs[5])

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(inputs=rng.normal(size=(5, 2)), targets=np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(inputs=np.zeros((0, 2)), targets=np.zeros(0))


class TestBlobs:
    def test_shapes_and_classes(self):
        ds = make_blobs_classification(num_examples=100, num_features=8, num_classes=5, seed=0)
        assert ds.inputs.shape == (100, 8)
        assert set(np.unique(ds.targets)) <= set(range(5))

    def test_separable_with_low_noise(self):
        ds = make_blobs_classification(num_examples=200, num_classes=3, class_separation=5.0, noise=0.1, seed=1)
        # Nearest-centroid classification should be nearly perfect.
        centroids = np.stack([ds.inputs[ds.targets == c].mean(axis=0) for c in range(3)])
        preds = np.argmin(((ds.inputs[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1)
        assert np.mean(preds == ds.targets) > 0.95

    def test_deterministic_given_seed(self):
        a = make_blobs_classification(seed=7)
        b = make_blobs_classification(seed=7)
        assert np.allclose(a.inputs, b.inputs)

    def test_too_few_examples_rejected(self):
        with pytest.raises(ValueError):
            make_blobs_classification(num_examples=3, num_classes=10)


class TestRegression:
    def test_linear_structure(self):
        ds = make_regression(num_examples=500, num_features=4, noise=0.01, seed=0)
        coef, *_ = np.linalg.lstsq(ds.inputs, ds.targets.ravel(), rcond=None)
        residual = ds.targets.ravel() - ds.inputs @ coef
        assert np.std(residual) < 0.05


class TestImages:
    def test_shape(self):
        ds = make_image_classification(num_examples=32, num_classes=4, channels=3, image_size=8, seed=0)
        assert ds.inputs.shape == (32, 3, 8, 8)

    def test_class_structure_present(self):
        # Same-class images correlate more than different-class images.
        ds = make_image_classification(num_examples=200, num_classes=4, image_size=8, noise=0.2, seed=0)
        flat = ds.inputs.reshape(len(ds), -1)
        same, diff = [], []
        for i in range(0, 100, 2):
            for j in range(i + 1, min(i + 10, 200)):
                corr = np.corrcoef(flat[i], flat[j])[0, 1]
                (same if ds.targets[i] == ds.targets[j] else diff).append(corr)
        assert np.mean(same) > np.mean(diff)

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            make_image_classification(image_size=2)


class TestLanguageModeling:
    def test_targets_are_shifted_inputs(self):
        ds = make_language_modeling(num_sequences=16, seq_len=10, vocab_size=20, seed=0)
        assert ds.inputs.shape == (16, 10)
        assert np.array_equal(ds.inputs[:, 1:], ds.targets[:, :-1])

    def test_tokens_in_vocab(self):
        ds = make_language_modeling(vocab_size=30, seed=1)
        assert ds.inputs.min() >= 0 and ds.inputs.max() < 30

    def test_markov_structure_learnable(self):
        # Bigram statistics should beat the unigram baseline in log-likelihood.
        ds = make_language_modeling(num_sequences=200, seq_len=20, vocab_size=16, seed=2)
        tokens = np.concatenate([ds.inputs.ravel(), ds.targets[:, -1]])
        vocab = 16
        unigram = np.bincount(tokens, minlength=vocab) + 1.0
        unigram /= unigram.sum()
        bigram = np.ones((vocab, vocab))
        for a, b in zip(tokens[:-1], tokens[1:]):
            bigram[a, b] += 1
        bigram /= bigram.sum(axis=1, keepdims=True)
        ll_uni = np.mean(np.log(unigram[tokens[1:]]))
        ll_bi = np.mean(np.log(bigram[tokens[:-1], tokens[1:]]))
        assert ll_bi > ll_uni + 0.1

    def test_subset(self):
        ds = make_language_modeling(num_sequences=10, seed=0)
        sub = ds.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert sub.vocab_size == ds.vocab_size

    @pytest.mark.parametrize("kwargs", [{"vocab_size": 1}, {"seq_len": 1}])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_language_modeling(**kwargs)


class TestSequences:
    def test_shape(self):
        ds = make_sequence_classification(num_examples=24, num_classes=4, seq_len=8, num_features=6, seed=0)
        assert ds.inputs.shape == (24, 8, 6)
        assert ds.targets.shape == (24,)

    def test_temporal_structure(self):
        # Same-class sequences are closer in L2 than different-class ones.
        ds = make_sequence_classification(num_examples=100, num_classes=3, noise=0.1, seed=1)
        flat = ds.inputs.reshape(len(ds), -1)
        same, diff = [], []
        for i in range(50):
            for j in range(i + 1, 60):
                dist = np.linalg.norm(flat[i] - flat[j])
                (same if ds.targets[i] == ds.targets[j] else diff).append(dist)
        assert np.mean(same) < np.mean(diff)

    def test_short_sequences_rejected(self):
        with pytest.raises(ValueError):
            make_sequence_classification(seq_len=2)
