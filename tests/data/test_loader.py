"""Tests for sharding and batching."""

import numpy as np
import pytest

from repro.data import BatchIterator, make_blobs_classification, shard_dataset


class TestSharding:
    def test_shards_are_disjoint_and_cover_dataset(self, blobs_dataset):
        shards = shard_dataset(blobs_dataset, 4, seed=0)
        assert len(shards) == 4
        total = sum(len(s) for s in shards)
        assert total == len(blobs_dataset)
        # Disjointness: inputs across shards are all distinct rows.
        all_rows = np.concatenate([s.inputs for s in shards])
        assert all_rows.shape[0] == len(blobs_dataset)
        assert np.unique(all_rows, axis=0).shape[0] == np.unique(blobs_dataset.inputs, axis=0).shape[0]

    def test_near_equal_sizes(self, blobs_dataset):
        shards = shard_dataset(blobs_dataset, 3, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_works_for_language_modeling(self, lm_dataset):
        shards = shard_dataset(lm_dataset, 4, seed=1)
        assert all(s.vocab_size == lm_dataset.vocab_size for s in shards)

    def test_too_many_shards_rejected(self):
        ds = make_blobs_classification(num_examples=4, num_classes=2)
        with pytest.raises(ValueError):
            shard_dataset(ds, 10)

    def test_invalid_shard_count_rejected(self, blobs_dataset):
        with pytest.raises(ValueError):
            shard_dataset(blobs_dataset, 0)


class TestBatchIterator:
    def test_batch_shapes(self, blobs_dataset):
        it = BatchIterator(blobs_dataset, batch_size=16, seed=0)
        x, y = it.next_batch()
        assert x.shape[0] == 16
        assert y.shape[0] == 16

    def test_epoch_covers_all_examples(self):
        ds = make_blobs_classification(num_examples=60, num_features=2, num_classes=2, seed=0)
        it = BatchIterator(ds, batch_size=10, seed=0)
        seen = []
        for _ in range(it.batches_per_epoch):
            x, _ = it.next_batch()
            seen.append(x)
        seen = np.concatenate(seen)
        assert seen.shape[0] == 60
        assert np.unique(seen, axis=0).shape[0] == np.unique(ds.inputs, axis=0).shape[0]

    def test_endless_iteration_and_epoch_counter(self, blobs_dataset):
        it = BatchIterator(blobs_dataset, batch_size=50, seed=0)
        for _ in range(10):
            it.next_batch()
        assert it.epochs_completed >= 2

    def test_batch_larger_than_dataset_is_clamped(self, blobs_dataset):
        it = BatchIterator(blobs_dataset, batch_size=10_000, seed=0)
        x, _ = it.next_batch()
        assert x.shape[0] == len(blobs_dataset)

    def test_different_seeds_give_different_orders(self, blobs_dataset):
        a = BatchIterator(blobs_dataset, batch_size=32, seed=0).next_batch()[0]
        b = BatchIterator(blobs_dataset, batch_size=32, seed=1).next_batch()[0]
        assert not np.allclose(a, b)

    def test_invalid_batch_size_rejected(self, blobs_dataset):
        with pytest.raises(ValueError):
            BatchIterator(blobs_dataset, batch_size=0)

    def test_iterator_protocol(self, blobs_dataset):
        it = BatchIterator(blobs_dataset, batch_size=8, seed=0)
        x, y = next(iter(it))
        assert x.shape[0] == 8
