"""Smoke-execute every example script at reduced sizes.

The examples are the repo's front door: each ``main()`` takes size/iteration
keyword arguments (defaulting to the full demonstration scale) precisely so
this suite can *run* them — not just import them — in a few seconds.  A smoke
run must produce its headline table on stdout and raise nothing.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: (module name, small-size kwargs, text expected in the printed report).
EXAMPLES = [
    ("quickstart", {"dimension": 20_000, "settle_steps": 2}, "Compression at a glance"),
    ("overlap_timeline", {"dimension": 200_000, "sample": 50_000}, "one iteration"),
    (
        "cnn_distributed_training",
        {"iterations": 4, "num_workers": 2},
        "error feedback ablation",
    ),
    ("gradient_analysis", {"capture_at": (2, 4), "num_workers": 2}, "compressibility"),
    (
        "language_model_compression",
        {"iterations": 4, "num_workers": 2},
        "Loss vs simulated wall-clock time",
    ),
    ("microbenchmark_report", {"models": ("vgg16",), "sample_size": 20_000}, "vgg16"),
    (
        "whatif_sweep",
        {"dimension": 200_000, "proxy_elements": 2048},
        "autotune best config",
    ),
]


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {name for name, _, _ in EXAMPLES}


@pytest.mark.parametrize(
    "name,kwargs,expected", EXAMPLES, ids=[name for name, _, _ in EXAMPLES]
)
def test_example_runs_at_small_size(name, kwargs, expected, capsys):
    module = _load_example(name)
    try:
        module.main(**kwargs)
    finally:
        sys.modules.pop(f"examples.{name}", None)
    out = capsys.readouterr().out
    assert expected in out
    assert len(out.splitlines()) >= 3
