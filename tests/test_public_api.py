"""Tests for the top-level public API surface."""

import repro
from repro import (
    PAPER_COMPRESSORS,
    SIDCO_VARIANTS,
    SIDCo,
    SparseGradient,
    available_compressors,
    create_compressor,
)


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_lineup_exposed(self):
        assert "sidco-e" in PAPER_COMPRESSORS
        assert set(SIDCO_VARIANTS) <= set(available_compressors())

    def test_quickstart_flow(self, small_gradient):
        # The README's three-line quickstart must keep working.
        compressor = create_compressor("sidco-e")
        result = compressor.compress(small_gradient, 0.01)
        assert isinstance(compressor, SIDCo)
        assert isinstance(result.sparse, SparseGradient)
        assert 0.0 < result.achieved_ratio < 0.2
