"""Tests for the top-level public API surface."""

import repro
from repro import (
    PAPER_COMPRESSORS,
    SIDCO_VARIANTS,
    SIDCo,
    SparseGradient,
    available_compressors,
    create_compressor,
)


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolvable(self):
        import repro.distributed
        import repro.harness

        for module in (repro.distributed, repro.harness):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_fault_and_knob_surfaces_exposed(self):
        from repro.distributed import (
            SYNC_POLICIES,
            ClusterProfile,
            SimulationKnobs,
            StragglerInjector,
            WorkerChurn,
            get_sync_policy,
            knob_defaults,
        )
        from repro.harness import (
            SWEEP_KNOBS,
            WorkerCountConstraint,
            format_straggler_summary,
        )

        assert SYNC_POLICIES == ("full-sync", "backup-workers", "time-window")
        # The sweep grid's tail is exactly the SimulationKnobs field order.
        assert SWEEP_KNOBS[2:] == tuple(knob_defaults())
        assert SimulationKnobs().faulted is False
        assert ClusterProfile.homogeneous(4).homogeneous_nominal
        assert get_sync_policy("full-sync").name == "full-sync"
        assert WorkerCountConstraint().admits(
            {"backup_workers": 0, "topology": "ethernet-4x8"}
        )
        assert callable(StragglerInjector(seed=0).apply)
        assert callable(WorkerChurn(seed=0).apply)
        assert format_straggler_summary([]).startswith("straggler overhead")

    def test_paper_lineup_exposed(self):
        assert "sidco-e" in PAPER_COMPRESSORS
        assert set(SIDCO_VARIANTS) <= set(available_compressors())

    def test_quickstart_flow(self, small_gradient):
        # The README's three-line quickstart must keep working.
        compressor = create_compressor("sidco-e")
        result = compressor.compress(small_gradient, 0.01)
        assert isinstance(compressor, SIDCo)
        assert isinstance(result.sparse, SparseGradient)
        assert 0.0 < result.achieved_ratio < 0.2
