"""Cross-module integration tests: the paper's headline claims at proxy scale."""

import numpy as np
import pytest

from repro.data import make_language_modeling
from repro.distributed import DistributedTrainer, TrainerConfig
from repro.harness import compare_compressors, get_benchmark
from repro.nn import build_model


class TestHeadlineClaims:
    """The qualitative results the paper leads with, at quick-test scale."""

    @pytest.fixture(scope="class")
    def ptb_comparison(self):
        return compare_compressors(
            "lstm-ptb",
            ("topk", "dgc", "sidco-e"),
            (0.001,),
            num_workers=4,
            iterations=50,
            seed=0,
        )

    def test_compression_speeds_up_communication_bound_training(self, ptb_comparison):
        sidco = next(r for r in ptb_comparison.rows if r.compressor == "sidco-e")
        assert sidco.speedup_vs_baseline > 3.0

    def test_sidco_at_least_as_fast_as_dgc_and_topk(self, ptb_comparison):
        by_name = {r.compressor: r for r in ptb_comparison.rows}
        assert by_name["sidco-e"].throughput_vs_baseline >= by_name["dgc"].throughput_vs_baseline * 0.95
        assert by_name["sidco-e"].throughput_vs_baseline > by_name["topk"].throughput_vs_baseline

    def test_model_quality_preserved_under_compression(self, ptb_comparison):
        # Compressed training must still converge: final loss within a modest
        # factor of the baseline's final loss.
        baseline_loss = ptb_comparison.baseline.metrics.final_loss
        for row in ptb_comparison.rows:
            assert row.final_loss < baseline_loss * 1.5

    def test_sidco_estimation_quality_converges_to_target(self):
        config = get_benchmark("lstm-ptb")
        dataset = config.build_proxy_dataset(seed=1)
        model = config.build_proxy_model(seed=2)
        trainer_cfg = TrainerConfig(
            num_workers=2,
            batch_size=8,
            iterations=60,
            ratio=0.001,
            lr=config.proxy_lr,
            momentum=config.proxy_momentum,
            nesterov=config.proxy_nesterov,
            clip_norm=config.proxy_clip_norm,
            seed=1,
            compute_seconds=0.01,
        )
        result = DistributedTrainer(model, dataset, "sidco-e", trainer_cfg).run()
        late_ratios = result.metrics.achieved_ratios[-15:]
        assert 0.5 <= np.mean(late_ratios) / 0.001 <= 2.0


class TestWorkerConsistency:
    def test_all_workers_apply_identical_updates(self):
        # After training, a fresh forward pass gives identical results no matter
        # which worker's shard the inputs come from (single shared replica).
        dataset = make_language_modeling(num_sequences=64, seq_len=8, vocab_size=16, seed=0)
        model = build_model("lstm_lm", vocab_size=16, embedding_dim=8, hidden_size=12, num_layers=1, seed=0)
        config = TrainerConfig(num_workers=4, batch_size=4, iterations=10, ratio=0.01, lr=0.1, seed=0)
        trainer = DistributedTrainer(model, dataset, "sidco-e", config)
        trainer.run()
        # Workers share the model object; their flat specs agree.
        specs = {tuple(sorted(w.flat_spec.slot(s.name).offset for s in w.flat_spec.slots)) for w in trainer.workers}
        assert len(specs) == 1

    def test_per_worker_compressor_state_is_independent(self):
        dataset = make_language_modeling(num_sequences=64, seq_len=8, vocab_size=16, seed=0)
        model = build_model("lstm_lm", vocab_size=16, embedding_dim=8, hidden_size=12, num_layers=1, seed=0)
        config = TrainerConfig(num_workers=3, batch_size=4, iterations=15, ratio=0.001, lr=0.1, seed=0)
        trainer = DistributedTrainer(model, dataset, "sidco-e", config)
        trainer.run()
        compressors = [w.compressor for w in trainer.workers]
        assert len({id(c) for c in compressors}) == 3
        assert all(c.num_stages >= 1 for c in compressors)
