"""Tests for the gradient capture hook."""

import numpy as np
import pytest

from repro.gradients import GradientCapture


class TestGradientCapture:
    def test_records_only_requested_iterations(self, rng):
        capture = GradientCapture(iterations={2, 5})
        for i in range(8):
            capture.record(i, rng.normal(size=100))
        assert capture.captured_iterations == [2, 5]

    def test_records_everything_when_unrestricted(self, rng):
        capture = GradientCapture(iterations=None)
        for i in range(3):
            capture.record(i, rng.normal(size=10))
        assert capture.captured_iterations == [0, 1, 2]

    def test_normalization(self, rng):
        capture = GradientCapture(iterations={0}, normalize=True)
        capture.record(0, rng.normal(size=50) * 100.0)
        assert np.isclose(np.linalg.norm(capture.get(0)), 1.0)

    def test_no_normalization_option(self):
        capture = GradientCapture(iterations={0}, normalize=False)
        grad = np.array([3.0, 4.0])
        capture.record(0, grad)
        assert np.allclose(capture.get(0), grad)

    def test_max_elements_subsampling_is_consistent(self, rng):
        capture = GradientCapture(iterations={0, 1}, max_elements=20, normalize=False, seed=3)
        base = rng.normal(size=100)
        capture.record(0, base)
        capture.record(1, base)
        assert capture.get(0).size == 20
        # The same coordinate subset is reused across snapshots.
        assert np.allclose(capture.get(0), capture.get(1))

    def test_missing_snapshot_raises(self):
        with pytest.raises(KeyError):
            GradientCapture().get(3)

    def test_wants_helper(self):
        capture = GradientCapture(iterations={1})
        assert capture.wants(1) and not capture.wants(2)
