"""Tests for synthetic gradient generators."""

import numpy as np
import pytest

from repro.gradients import (
    MODEL_DIMENSIONS,
    double_gamma_gradient,
    double_gpareto_gradient,
    evolving_gradients,
    laplace_gradient,
    model_sized_gradient,
    realistic_gradient,
    sid_gradient,
)
from repro.stats import Laplace, fit_power_law_decay


class TestSIDGenerators:
    def test_laplace_statistics(self):
        g = laplace_gradient(200_000, scale=1e-3, seed=0)
        assert abs(np.mean(g)) < 1e-4
        assert np.isclose(np.mean(np.abs(g)), 1e-3, rtol=0.05)
        fitted = Laplace.fit(g)
        assert np.isclose(fitted.scale, 1e-3, rtol=0.05)

    def test_gamma_gradient_more_peaked_than_laplace(self):
        gamma = double_gamma_gradient(200_000, shape=0.3, scale=1e-3, seed=0)
        lap = laplace_gradient(200_000, scale=np.mean(np.abs(gamma)), seed=0)
        # Same mean magnitude, but the gamma version has more mass near zero.
        threshold = np.mean(np.abs(gamma)) * 0.1
        assert np.mean(np.abs(gamma) < threshold) > np.mean(np.abs(lap) < threshold)

    def test_gpareto_gradient_heavy_tail(self):
        g = double_gpareto_gradient(200_000, shape=0.3, scale=1e-3, seed=0)
        ratio = np.quantile(np.abs(g), 0.999) / np.quantile(np.abs(g), 0.5)
        lap = laplace_gradient(200_000, scale=1e-3, seed=0)
        lap_ratio = np.quantile(np.abs(lap), 0.999) / np.quantile(np.abs(lap), 0.5)
        assert ratio > lap_ratio

    def test_dispatch_by_name(self):
        for sid in ("exponential", "gamma", "gpareto"):
            g = sid_gradient(sid, 1000, seed=0)
            assert g.shape == (1000,)
        with pytest.raises(ValueError):
            sid_gradient("gaussian", 100)

    def test_deterministic_given_seed(self):
        assert np.allclose(laplace_gradient(100, seed=5), laplace_gradient(100, seed=5))


class TestRealisticGradient:
    def test_compressible(self):
        report = fit_power_law_decay(realistic_gradient(100_000, seed=0))
        assert report.is_compressible

    def test_sparsity_parameter_controls_bulk(self):
        sparse = realistic_gradient(100_000, sparsity=0.99, seed=0)
        dense = realistic_gradient(100_000, sparsity=0.5, seed=0)
        cutoff = 5e-4
        assert np.mean(np.abs(sparse) < cutoff) > np.mean(np.abs(dense) < cutoff)

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValueError):
            realistic_gradient(100, sparsity=1.0)


class TestModelSized:
    def test_known_dimensions(self):
        assert MODEL_DIMENSIONS["vgg16"] == 14_982_987
        assert MODEL_DIMENSIONS["lstm-ptb"] == 66_034_000

    def test_cap_respected(self):
        g = model_sized_gradient("vgg16", max_elements=10_000, seed=0)
        assert g.size == 10_000

    def test_small_model_uncapped(self):
        g = model_sized_gradient("resnet20", seed=0)
        assert g.size == MODEL_DIMENSIONS["resnet20"]

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            model_sized_gradient("bert")


class TestEvolvingGradients:
    def test_sparsity_increases_over_iterations(self):
        grads = evolving_gradients(50_000, 20, seed=0)
        assert len(grads) == 20
        cutoff = 1e-4
        early = np.mean(np.abs(grads[0]) < cutoff)
        late = np.mean(np.abs(grads[-1]) < cutoff)
        assert late > early

    def test_scale_decreases_over_iterations(self):
        grads = evolving_gradients(50_000, 20, seed=1)
        assert np.mean(np.abs(grads[-1])) < np.mean(np.abs(grads[0]))

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            evolving_gradients(100, 0)
