"""Property suite for the declarative sweep engine.

Three contracts, hypothesis-driven:

* **expansion** — ``SweepSpec.expand()`` is exactly the constrained
  cross-product of the axes (workloads slowest, knobs in canonical order),
  with no duplicates, defaults filled for unswept knobs, and every
  constraint honoured;
* **memoization transparency** — a memoized run is bit-for-bit equal to a
  memoization-off run of the same spec;
* **process-pool transparency** — ``backend="process"`` results equal
  serial results on fixed seeds.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import (
    DEFAULT_CONSTRAINTS,
    DEFAULT_KNOBS,
    SWEEP_KNOBS,
    KnobConstraint,
    SweepCache,
    SweepPoint,
    SweepResult,
    SweepSpec,
    WorkloadSpec,
    evaluate_point,
    run_sweep,
)

#: Small but structurally diverse axis pools the property tests draw from.
AXIS_POOLS = {
    "compressor": ("topk", "dgc", "randomk"),
    "ratio": (0.1, 0.05, 0.01),
    "bucket_bytes": (2**20, 4 * 2**20, None),
    "overlap": ("none", "comm", "comm+compress"),
    "topology": ("ethernet-4x8", "cluster1", "torus-2d"),
    "allreduce_algorithm": ("ring-allreduce", "hierarchical"),
    "allgather_algorithm": ("flat-allgather", "hierarchical"),
    "pipeline_chunks": (1, 4),
    "dedup_assumption": (None, "uniform", "identical"),
    "cross_bucket_pipeline": (False, True),
    "scheduler_backend": ("loop", "vectorized"),
}


def _workload(name="wl", seed=0):
    return WorkloadSpec(
        name=name, dimension=500_000, comm_overhead=0.6, proxy_elements=2048, seed=seed
    )


@st.composite
def axes_strategy(draw):
    """A random subset of knobs, each with a random non-empty subset of values."""
    knobs = draw(
        st.lists(st.sampled_from(sorted(AXIS_POOLS)), min_size=1, max_size=4, unique=True)
    )
    axes = {}
    for knob in knobs:
        pool = AXIS_POOLS[knob]
        count = draw(st.integers(min_value=1, max_value=len(pool)))
        axes[knob] = pool[:count]
    return axes


class TestExpansion:
    @settings(max_examples=150, deadline=None)
    @given(axes=axes_strategy())
    def test_expand_is_exactly_the_constrained_cross_product(self, axes):
        spec = SweepSpec(workloads=(_workload(),), axes=axes)
        points = spec.expand()
        # Reference: brute-force product in the same canonical order.
        grid = [axes.get(knob, (DEFAULT_KNOBS[knob],)) for knob in SWEEP_KNOBS]
        expected = []
        for combo in itertools.product(*grid):
            config = dict(zip(SWEEP_KNOBS, combo))
            if all(c.admits(config) for c in DEFAULT_CONSTRAINTS):
                expected.append(SweepPoint(workload="wl", knobs=tuple(zip(SWEEP_KNOBS, combo))))
        assert points == expected

    @settings(max_examples=150, deadline=None)
    @given(axes=axes_strategy())
    def test_no_duplicates_even_with_repeated_axis_values(self, axes):
        knob = next(iter(axes))
        doubled = {**axes, knob: axes[knob] + axes[knob]}
        spec = SweepSpec(workloads=(_workload(),), axes=doubled)
        points = spec.expand()
        assert len(points) == len(set(points))
        assert points == SweepSpec(workloads=(_workload(),), axes=axes).expand()

    def test_every_point_carries_every_knob_with_defaults_filled(self):
        spec = SweepSpec(workloads=(_workload(),), axes={"ratio": (0.1, 0.01)})
        for point in spec.expand():
            config = point.config
            assert set(config) == set(SWEEP_KNOBS)
            for knob in SWEEP_KNOBS:
                if knob != "ratio":
                    assert config[knob] == DEFAULT_KNOBS[knob]

    def test_constraints_drop_dedup_without_hierarchical(self):
        spec = SweepSpec(
            workloads=(_workload(),),
            axes={
                "dedup_assumption": (None, "uniform"),
                "allgather_algorithm": ("flat-allgather", "hierarchical"),
            },
        )
        configs = [p.config for p in spec.expand()]
        assert len(configs) == 3  # 2x2 minus (uniform, flat)
        for config in configs:
            if config["dedup_assumption"] is not None:
                assert config["allgather_algorithm"] == "hierarchical"

    def test_workloads_vary_slowest_and_order_is_deterministic(self):
        spec = SweepSpec(
            workloads=(_workload("a"), _workload("b", seed=1)),
            axes={"ratio": (0.1, 0.01)},
        )
        assert [(p.workload, p.config["ratio"]) for p in spec.expand()] == [
            ("a", 0.1),
            ("a", 0.01),
            ("b", 0.1),
            ("b", 0.01),
        ]

    def test_custom_callable_constraint(self):
        spec = SweepSpec(
            workloads=(_workload(),),
            axes={"ratio": (0.1, 0.01)},
            constraints=(lambda config: config["ratio"] < 0.05,),
        )
        assert [p.config["ratio"] for p in spec.expand()] == [0.01]


class TestSpecValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axes"):
            SweepSpec(workloads=(_workload(),), axes={"compression": ("topk",)})

    def test_invalid_axis_value_rejected_at_construction(self):
        for axes in (
            {"compressor": ("brotli",)},
            {"ratio": (1.5,)},
            {"overlap": ("full",)},
            {"topology": ("my-cluster",)},
            {"bucket_bytes": (-1,)},
            {"dedup_assumption": ("sometimes",)},
        ):
            with pytest.raises(ValueError):
                SweepSpec(workloads=(_workload(),), axes=axes)

    def test_duplicate_workload_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SweepSpec(workloads=(_workload(), _workload(seed=1)), axes={"ratio": (0.1,)})

    def test_workload_validation(self):
        with pytest.raises(ValueError, match="comm_overhead"):
            WorkloadSpec(name="w", dimension=100_000, comm_overhead=1.5)
        with pytest.raises(ValueError, match="dimension"):
            WorkloadSpec(name="w", dimension=8, comm_overhead=0.5, proxy_elements=4096)

    def test_constraint_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown knob"):
            KnobConstraint(
                name="bad", knob="sparsity", inactive=(None,), target="ratio", allowed=(0.1,)
            )

    def test_unknown_backend_rejected(self):
        spec = SweepSpec(workloads=(_workload(),), axes={"ratio": (0.1,)})
        with pytest.raises(ValueError, match="unknown sweep backend"):
            run_sweep(spec, backend="threads")


EQUIVALENCE_SPEC_AXES = {
    "compressor": ("topk", "dgc"),
    "ratio": (0.1, 0.01),
    "overlap": ("none", "comm+compress"),
    "allgather_algorithm": ("flat-allgather", "hierarchical"),
    "dedup_assumption": (None, "uniform"),
    "cross_bucket_pipeline": (False, True),
}


class TestExecutionEquivalence:
    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec(workloads=(_workload(),), axes=EQUIVALENCE_SPEC_AXES)

    @pytest.fixture(scope="class")
    def uncached(self, spec):
        return run_sweep(spec, memoize=False)

    def test_memoized_equals_memoization_off_bit_for_bit(self, spec, uncached):
        cache = SweepCache()
        memoized = run_sweep(spec, cache=cache)
        assert memoized.records == uncached.records
        assert cache.misses > 0

    def test_warm_cache_replays_bit_for_bit(self, spec, uncached):
        cache = SweepCache()
        run_sweep(spec, cache=cache)
        hits_before = cache.hits
        warm = run_sweep(spec, cache=cache)
        assert warm.records == uncached.records
        # Every point replays from the point-level cache.
        assert cache.hits - hits_before == len(uncached.records)

    def test_process_pool_equals_serial_bit_for_bit(self, spec, uncached):
        pooled = run_sweep(spec, backend="process", processes=2)
        assert pooled.records == uncached.records

    def test_evaluate_point_rejects_foreign_workload(self):
        point = SweepPoint.from_config("other", {})
        with pytest.raises(ValueError, match="belongs to workload"):
            evaluate_point(_workload(), point)


class TestSerialization:
    def test_json_round_trip_is_lossless(self):
        spec = SweepSpec(
            workloads=(_workload(),),
            axes={"ratio": (0.1, 0.01), "bucket_bytes": (2**20, None)},
        )
        result = run_sweep(spec, memoize=False)
        payload = result.to_json_dict()
        assert payload["schema"] == "sidco.bench-artifact"
        back = SweepResult.from_json_dict(payload)
        assert back.workloads == result.workloads
        assert back.records == result.records

    def test_point_key_is_stable_and_unique(self):
        spec = SweepSpec(
            workloads=(_workload(),),
            axes={"ratio": (0.1, 0.01), "overlap": ("none", "comm")},
        )
        keys = [p.key for p in spec.expand()]
        assert len(set(keys)) == len(keys)
        assert all(key.startswith("wl|") for key in keys)
