"""Tests for the Table 1 benchmark registry."""

import pytest

from repro.harness import TABLE1, get_benchmark, table1_rows
from repro.harness.configs import PAPER_NUM_WORKERS, PAPER_RATIOS


class TestTable1:
    def test_all_six_benchmarks_present(self):
        assert set(TABLE1) == {
            "lstm-ptb",
            "lstm-an4",
            "resnet20-cifar10",
            "vgg16-cifar10",
            "resnet50-imagenet",
            "vgg19-imagenet",
        }

    def test_paper_constants(self):
        assert PAPER_NUM_WORKERS == 8
        assert PAPER_RATIOS == (0.1, 0.01, 0.001)

    def test_table1_facts_match_paper(self):
        assert TABLE1["lstm-ptb"].full_dimension == 66_034_000
        assert TABLE1["lstm-ptb"].comm_overhead == pytest.approx(0.94)
        assert TABLE1["vgg19-imagenet"].full_dimension == 143_671_337
        assert TABLE1["resnet20-cifar10"].comm_overhead == pytest.approx(0.10)
        assert TABLE1["resnet50-imagenet"].per_worker_batch == 160
        assert TABLE1["vgg16-cifar10"].epochs == 140

    def test_rows_have_all_columns(self):
        rows = table1_rows()
        assert len(rows) == 6
        for row in rows:
            assert {"benchmark", "task", "parameters", "comm_overhead", "optimizer", "quality_metric"} <= set(row)

    def test_lookup_case_insensitive(self):
        assert get_benchmark("LSTM-PTB").name == "lstm-ptb"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            get_benchmark("bert-large")


class TestProxyConstruction:
    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_proxy_model_and_dataset_build(self, name):
        config = get_benchmark(name)
        model = config.build_proxy_model(seed=0)
        dataset = config.build_proxy_dataset(seed=0)
        assert model.num_parameters() > 0
        assert len(dataset) >= config.proxy_batch_size

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_dimension_scale_reflects_full_size(self, name):
        config = get_benchmark(name)
        scale = config.dimension_scale()
        assert scale > 1.0
        assert scale == pytest.approx(config.full_dimension / config.build_proxy_model().num_parameters())

    def test_compute_seconds_reproduces_comm_overhead(self):
        from repro.distributed import CLUSTER_ETHERNET_10G, TimelineModel
        from repro.perfmodel import GPU_V100

        config = get_benchmark("vgg16-cifar10")
        compute = config.compute_seconds()
        timeline = TimelineModel(
            network=CLUSTER_ETHERNET_10G,
            device=GPU_V100,
            compute_seconds=compute,
            num_workers=8,
            model_dimension=config.full_dimension,
        )
        assert timeline.communication_overhead_fraction() == pytest.approx(config.comm_overhead, rel=1e-6)

    def test_high_overhead_benchmarks_have_less_compute(self):
        ptb = get_benchmark("lstm-ptb")
        resnet20 = get_benchmark("resnet20-cifar10")
        # 94% overhead with a huge model still implies non-trivial compute, but
        # per byte of model the PTB benchmark is far more communication bound.
        assert ptb.comm_overhead > resnet20.comm_overhead
