"""Tests for fault/policy knobs as sweep axes, fault pricing, and reporting."""

import pytest

from repro.harness import (
    DEFAULT_CONSTRAINTS,
    WorkerCountConstraint,
    WorkloadSpec,
    autotune,
    evaluate_point,
    format_straggler_summary,
    run_sweep,
)
from repro.harness.sweep import SweepPoint, SweepSpec

WORKLOAD = WorkloadSpec(name="lstm-ptb", dimension=66_034_000, comm_overhead=0.94)


def _point(**overrides):
    return SweepPoint.from_config(WORKLOAD.name, overrides)


class TestFaultAxes:
    def test_policy_axes_expand_under_constraints(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            axes={
                "sync_policy": ("full-sync", "backup-workers"),
                "backup_workers": (0, 1),
                "straggler_severity": (1.0, 4.0),
            },
        )
        configs = [p.config for p in spec.expand()]
        # backup_workers=1 survives only under the backup-workers policy.
        assert all(
            c["sync_policy"] == "backup-workers" for c in configs if c["backup_workers"] == 1
        )
        assert len(configs) == 6  # 2 policies x {0} + backup x {1}, x 2 severities

    def test_time_window_axis_requires_policy(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            axes={
                "sync_policy": ("full-sync", "time-window"),
                "time_window_factor": (None, 1.25),
            },
        )
        configs = [p.config for p in spec.expand()]
        assert all(
            c["sync_policy"] == "time-window"
            for c in configs
            if c["time_window_factor"] is not None
        )

    def test_worker_count_constraint_drops_oversized_cuts(self):
        constraint = WorkerCountConstraint()
        assert constraint.admits({"backup_workers": 0, "topology": "ethernet-4x8"})
        assert constraint.admits({"backup_workers": 3, "topology": "ethernet-4x8"})
        assert not constraint.admits({"backup_workers": 99, "topology": "ethernet-4x8"})
        assert any(isinstance(c, WorkerCountConstraint) for c in DEFAULT_CONSTRAINTS)

    def test_invalid_fault_axis_values_rejected(self):
        for axes in (
            {"sync_policy": ("quorum",)},
            {"backup_workers": (-1,)},
            {"time_window_factor": (0.5,)},
            {"straggler_severity": (0.0,)},
            {"link_degradation": (float("nan"),)},
        ):
            with pytest.raises(ValueError):
                SweepSpec(workloads=(WORKLOAD,), axes=axes)


class TestFaultPricing:
    def test_defaults_price_the_clean_path_bit_for_bit(self):
        metrics = evaluate_point(WORKLOAD, _point(ratio=0.1))
        assert metrics["straggler_overhead"] == 1.0
        assert metrics["stragglers_cut"] == 0
        assert metrics["iteration_seconds"] == metrics["clean_iteration_seconds"]
        assert metrics["participating_workers"] == metrics["num_workers"]

    def test_compute_straggler_stretches_iteration(self):
        clean = evaluate_point(WORKLOAD, _point(ratio=0.1))
        slow = evaluate_point(WORKLOAD, _point(ratio=0.1, straggler_severity=4.0))
        assert slow["straggler_overhead"] > 1.0
        assert slow["iteration_seconds"] > clean["iteration_seconds"]
        assert slow["clean_iteration_seconds"] == clean["iteration_seconds"]

    def test_compression_reduces_compute_straggler_tolerance(self):
        # Compression shrinks the comm share, so a compute straggler's extra
        # backprop/compress time is a larger fraction of the iteration.
        mild = evaluate_point(WORKLOAD, _point(ratio=0.1, straggler_severity=4.0))
        aggressive = evaluate_point(WORKLOAD, _point(ratio=0.01, straggler_severity=4.0))
        assert aggressive["straggler_overhead"] > mild["straggler_overhead"]

    def test_compression_protects_against_link_degradation(self):
        mild = evaluate_point(WORKLOAD, _point(ratio=0.1, link_degradation=4.0))
        aggressive = evaluate_point(WORKLOAD, _point(ratio=0.01, link_degradation=4.0))
        assert aggressive["straggler_overhead"] < mild["straggler_overhead"]

    def test_backup_workers_cut_the_straggler(self):
        full = evaluate_point(WORKLOAD, _point(ratio=0.01, straggler_severity=4.0))
        backup = evaluate_point(
            WORKLOAD,
            _point(
                ratio=0.01,
                straggler_severity=4.0,
                sync_policy="backup-workers",
                backup_workers=1,
            ),
        )
        assert backup["iteration_seconds"] < full["iteration_seconds"]
        assert backup["stragglers_cut"] == 1
        assert backup["participating_workers"] == full["participating_workers"] - 1

    def test_dense_baseline_priced_under_same_faults(self):
        clean = evaluate_point(WORKLOAD, _point(ratio=0.1))
        slow = evaluate_point(WORKLOAD, _point(ratio=0.1, link_degradation=4.0))
        # The dense baseline suffers the same degraded cluster, so the
        # speedup compares like with like.
        assert slow["dense_baseline_seconds"] > clean["dense_baseline_seconds"]
        assert slow["speedup_vs_dense"] == pytest.approx(
            slow["dense_baseline_seconds"] / slow["iteration_seconds"]
        )

    def test_fault_points_cache_cleanly(self):
        from repro.harness import SweepCache

        cache = SweepCache()
        point = _point(ratio=0.1, straggler_severity=2.0)
        first = evaluate_point(WORKLOAD, point, cache=cache)
        second = evaluate_point(WORKLOAD, point, cache=cache)
        assert first == second
        assert cache.hits >= 1


class TestTunerAndReporting:
    def test_autotune_minimizes_straggler_overhead(self):
        result = autotune(
            WORKLOAD,
            "ethernet-4x8",
            target="straggler_overhead",
            axes={
                "ratio": (0.01,),
                "sync_policy": ("full-sync", "backup-workers"),
                "backup_workers": (0, 1),
                "straggler_severity": (4.0,),
            },
            refine_rounds=0,
        )
        # Cutting the straggler is the argbest mitigation on this grid.
        assert result.best_config["sync_policy"] == "backup-workers"
        assert result.best_metric < max(r.metrics["straggler_overhead"] for r in result.trace)

    def test_sweep_runs_fault_axes_end_to_end(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            axes={
                "ratio": (0.1, 0.01),
                "straggler_severity": (1.0, 4.0),
            },
        )
        result = run_sweep(spec, memoize=False)
        assert len(result.records) == 4
        assert all("straggler_overhead" in r.metrics for r in result.records)
        rendered = format_straggler_summary(result.records)
        assert "straggler overhead" in rendered
        assert "policy=full-sync" in rendered

    def test_format_straggler_summary_accepts_flat_rows(self):
        rendered = format_straggler_summary(
            [
                {
                    "sync_policy": "backup-workers",
                    "straggler_severity": 4.0,
                    "link_degradation": 1.0,
                    "straggler_overhead": 1.02,
                    "participating_workers": 31,
                    "stragglers_cut": 1,
                }
            ]
        )
        assert "policy=backup-workers" in rendered
        assert "cut=1" in rendered
