"""Integration tests for the benchmark training-run harness (small scale)."""

import pytest

from repro.harness import compare_compressors, run_benchmark


class TestRunBenchmark:
    def test_single_run_produces_metrics_and_evaluation(self):
        result = run_benchmark("resnet20-cifar10", "sidco-e", 0.01, num_workers=2, iterations=12, seed=0)
        assert len(result.metrics) == 12
        assert "accuracy" in result.final_evaluation
        assert result.compressor_name == "sidco-e"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark("alexnet", "topk", 0.01)


class TestCompareCompressors:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_compressors(
            "lstm-ptb", ("topk", "sidco-e"), (0.001,), num_workers=2, iterations=25, seed=0
        )

    def test_rows_cover_requested_grid(self, comparison):
        assert {(r.compressor, r.ratio) for r in comparison.rows} == {("topk", 0.001), ("sidco-e", 0.001)}
        assert comparison.baseline.compressor_name == "none"

    def test_compression_beats_baseline_on_comm_bound_benchmark(self, comparison):
        sidco = next(r for r in comparison.rows if r.compressor == "sidco-e")
        assert sidco.throughput_vs_baseline > 2.0
        assert sidco.speedup_vs_baseline > 1.0

    def test_sidco_throughput_at_least_topk(self, comparison):
        sidco = next(r for r in comparison.rows if r.compressor == "sidco-e")
        topk = next(r for r in comparison.rows if r.compressor == "topk")
        assert sidco.throughput_vs_baseline > topk.throughput_vs_baseline

    def test_estimation_quality_ci_ordering(self, comparison):
        for row in comparison.rows:
            low, high = row.estimation_quality_ci
            assert low <= row.estimation_quality <= high


class TestOverlapThreading:
    def test_run_benchmark_threads_overlap_policy(self):
        kwargs = dict(num_workers=2, iterations=8, seed=0, bucket_bytes=256 * 1024)
        serial = run_benchmark("vgg16-cifar10", "topk", 0.01, overlap="none", **kwargs)
        overlapped = run_benchmark("vgg16-cifar10", "topk", 0.01, overlap="comm+compress", **kwargs)
        assert serial.config.overlap == "none"
        assert overlapped.config.overlap == "comm+compress"
        # Same training math, strictly less simulated wall-clock.
        assert overlapped.metrics.total_time < serial.metrics.total_time
        assert overlapped.metrics.serialized_total_time == pytest.approx(
            serial.metrics.total_time, rel=1e-9
        )

    def test_compare_compressors_reports_overlap_columns(self):
        comparison = compare_compressors(
            "resnet20-cifar10",
            ("topk",),
            (0.01,),
            num_workers=2,
            iterations=6,
            seed=0,
            bucket_bytes=64 * 1024,
            overlap="comm",
        )
        row = comparison.rows[0]
        assert row.overlap == "comm"
        assert row.serialized_time >= row.total_time
        assert 0.0 <= row.overlap_saving < 1.0
