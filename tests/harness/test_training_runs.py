"""Integration tests for the benchmark training-run harness (small scale)."""

import pytest

from repro.harness import compare_compressors, get_benchmark, run_benchmark


class TestRunBenchmark:
    def test_single_run_produces_metrics_and_evaluation(self):
        result = run_benchmark("resnet20-cifar10", "sidco-e", 0.01, num_workers=2, iterations=12, seed=0)
        assert len(result.metrics) == 12
        assert "accuracy" in result.final_evaluation
        assert result.compressor_name == "sidco-e"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark("alexnet", "topk", 0.01)


class TestCompareCompressors:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_compressors(
            "lstm-ptb", ("topk", "sidco-e"), (0.001,), num_workers=2, iterations=25, seed=0
        )

    def test_rows_cover_requested_grid(self, comparison):
        assert {(r.compressor, r.ratio) for r in comparison.rows} == {("topk", 0.001), ("sidco-e", 0.001)}
        assert comparison.baseline.compressor_name == "none"

    def test_compression_beats_baseline_on_comm_bound_benchmark(self, comparison):
        sidco = next(r for r in comparison.rows if r.compressor == "sidco-e")
        assert sidco.throughput_vs_baseline > 2.0
        assert sidco.speedup_vs_baseline > 1.0

    def test_sidco_throughput_at_least_topk(self, comparison):
        sidco = next(r for r in comparison.rows if r.compressor == "sidco-e")
        topk = next(r for r in comparison.rows if r.compressor == "topk")
        assert sidco.throughput_vs_baseline > topk.throughput_vs_baseline

    def test_estimation_quality_ci_ordering(self, comparison):
        for row in comparison.rows:
            low, high = row.estimation_quality_ci
            assert low <= row.estimation_quality <= high


class TestOverlapThreading:
    def test_run_benchmark_threads_overlap_policy(self):
        kwargs = dict(num_workers=2, iterations=8, seed=0, bucket_bytes=256 * 1024)
        serial = run_benchmark("vgg16-cifar10", "topk", 0.01, overlap="none", **kwargs)
        overlapped = run_benchmark("vgg16-cifar10", "topk", 0.01, overlap="comm+compress", **kwargs)
        assert serial.config.overlap == "none"
        assert overlapped.config.overlap == "comm+compress"
        # Same training math, strictly less simulated wall-clock.
        assert overlapped.metrics.total_time < serial.metrics.total_time
        assert overlapped.metrics.serialized_total_time == pytest.approx(
            serial.metrics.total_time, rel=1e-9
        )

    def test_compare_compressors_reports_overlap_columns(self):
        comparison = compare_compressors(
            "resnet20-cifar10",
            ("topk",),
            (0.01,),
            num_workers=2,
            iterations=6,
            seed=0,
            bucket_bytes=64 * 1024,
            overlap="comm",
        )
        row = comparison.rows[0]
        assert row.overlap == "comm"
        assert row.serialized_time >= row.total_time
        assert 0.0 <= row.overlap_saving < 1.0


class TestTopologyThreading:
    def _two_level(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=NODE_INFINIBAND_100G,
            name="harness-2x2",
        )

    def test_topology_fixes_worker_count(self):
        result = run_benchmark(
            "resnet20-cifar10", "topk", 0.01, num_workers=8, iterations=4, seed=0,
            topology=self._two_level(),
        )
        assert result.config.num_workers == 4
        assert result.config.topology.name == "harness-2x2"

    def test_preset_topology_by_name(self):
        result = run_benchmark(
            "resnet20-cifar10", "topk", 0.01, iterations=4, seed=0, topology="cluster2",
        )
        assert result.config.num_workers == 8
        assert result.config.topology.name == "cluster2-infiniband-100g"

    def test_hierarchical_allgather_speeds_up_two_level_run(self):
        kwargs = dict(iterations=6, seed=0, topology=self._two_level())
        flat = run_benchmark(
            "vgg16-cifar10", "topk", 0.01, allgather_algorithm="flat-allgather", **kwargs
        )
        hier = run_benchmark(
            "vgg16-cifar10", "topk", 0.01, allgather_algorithm="hierarchical", **kwargs
        )
        assert hier.metrics.total_time < flat.metrics.total_time

    def test_compare_compressors_reports_topology_columns(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.01,), iterations=4, seed=0,
            topology=self._two_level(), allgather_algorithm="hierarchical",
        )
        row = comparison.rows[0]
        assert row.topology == "harness-2x2"
        assert row.allgather_algorithm == "hierarchical"

    def test_flat_rows_labelled_flat(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.01,), num_workers=2, iterations=4, seed=0,
        )
        assert comparison.rows[0].topology == "flat"
        assert comparison.rows[0].allgather_algorithm == "flat-allgather"


class TestDedupPipelineThreading:
    def _two_level(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, NODE_INFINIBAND_100G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=NODE_INFINIBAND_100G,
            name="harness-2x2",
        )

    def test_run_benchmark_threads_both_knobs(self):
        result = run_benchmark(
            "resnet20-cifar10", "topk", 0.1, iterations=4, seed=0,
            topology=self._two_level(), allgather_algorithm="hierarchical",
            pipeline_chunks=4, dedup_assumption="uniform",
        )
        assert result.config.pipeline_chunks == 4
        assert result.config.dedup_assumption == "uniform"
        assert result.metrics.mean_dedup_ratio() > 1.0

    def test_dedup_run_is_cheaper_than_plain_hierarchical(self):
        kwargs = dict(
            iterations=4, seed=0, topology=self._two_level(),
            allgather_algorithm="hierarchical",
        )
        plain = run_benchmark("vgg16-cifar10", "topk", 0.1, **kwargs)
        deduped = run_benchmark(
            "vgg16-cifar10", "topk", 0.1, dedup_assumption="uniform", **kwargs
        )
        assert deduped.metrics.total_time < plain.metrics.total_time

    def test_compare_compressors_reports_dedup_columns(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.1,), iterations=4, seed=0,
            topology=self._two_level(), allgather_algorithm="hierarchical",
            pipeline_chunks=2, dedup_assumption="uniform",
        )
        row = comparison.rows[0]
        assert row.pipeline_chunks == 2
        assert row.dedup_assumption == "uniform"
        assert row.dedup_ratio > 1.0

    def test_default_rows_report_knobs_off(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.01,), num_workers=2, iterations=4, seed=0,
        )
        row = comparison.rows[0]
        assert row.pipeline_chunks == 1
        assert row.dedup_assumption == "off"
        assert row.dedup_ratio == 1.0


class TestCrossBucketThreading:
    def _torus(self):
        from repro.distributed import ClusterTopology
        from repro.distributed.network import CLUSTER_ETHERNET_10G, CLUSTER_ETHERNET_25G

        return ClusterTopology(
            num_nodes=2,
            devices_per_node=2,
            inter_node=CLUSTER_ETHERNET_10G,
            intra_node=CLUSTER_ETHERNET_25G,
            name="harness-2x2-torus",
        )

    def test_run_benchmark_threads_the_flag(self):
        result = run_benchmark(
            "resnet20-cifar10", "topk", 0.1, iterations=4, seed=0,
            topology=self._torus(), allgather_algorithm="hierarchical",
            bucket_bytes=64 * 1024, overlap="comm", cross_bucket_pipeline=True,
        )
        assert result.config.cross_bucket_pipeline

    def test_cross_bucket_run_is_no_slower(self):
        kwargs = dict(
            iterations=4, seed=0, topology=self._torus(),
            allgather_algorithm="hierarchical", bucket_bytes=2 * 2**20, overlap="comm",
        )
        serial = run_benchmark("vgg16-cifar10", "topk", 0.1, **kwargs)
        cross = run_benchmark(
            "vgg16-cifar10", "topk", 0.1, cross_bucket_pipeline=True, **kwargs
        )
        assert cross.metrics.total_time <= serial.metrics.total_time
        assert cross.metrics.serialized_total_time == pytest.approx(
            serial.metrics.serialized_total_time
        )

    def test_compare_compressors_reports_the_flag(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.1,), iterations=4, seed=0,
            topology=self._torus(), allgather_algorithm="hierarchical",
            bucket_bytes=64 * 1024, overlap="comm", cross_bucket_pipeline=True,
        )
        row = comparison.rows[0]
        assert row.cross_bucket_pipeline
        assert row.topology == "harness-2x2-torus"

    def test_flag_defaults_off_in_rows(self):
        comparison = compare_compressors(
            "resnet20-cifar10", ("topk",), (0.01,), num_workers=2, iterations=4, seed=0,
        )
        assert comparison.rows[0].cross_bucket_pipeline is False

    def test_benchmark_config_default_feeds_run(self):
        from dataclasses import replace

        config = replace(
            get_benchmark("resnet20-cifar10"),
            topology=None,
            cross_bucket_pipeline=True,
        )
        result = run_benchmark(
            config, "topk", 0.1, num_workers=2, iterations=3, seed=0,
        )
        assert result.config.cross_bucket_pipeline
