"""Tests for the text reporting helpers."""

from dataclasses import dataclass

import pytest

from repro.harness import (
    format_overlap_summary,
    format_series,
    format_speedup_summary,
    format_table,
)


@dataclass
class Row:
    compressor: str
    speedup: float


class TestFormatTable:
    def test_renders_dicts(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.001}], title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert len(text.splitlines()) == 5

    def test_renders_dataclasses(self):
        text = format_table([Row("topk", 1.0), Row("sidco-e", 41.7)])
        assert "sidco-e" in text
        assert "41.7" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_rejects_unknown_row_type(self):
        with pytest.raises(TypeError):
            format_table([42])


class TestFormatSeries:
    def test_subsamples_long_series(self):
        text = format_series("loss", range(100), range(100), max_points=5)
        assert text.count("(") <= 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1])


class TestOverlapSummary:
    def test_renders_overlapped_vs_serialized(self):
        rows = [
            {
                "compressor": "sidco-e",
                "overlap": "comm+compress",
                "total_time": 0.8,
                "serialized_time": 1.0,
                "overlap_saving": 0.2,
            },
            {"compressor": "topk", "overlap": "none", "total_time": 1.0},
        ]
        text = format_overlap_summary(rows)
        assert "sidco-e" in text and "comm+compress" in text
        assert "serialized=1" in text
        assert "saved=20%" in text
        # Rows without overlap fields degrade to serialized == overlapped.
        assert "topk" in text and "saved=0%" in text


class TestSpeedupSummary:
    def test_groups_by_ratio(self):
        rows = [
            {"compressor": "topk", "ratio": 0.01, "speedup_vs_baseline": 1.5, "throughput_vs_baseline": 2.0, "estimation_quality": 1.0},
            {"compressor": "sidco-e", "ratio": 0.01, "speedup_vs_baseline": 5.0, "throughput_vs_baseline": 6.0, "estimation_quality": 1.0},
        ]
        text = format_speedup_summary(rows)
        assert "ratio=0.01" in text
        assert "sidco-e" in text


class TestPhaseBreakdown:
    def test_renders_collective_phases(self):
        from repro.distributed import CollectiveModel, get_topology
        from repro.harness import format_phase_breakdown

        cost = CollectiveModel(
            get_topology("ethernet-4x8"), allgather_algorithm="hierarchical"
        ).allgather_cost(1e5)
        text = format_phase_breakdown(cost)
        assert "allgather via hierarchical over 32 workers" in text
        for phase in ("intra-gather", "inter-allgather", "intra-broadcast"):
            assert phase in text
        assert "ethernet-10g" in text and "infiniband-100g" in text
        assert "total" in text

    def test_single_participant_renders_free(self):
        from repro.distributed import CollectiveModel, NetworkModel
        from repro.harness import format_phase_breakdown

        cost = CollectiveModel.flat(NetworkModel(), 1).allgather_cost(1e5)
        assert "free" in format_phase_breakdown(cost)

    def test_renders_pipelined_chunks_with_placement_and_makespan(self):
        from repro.distributed import CollectiveModel, SparseAggregateModel, get_topology
        from repro.harness import format_phase_breakdown

        cost = CollectiveModel(
            get_topology("ethernet-4x8"),
            allgather_algorithm="hierarchical",
            pipeline_chunks=2,
            allgather_dedup=SparseAggregateModel("uniform"),
        ).allgather_cost(2e6, density=0.1)
        assert cost.is_pipelined
        text = format_phase_breakdown(cost)
        assert "pipelined over 2 chunks" in text
        assert "dedup ratio" in text
        assert "inter-allgather[c0]" in text and "inter-allgather[c1]" in text
        assert "@" in text  # placement offsets shown
        assert "makespan" in text
        # The makespan headline is the cost's placement-aware total, not the
        # (larger) sum of every chunked phase.
        from repro.harness.reporting import _format_value

        assert _format_value(cost.total) in text

    def test_dedup_only_breakdown_reports_achieved_ratio(self):
        from repro.distributed import CollectiveModel, SparseAggregateModel, get_topology
        from repro.harness import format_phase_breakdown

        cost = CollectiveModel(
            get_topology("ethernet-4x8"),
            allgather_algorithm="hierarchical",
            allgather_dedup=SparseAggregateModel("uniform"),
        ).allgather_cost(2e6, density=0.1)
        assert not cost.is_pipelined and cost.dedup_ratio > 1.0
        text = format_phase_breakdown(cost)
        assert "dedup ratio" in text
        assert "pipelined" not in text
        assert "total" in text

    def test_serial_breakdown_keeps_total_semantics(self):
        from repro.distributed import CollectiveModel, get_topology
        from repro.harness import format_phase_breakdown

        cost = CollectiveModel(
            get_topology("ethernet-4x8"), allgather_algorithm="hierarchical"
        ).allgather_cost(1e5)
        text = format_phase_breakdown(cost)
        assert "pipelined" not in text
        assert "makespan" not in text
        assert "total" in text


class TestLinkUtilizationReport:
    def test_renders_per_link_rows_and_lane_mode(self, two_fabric_schedule):
        from repro.harness import format_link_utilization

        serial = format_link_utilization(two_fabric_schedule(False))
        cross = format_link_utilization(two_fabric_schedule(True))
        assert "serial lane" in serial
        assert "per-link lanes" in cross
        for text in (serial, cross):
            assert "intra" in text and "inter" in text
            assert "utilisation=" in text and "busy=" in text

    def test_empty_schedule_renders_placeholder(self):
        from repro.distributed import simulate_iteration
        from repro.harness import format_link_utilization

        schedule = simulate_iteration([], compute_seconds=0.1, overlap="comm")
        assert "(no communication events)" in format_link_utilization(schedule)

    def test_anonymous_lane_labelled(self):
        from repro.distributed import BucketTask, simulate_iteration
        from repro.harness import format_link_utilization

        tasks = [BucketTask(index=0, ready_seconds=0.0, compress_seconds=0.0, comm_seconds=0.2)]
        text = format_link_utilization(
            simulate_iteration(tasks, compute_seconds=0.1, overlap="comm")
        )
        assert "(unattributed)" in text
