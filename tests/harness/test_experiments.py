"""Tests for the gradient-analysis experiments (Figures 2, 7, 8 machinery)."""

import numpy as np
import pytest

from repro.harness import compressibility_study, extract_traces, gradient_fit_study, run_benchmark


@pytest.fixture(scope="module")
def fit_study_no_ec():
    return gradient_fit_study(
        "resnet20-cifar10",
        use_error_feedback=False,
        capture_iterations=(3, 12),
        iterations=15,
        num_workers=2,
        seed=0,
    )


class TestGradientFitStudy:
    def test_snapshots_captured_at_requested_iterations(self, fit_study_no_ec):
        assert sorted(fit_study_no_ec.snapshots) == [3, 12]
        assert not fit_study_no_ec.use_error_feedback

    def test_sids_fit_better_than_gaussian_tail(self, fit_study_no_ec):
        # The KS distance of the best SID must be small enough to support
        # Property 2 on the proxy gradients.
        for report in fit_study_no_ec.fits.values():
            best = min(
                report.exponential.ks_statistic,
                report.gamma.ks_statistic,
                report.gpareto.ks_statistic,
            )
            assert best < 0.5

    def test_best_sid_is_identified(self, fit_study_no_ec):
        for report in fit_study_no_ec.fits.values():
            assert report.best_sid() in {"exponential", "gamma", "gpareto"}

    def test_gradients_are_compressible(self, fit_study_no_ec):
        for report in fit_study_no_ec.compressibility.values():
            assert report.decay_exponent > 0.3

    def test_error_feedback_variant_runs(self):
        study = gradient_fit_study(
            "resnet20-cifar10",
            use_error_feedback=True,
            capture_iterations=(4,),
            iterations=6,
            num_workers=2,
            seed=0,
        )
        assert study.use_error_feedback
        assert 4 in study.snapshots


class TestCompressibilityStudy:
    def test_error_curves_decrease_in_k(self):
        study = compressibility_study(
            "resnet20-cifar10", capture_iterations=(2, 8), num_ks=20, num_workers=2, seed=0
        )
        for iteration in study.iterations:
            curve = study.error_curves[iteration]
            assert np.all(np.diff(curve) <= 1e-9)
            assert curve[-1] == pytest.approx(0.0, abs=1e-9)


class TestExtractTraces:
    def test_trace_bundle_fields(self):
        result = run_benchmark("resnet20-cifar10", "sidco-e", 0.01, num_workers=2, iterations=15, seed=0)
        traces = extract_traces(result, window=5)
        assert traces.compressor == "sidco-e"
        assert traces.ratio == 0.01
        assert len(traces.losses) == 15
        assert len(traces.running_ratio) == 15 - 5 + 1
        assert np.all(np.diff(traces.wall_times) > 0)
