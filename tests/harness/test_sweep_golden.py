"""Golden matrix: SweepResult metrics pinned across every topology preset.

One small fixed workload swept over all 7 topology presets x overlap x
cross-bucket pipelining, with every metric pinned to the exact floats the
engine produced when the matrix was captured.  Any change to compression,
collective pricing, or the schedule simulator that moves a number — however
slightly — fails here first, with the exact (topology, overlap, lanes) cell
that moved.

Captured with: bucket_bytes=512 KiB (so the 4096-element proxy splits into
several buckets and the overlap/lane knobs actually bite) and the
hierarchical all-gather (so multi-level presets exercise per-link lanes).
Exact ``==`` on purpose, same discipline as ``test_network_golden``: these
are deterministic closed-form/event-driven computations, not measurements.
"""

import pytest

from repro.distributed import TOPOLOGIES
from repro.harness import SweepSpec, WorkloadSpec, run_sweep

WORKLOAD = WorkloadSpec(
    name="golden", dimension=1_000_000, comm_overhead=0.7, proxy_elements=4096, seed=7
)

AXES = {
    "topology": tuple(TOPOLOGIES),
    "overlap": ("none", "comm+compress"),
    "cross_bucket_pipeline": (False, True),
    "bucket_bytes": (2**19,),
    "allgather_algorithm": ("hierarchical",),
}

#: (topology, overlap, cross_bucket) -> (iteration_seconds,
#: communication_seconds, speedup_vs_dense), captured at PR 9.
GOLDEN = {
    ("cluster1", "none", False): (0.027352142857142856, 0.015674999999999998, 0.8722220771420365),
    ("cluster1", "none", True): (0.027352142857142856, 0.015674999999999998, 0.8722220771420365),
    ("cluster1-25g", "none", False): (0.014272857142857146, 0.006830000000000002, 0.6826143529176257),
    ("cluster1-25g", "none", True): (0.014272857142857146, 0.006830000000000002, 0.6826143529176257),
    ("cluster2", "none", False): (0.013499226190476192, 0.0018220833333333335, 0.6045143681075195),
    ("cluster2", "none", True): (0.013499226190476192, 0.0018220833333333335, 0.6045143681075195),
    ("ethernet-4x8", "none", False): (0.06318034863945578, 0.049739940476190465, 0.4706320005803493),
    ("ethernet-4x8", "none", True): (0.06318034863945578, 0.049739940476190465, 0.4706320005803493),
    ("torus-2d", "none", False): (0.04998408163265307, 0.03747428571428572, 0.5328226945721496),
    ("torus-2d", "none", True): (0.04998408163265307, 0.03747428571428572, 0.5328226945721496),
    ("fat-tree-128", "none", False): (8.426496743197276, 8.346817559523807, 0.02973128927476911),
    ("fat-tree-128", "none", True): (8.426496743197276, 8.346817559523807, 0.02973128927476911),
    ("dragonfly-64", "none", False): (1.0958292091836732, 1.0647683928571425, 0.08073282498192069),
    ("dragonfly-64", "none", True): (1.0958292091836732, 1.0647683928571425, 0.08073282498192069),
    ("cluster1", "comm+compress", False): (0.016655697544642856, 0.015674999999999998, 1.4323712827516057),
    ("cluster1", "comm+compress", True): (0.016655697544642856, 0.015674999999999998, 1.4323712827516057),
    ("cluster1-25g", "comm+compress", False): (0.0074550837053571455, 0.006830000000000002, 1.3068742790716124),
    ("cluster1-25g", "comm+compress", True): (0.0074550837053571455, 0.006830000000000002, 1.3068742790716124),
    ("cluster2", "comm+compress", False): (0.007985502232142857, 0.0018220833333333335, 1.0219114531868814),
    ("cluster2", "comm+compress", True): (0.007985502232142857, 0.0018220833333333335, 1.0219114531868814),
    ("ethernet-4x8", "comm+compress", False): (0.0508687247555272, 0.049739940476190465, 0.5845378279179324),
    ("ethernet-4x8", "comm+compress", True): (0.04700955808886055, 0.049739940476190465, 0.6325244287841327),
    ("torus-2d", "comm+compress", False): (0.03852491310586735, 0.03747428571428572, 0.691309880129706),
    ("torus-2d", "comm+compress", True): (0.02607062739158163, 0.03747428571428572, 1.0215578114481567),
    ("fat-tree-128", "comm+compress", False): (8.353509365965134, 8.346817559523807, 0.029991061393387523),
    ("fat-tree-128", "comm+compress", True): (5.995679008822279, 8.346817559523807, 0.04178519428345937),
    ("dragonfly-64", "comm+compress", False): (1.067377016103316, 1.0647683928571425, 0.08288485363688843),
    ("dragonfly-64", "comm+compress", True): (0.8595704089604592, 1.0647683928571425, 0.10292279356393211),
}


@pytest.fixture(scope="module")
def result():
    return run_sweep(SweepSpec(workloads=(WORKLOAD,), axes=AXES), memoize=False)


def test_matrix_covers_every_preset_and_knob_cell(result):
    cells = {
        (r.config["topology"], r.config["overlap"], r.config["cross_bucket_pipeline"])
        for r in result.records
    }
    assert cells == set(GOLDEN)
    assert {r.config["topology"] for r in result.records} == set(TOPOLOGIES)
    assert len(result.records) == len(GOLDEN) == 28


def test_every_cell_matches_golden_exactly(result):
    for record in result.records:
        cell = (
            record.config["topology"],
            record.config["overlap"],
            record.config["cross_bucket_pipeline"],
        )
        expected = GOLDEN[cell]
        actual = (
            record.metrics["iteration_seconds"],
            record.metrics["communication_seconds"],
            record.metrics["speedup_vs_dense"],
        )
        assert actual == expected, f"{cell}: {actual} != {expected}"


def test_workload_splits_into_multiple_buckets(result):
    # The matrix is only a meaningful overlap/lane probe if the proxy is
    # genuinely bucketed.
    assert all(r.metrics["num_buckets"] > 1 for r in result.records)


def test_knobs_bite_where_they_should(result):
    by_cell = {
        (r.config["topology"], r.config["overlap"], r.config["cross_bucket_pipeline"]): r.metrics
        for r in result.records
    }
    for preset in TOPOLOGIES:
        # Overlap never hurts, and strictly helps on every preset here.
        serial = by_cell[(preset, "none", False)]["iteration_seconds"]
        overlapped = by_cell[(preset, "comm+compress", False)]["iteration_seconds"]
        assert overlapped < serial
        # Per-link lanes need multiple link levels in the allgather: the
        # single-level presets are lane-invariant, the multi-level ones gain.
        lanes_off = by_cell[(preset, "comm+compress", False)]["iteration_seconds"]
        lanes_on = by_cell[(preset, "comm+compress", True)]["iteration_seconds"]
        if preset in ("cluster1", "cluster1-25g", "cluster2"):
            assert lanes_on == lanes_off
        else:
            assert lanes_on < lanes_off
