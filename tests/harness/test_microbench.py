"""Tests for the compression micro-benchmark harness."""

import pytest

from repro.harness import quality_matrix, run_microbenchmark, run_synthetic_size_sweep, speedup_matrix
from repro.harness.microbench import run_model_microbenchmarks


@pytest.fixture(scope="module")
def rows():
    return run_microbenchmark(2_000_000, ratios=(0.01, 0.001), sample_size=100_000, warmup_calls=8, seed=0)


class TestRunMicrobenchmark:
    def test_row_coverage(self, rows):
        compressors = {r.compressor for r in rows}
        devices = {r.device for r in rows}
        ratios = {r.ratio for r in rows}
        assert compressors == {"topk", "dgc", "redsync", "gaussiank", "sidco-e"}
        assert devices == {"gpu-v100", "cpu-xeon"}
        assert ratios == {0.01, 0.001}
        assert len(rows) == 5 * 2 * 2

    def test_topk_reference_speedup_is_one(self, rows):
        for row in rows:
            if row.compressor == "topk":
                assert row.speedup_over_topk == pytest.approx(1.0)

    def test_gpu_ordering_matches_figure1a(self, rows):
        speedups = speedup_matrix(rows, "gpu-v100")
        for ratio in (0.01, 0.001):
            assert speedups[("sidco-e", ratio)] > speedups[("topk", ratio)]
            assert speedups[("dgc", ratio)] > 1.0

    def test_cpu_ordering_matches_figure1b(self, rows):
        speedups = speedup_matrix(rows, "cpu-xeon")
        for ratio in (0.01, 0.001):
            assert speedups[("dgc", ratio)] < 1.0
            assert speedups[("sidco-e", ratio)] > 1.0

    def test_quality_matrix_sidco_and_dgc_near_one(self, rows):
        quality = quality_matrix(rows)
        for ratio in (0.01, 0.001):
            assert 0.6 < quality[("sidco-e", ratio)] < 1.5
        # DGC's quality is measured on the (down-sampled) sample vector, where
        # its 1% sub-sample holds only a handful of elements at delta=0.001, so
        # the bound is loose there and tight at 0.01.
        assert 0.6 < quality[("dgc", 0.01)] < 1.5
        assert 0.1 < quality[("dgc", 0.001)] < 3.0

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            run_microbenchmark(0)


class TestSweeps:
    def test_model_sweep_uses_known_dimensions(self):
        results = run_model_microbenchmarks(
            models=("resnet20",), ratios=(0.01,), sample_size=50_000, warmup_calls=4
        )
        assert set(results) == {"resnet20"}
        assert all(row.dimension == 269_467 for row in results["resnet20"])

    def test_model_sweep_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_model_microbenchmarks(models=("gpt3",), ratios=(0.01,), sample_size=1000)

    def test_synthetic_sweep_latency_grows_with_size(self):
        results = run_synthetic_size_sweep(
            sizes=(260_000, 2_600_000), ratios=(0.01,), sample_size=50_000, warmup_calls=4
        )
        small_topk = [r for r in results[260_000] if r.compressor == "topk" and r.device == "gpu-v100"][0]
        large_topk = [r for r in results[2_600_000] if r.compressor == "topk" and r.device == "gpu-v100"][0]
        assert large_topk.latency_seconds > small_topk.latency_seconds
