"""Oracle tests for the auto-tuner.

The tuner's contract is auditable simplicity: with ``refine_rounds=0`` its
answer is *exactly* the exhaustive-enumeration argbest of the coarse grid
(no stochastic search to trust), its provenance trace covers every evaluated
point, and refinement can only improve the incumbent.
"""

import pytest

from repro.harness import (
    SweepCache,
    SweepSpec,
    WorkloadSpec,
    autotune,
    run_sweep,
)

SMALL_AXES = {
    "compressor": ("topk", "dgc"),
    "ratio": (0.1, 0.01),
    "bucket_bytes": (2**20,),
    "overlap": ("none", "comm+compress"),
    "allgather_algorithm": ("flat-allgather", "hierarchical"),
    "dedup_assumption": (None, "uniform"),
}

PRESET = "ethernet-4x8"


def _workload(seed=0):
    return WorkloadSpec(
        name="oracle", dimension=500_000, comm_overhead=0.6, proxy_elements=2048, seed=seed
    )


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def cache():
    return SweepCache()


class TestExhaustiveOracle:
    @pytest.mark.parametrize(
        "target, mode",
        [
            ("iteration_seconds", min),
            ("communication_seconds", min),
            ("speedup_vs_dense", max),
            ("overlap_saving", max),
        ],
    )
    def test_grid_argbest_matches_exhaustive_enumeration(self, workload, cache, target, mode):
        result = autotune(
            workload, PRESET, target=target, axes=SMALL_AXES, refine_rounds=0, cache=cache
        )
        exhaustive = run_sweep(
            SweepSpec(workloads=(workload,), axes={**SMALL_AXES, "topology": (PRESET,)}),
            cache=cache,
        )
        oracle = mode(r.metrics[target] for r in exhaustive.records)
        assert result.best_metric == oracle
        assert result.best.metrics[target] == oracle

    def test_trace_covers_every_grid_point_exactly_once(self, workload, cache):
        result = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=0, cache=cache)
        spec = SweepSpec(workloads=(workload,), axes={**SMALL_AXES, "topology": (PRESET,)})
        assert [r.point for r in result.trace] == spec.expand()
        assert result.queries == len(result.trace)

    def test_ties_break_deterministically(self, workload, cache):
        # Two autotune runs over the same grid must pick the identical record,
        # even when several configs price identically (overlap no-ops, etc.).
        first = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=0, cache=cache)
        second = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=0)
        assert first.best == second.best


class TestRefinement:
    def test_refinement_extends_trace_and_never_worsens(self, workload, cache):
        coarse = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=0, cache=cache)
        refined = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=3, cache=cache)
        assert refined.best_metric <= coarse.best_metric
        # The coarse grid is a prefix of the refined trace.
        assert refined.trace[: len(coarse.trace)] == coarse.trace
        assert refined.queries >= coarse.queries

    def test_refined_points_respect_constraints_and_bounds(self, workload, cache):
        refined = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=3, cache=cache)
        for record in refined.trace:
            config = record.config
            assert 0.0 < config["ratio"] <= 1.0
            if config["dedup_assumption"] is not None:
                assert config["allgather_algorithm"] == "hierarchical"

    def test_trace_has_no_duplicate_points(self, workload, cache):
        refined = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=3, cache=cache)
        points = [r.point for r in refined.trace]
        assert len(points) == len(set(points))

    def test_provenance_replays_on_a_warm_cache(self, workload):
        cache = SweepCache()
        cold = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=2, cache=cache)
        warm = autotune(workload, PRESET, axes=SMALL_AXES, refine_rounds=2, cache=cache)
        assert warm.trace == cold.trace
        assert warm.best == cold.best


class TestTunerInterface:
    def test_benchmark_name_resolves_to_table1_workload(self, cache):
        result = autotune(
            "vgg16-cifar10",
            PRESET,
            axes={"ratio": (0.1, 0.01)},
            refine_rounds=0,
            cache=cache,
        )
        assert result.workload.name == "vgg16-cifar10"
        assert result.workload.dimension > 10_000_000  # Table 1: ~14M parameters

    def test_multiple_topologies_let_the_tuner_pick_the_fabric(self, workload, cache):
        result = autotune(
            workload,
            ("cluster1", "ethernet-4x8"),
            axes={"ratio": (0.1, 0.01)},
            refine_rounds=0,
            cache=cache,
        )
        assert result.best_config["topology"] in {"cluster1", "ethernet-4x8"}
        assert {r.config["topology"] for r in result.trace} == {"cluster1", "ethernet-4x8"}

    def test_unknown_target_rejected(self, workload):
        with pytest.raises(ValueError, match="unknown tuning target"):
            autotune(workload, PRESET, target="accuracy")

    def test_invalid_refinement_parameters_rejected(self, workload):
        with pytest.raises(ValueError, match="refine_rounds"):
            autotune(workload, PRESET, refine_rounds=-1)
        with pytest.raises(ValueError, match="ratio_step"):
            autotune(workload, PRESET, ratio_step=1.5)
