"""Regression tests for the unified ``BENCH_*`` artifact schema.

The six benchmark emitters and the sweep engine all serialize through one
envelope (``sidco.bench-artifact``); these tests pin the envelope contract —
schema/version keys, params/metrics/records shapes, legacy-key merge with
envelope precedence — and the disk round-trip the emitters assert against.
"""

import json

import pytest

from repro.harness import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    bench_artifact,
    load_bench_artifact,
    validate_bench_artifact,
    write_bench_artifact,
)


class TestEnvelope:
    def test_minimal_artifact_is_schema_conformant(self):
        payload = bench_artifact("demo")
        assert payload["schema"] == BENCH_SCHEMA == "sidco.bench-artifact"
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION == 1
        assert payload["benchmark"] == "demo"
        assert payload["params"] == {} and payload["metrics"] == {} and payload["records"] == []

    def test_params_metrics_records_carried_verbatim(self):
        payload = bench_artifact(
            "demo",
            params={"dimension": 10},
            metrics={"speedup": 2.5},
            records=[{"workload": "w", "config": {"ratio": 0.1}, "metrics": {"t": 1.0}}],
        )
        assert payload["params"] == {"dimension": 10}
        assert payload["metrics"] == {"speedup": 2.5}
        assert payload["records"][0]["config"] == {"ratio": 0.1}

    def test_legacy_keys_ride_at_top_level(self):
        payload = bench_artifact("demo", legacy={"old_speedup": 3.0, "scenarios": [1, 2]})
        assert payload["old_speedup"] == 3.0
        assert payload["scenarios"] == [1, 2]

    def test_envelope_keys_win_over_legacy(self):
        # A stale pre-schema payload reusing an envelope name cannot corrupt
        # the schema fields.
        payload = bench_artifact(
            "demo",
            metrics={"speedup": 2.0},
            legacy={"benchmark": "stale-name", "metrics": "not-a-dict", "schema": "junk"},
        )
        assert payload["benchmark"] == "demo"
        assert payload["metrics"] == {"speedup": 2.0}
        assert payload["schema"] == BENCH_SCHEMA


class TestValidation:
    def test_rejects_wrong_schema_id(self):
        payload = bench_artifact("demo")
        payload["schema"] = "something-else"
        with pytest.raises(ValueError, match="unknown artifact schema"):
            validate_bench_artifact(payload)

    def test_rejects_bad_version(self):
        payload = bench_artifact("demo")
        payload["schema_version"] = 0
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench_artifact(payload)

    def test_rejects_empty_benchmark(self):
        payload = bench_artifact("demo")
        payload["benchmark"] = ""
        with pytest.raises(ValueError, match="benchmark"):
            validate_bench_artifact(payload)

    def test_rejects_malformed_sections(self):
        for key, bad in (("params", []), ("metrics", 3), ("records", {"a": 1})):
            payload = bench_artifact("demo")
            payload[key] = bad
            with pytest.raises(ValueError):
                validate_bench_artifact(payload)
        payload = bench_artifact("demo")
        payload["records"] = [{"ok": 1}, "not-a-dict"]
        with pytest.raises(ValueError, match="records"):
            validate_bench_artifact(payload)

    def test_rejects_non_dict_payload(self):
        with pytest.raises(TypeError):
            validate_bench_artifact([1, 2, 3])


class TestDiskRoundTrip:
    def test_write_returns_the_disk_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        written = write_bench_artifact(
            path,
            "demo",
            params={"dimension": 10},
            metrics={"speedup": 2.5},
            records=[{"workload": "w", "config": {}, "metrics": {"t": 0.5}}],
            legacy={"old_key": [1.0, 2.0]},
        )
        on_disk = json.loads(path.read_text())
        assert written == on_disk
        assert load_bench_artifact(path) == on_disk
        assert on_disk["old_key"] == [1.0, 2.0]

    def test_round_trip_preserves_float_bits(self, tmp_path):
        # Ratchet bars compare floats exactly against what landed on disk.
        value = 0.1 + 0.2  # 0.30000000000000004
        path = tmp_path / "BENCH_float.json"
        written = write_bench_artifact(path, "demo", metrics={"v": value})
        assert written["metrics"]["v"] == value

    def test_load_rejects_pre_schema_artifact(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"benchmark": "old", "speedup": 2.0}))
        with pytest.raises(ValueError, match="unknown artifact schema"):
            load_bench_artifact(path)


def test_repo_root_artifacts_conform_to_schema():
    """Every committed BENCH_*.json must round-trip through the validator."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    artifacts = sorted(root.glob("BENCH_*.json"))
    assert artifacts, "expected committed BENCH_*.json artifacts at the repo root"
    for path in artifacts:
        payload = load_bench_artifact(path)
        assert payload["benchmark"]
