"""Single- and multi-stage SID threshold estimation (Sections 2.3 and 2.4).

The single-stage estimator fits one SID to the whole absolute-gradient vector
and reads off the ``1 - delta`` quantile (Lemma 1).  For aggressive ratios the
fit is dominated by the near-zero bulk and misplaces the far tail, so the
multi-stage estimator applies the peak-over-threshold (PoT) argument of
extreme value theory (Lemma 2): compress to an intermediate ratio, re-fit the
exceedances, and compound per-stage ratios so the overall ratio equals the
target, ``delta = prod_m delta_m``.

Stage chaining follows the paper exactly:

* exponential first stage -> exponential on every later stage (Corollary 2.1),
* gamma first stage       -> generalized Pareto on later stages (Lemma 2),
* GP first stage          -> generalized Pareto on later stages (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compressors.base import OpRecord
from ..stats.fitting import SIDName, estimate_threshold, validate_sid

#: Default first-stage compression ratio used by the paper's evaluation (Section 4.1).
DEFAULT_FIRST_STAGE_RATIO = 0.25

#: Minimum number of exceedances required to fit another stage; below this the
#: estimator stops early and uses the last threshold (the fit would be noise).
MIN_STAGE_SAMPLE = 16


def stage_sid(first_stage: SIDName, stage_index: int) -> SIDName:
    """SID used at ``stage_index`` (0-based) given the first-stage choice."""
    validate_sid(first_stage)
    if stage_index == 0:
        return first_stage
    if first_stage == "exponential":
        return "exponential"
    return "gpareto"


def stage_ratios(delta: float, num_stages: int, first_stage_ratio: float = DEFAULT_FIRST_STAGE_RATIO) -> list[float]:
    """Per-stage ratios ``delta_m`` with ``prod_m delta_m == delta``.

    Stage one uses ``first_stage_ratio`` (0.25 in the paper); the remaining
    target ``delta / first_stage_ratio`` is split geometrically across the
    other stages.  When a single stage is requested, or the target is not
    aggressive enough to need staging (``delta >= first_stage_ratio``), the
    schedule collapses to ``[delta]``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if not 0.0 < first_stage_ratio < 1.0:
        raise ValueError(f"first_stage_ratio must be in (0, 1), got {first_stage_ratio}")
    if num_stages == 1 or delta >= first_stage_ratio:
        return [delta]
    remaining = delta / first_stage_ratio
    per_stage = remaining ** (1.0 / (num_stages - 1))
    ratios = [first_stage_ratio] + [per_stage] * (num_stages - 1)
    # Numerical correction so the product is exactly delta.
    product = float(np.prod(ratios))
    ratios[-1] *= delta / product
    return ratios


@dataclass
class ThresholdEstimate:
    """Result of a (possibly multi-stage) threshold estimation."""

    threshold: float
    stage_thresholds: list[float]
    stage_ratios: list[float]
    stages_used: int
    ops: list[OpRecord] = field(default_factory=list)


def estimate_single_stage(abs_gradient: np.ndarray, delta: float, sid: SIDName) -> ThresholdEstimate:
    """Single-stage estimation: fit once, take the ``1 - delta`` quantile."""
    arr = np.asarray(abs_gradient, dtype=np.float64).ravel()
    ops = _fit_ops(sid, arr.size)
    eta = estimate_threshold(arr, delta, sid, loc=0.0)
    return ThresholdEstimate(
        threshold=float(eta),
        stage_thresholds=[float(eta)],
        stage_ratios=[delta],
        stages_used=1,
        ops=ops,
    )


def estimate_multi_stage(
    abs_gradient: np.ndarray,
    delta: float,
    sid: SIDName,
    num_stages: int,
    *,
    first_stage_ratio: float = DEFAULT_FIRST_STAGE_RATIO,
    min_stage_sample: int = MIN_STAGE_SAMPLE,
) -> ThresholdEstimate:
    """Multi-stage PoT estimation per Section 2.4 / Algorithm 1's Sparsify loop.

    Each stage fits the current exceedance vector (values above the previous
    threshold), computes a stage threshold for its per-stage ratio, and
    filters.  Per-stage ratios are chosen so the product equals the target
    ratio *with respect to the exceedances actually produced by the previous
    stage* (Section 2.4 defines ``delta_2 = k_2 / k_1`` relative to the
    exceedance set): stage one uses ``first_stage_ratio``, intermediate
    stages split the remaining gap geometrically, and the final stage targets
    exactly ``k`` out of the current exceedance count.  Basing later ratios
    on the achieved exceedance count (rather than the nominal ``delta_1 d``)
    makes each stage correct the fitting error of the one before it, which is
    what drives ``k_hat / k`` toward 1 at aggressive ratios.
    """
    arr = np.asarray(abs_gradient, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot estimate a threshold from an empty gradient")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")

    target_k = delta * arr.size  # expected number of kept elements (not rounded)
    ops: list[OpRecord] = []
    stage_thresholds: list[float] = []
    used_ratios: list[float] = []

    current = arr
    eta_prev = 0.0
    for m in range(num_stages):
        if current.size < min_stage_sample:
            break
        # Overall ratio still needed, measured against the *current* exceedance set.
        needed = min(target_k / current.size, 0.999)
        remaining_stages = num_stages - m
        if remaining_stages == 1 or needed >= first_stage_ratio:
            delta_m = needed
            is_last = True
        elif m == 0:
            delta_m = first_stage_ratio
            is_last = False
        else:
            delta_m = float(max(needed ** (1.0 / remaining_stages), needed))
            is_last = False

        this_sid = stage_sid(sid, m)
        ops.extend(_fit_ops(this_sid, current.size))
        eta = estimate_threshold(current, delta_m, this_sid, loc=eta_prev)
        # Thresholds must be non-decreasing across stages; a decrease can only
        # come from fit noise on tiny exceedance samples.
        eta = max(eta, eta_prev)
        stage_thresholds.append(float(eta))
        used_ratios.append(float(delta_m))
        eta_prev = eta
        if is_last:
            break
        mask = current >= eta
        ops.append(OpRecord("elementwise", current.size))
        ops.append(OpRecord("compact", current.size, int(mask.sum())))
        current = current[mask]

    if not stage_thresholds:
        # Degenerate vector: fall back to a single-stage fit on everything.
        return estimate_single_stage(arr, delta, sid)

    return ThresholdEstimate(
        threshold=stage_thresholds[-1],
        stage_thresholds=stage_thresholds,
        stage_ratios=used_ratios,
        stages_used=len(stage_thresholds),
        ops=ops,
    )


def _fit_ops(sid: SIDName, size: int) -> list[OpRecord]:
    """Primitive-operation trace of one SID fit + quantile evaluation.

    * exponential: one mean reduction,
    * gamma: mean + mean-of-logs (a log elementwise pass plus two reductions),
    * generalized Pareto: mean + variance (two reductions).
    """
    if sid == "exponential":
        return [OpRecord("reduce", size)]
    if sid == "gamma":
        return [OpRecord("log_reduce", size), OpRecord("reduce", size)]
    return [OpRecord("reduce", size), OpRecord("reduce", size)]
