"""Adaptive stage controller (the ``Adapt_Stages`` routine of Algorithm 1).

SIDCo monitors the quality of its threshold estimates (the achieved ``k_hat``
versus the target ``k``) over a window of ``Q`` training iterations and
adjusts the number of fitting stages ``M`` so the average estimation error
stays inside the tolerance band ``(eps_low, eps_high)``.

Direction of adaptation
-----------------------
Single-stage fitting misplaces the far-tail quantile (Section 2.3): the fit is
dominated by the near-zero bulk, so at aggressive ratios the achieved ``k_hat``
can land far from ``k`` on *either* side depending on the gradient's tail
relative to the chosen SID.  Every additional peak-over-threshold stage
re-fits only the exceedances, which extreme value theory guarantees is closer
to the modelled family (Lemma 2), so adding a stage drives ``k_hat / k``
toward 1 regardless of the sign of the single-stage error — this is also what
we observe empirically (see ``benchmarks/test_ablation_stages.py``).

The default controller therefore *adds* a stage whenever the windowed average
falls outside the tolerance band and otherwise keeps the current count.
Extra configured stages are free when they are not needed: the estimator
collapses to fewer stages automatically once the remaining ratio is moderate
(see :func:`repro.core.threshold.estimate_multi_stage`).  The pseudocode
printed in the paper's Algorithm 1 instead decrements on over-selection and
increments on under-selection; that variant is available via
``paper_pseudocode_direction=True`` and is compared in the adaptation
ablation bench — with the printed rule the controller oscillates between one
and two stages on heavy-tailed gradients, which contradicts the paper's own
Figure 9o narrative ("settles at the final number of stages"), so the robust
rule is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageControllerConfig:
    """Tuning knobs of the stage controller (defaults follow Section 4.1)."""

    adaptation_interval: int = 5          # Q: iterations between adaptation decisions
    eps_high: float = 0.2                 # upper relative error tolerance (eps_H)
    eps_low: float = 0.2                  # lower relative error tolerance (eps_L)
    max_stages: int = 10                  # M_max
    initial_stages: int = 1               # the paper starts single-stage
    paper_pseudocode_direction: bool = False

    def __post_init__(self) -> None:
        if self.adaptation_interval < 1:
            raise ValueError("adaptation_interval must be >= 1")
        if not 0.0 <= self.eps_high < 1.0 or not 0.0 <= self.eps_low < 1.0:
            raise ValueError("eps_high and eps_low must be in [0, 1)")
        if self.max_stages < 1:
            raise ValueError("max_stages must be >= 1")
        if not 1 <= self.initial_stages <= self.max_stages:
            raise ValueError("initial_stages must be in [1, max_stages]")

    @property
    def error_tolerance(self) -> float:
        """The discrepancy tolerance ``eps`` of Eq. (12): ``max(eps_H, eps_L)``."""
        return max(self.eps_high, self.eps_low)


@dataclass
class StageController:
    """Tracks achieved selection sizes and adapts the number of stages."""

    config: StageControllerConfig = field(default_factory=StageControllerConfig)

    def __post_init__(self) -> None:
        self._stages = self.config.initial_stages
        self._window_sum = 0.0
        self._window_count = 0
        self._history: list[int] = [self._stages]

    @property
    def num_stages(self) -> int:
        """Number of fitting stages to use for the next compression call."""
        return self._stages

    @property
    def history(self) -> list[int]:
        """Stage counts after every adaptation decision (for diagnostics)."""
        return list(self._history)

    def reset(self) -> None:
        self._stages = self.config.initial_stages
        self._window_sum = 0.0
        self._window_count = 0
        self._history = [self._stages]

    def observe(self, achieved_k: int, target_k: int) -> int:
        """Record one iteration's selection size; adapt every ``Q`` observations.

        Returns the (possibly updated) number of stages to use next.
        """
        if target_k <= 0:
            raise ValueError("target_k must be positive")
        self._window_sum += float(achieved_k)
        self._window_count += 1
        if self._window_count >= self.config.adaptation_interval:
            avg_k = self._window_sum / self._window_count
            self._adapt(avg_k, target_k)
            self._window_sum = 0.0
            self._window_count = 0
        return self._stages

    def _adapt(self, avg_k: float, target_k: int) -> None:
        cfg = self.config
        over = avg_k > target_k * (1.0 + cfg.eps_high)
        under = avg_k < target_k * (1.0 - cfg.eps_low)
        if cfg.paper_pseudocode_direction:
            delta = -1 if over else (1 if under else 0)
        else:
            # Robust rule: any out-of-band error means the current depth of
            # tail re-fitting is insufficient, so add a stage.
            delta = 1 if (over or under) else 0
        if delta:
            self._stages = int(min(max(self._stages + delta, 1), cfg.max_stages))
        self._history.append(self._stages)
