"""SIDCo: Sparsity-Inducing Distribution-based Compression (Algorithm 1).

``SIDCo`` is the paper's primary contribution: a linear-time, threshold-based
gradient sparsifier.  Each call

1. estimates a threshold by fitting the configured SID to the absolute
   gradient with the current number of stages (multi-stage peak-over-threshold
   fitting when the controller has escalated beyond one stage),
2. keeps every gradient element whose magnitude is at least the threshold,
3. reports the achieved selection to the stage controller, which adapts the
   number of stages every ``Q`` iterations so the achieved ratio stays within
   the tolerance band around the target.

Three variants correspond to the paper's SIDCo-E (exponential), SIDCo-P
(multi-stage generalized Pareto) and SIDCo-GP (gamma first stage followed by
generalized Pareto stages).
"""

from __future__ import annotations

import numpy as np

from ..compressors.base import BucketedFit, Compressor, CompressionResult, OpRecord
from ..stats.fitting import SIDName, validate_sid
from .stages import StageController, StageControllerConfig
from .threshold import DEFAULT_FIRST_STAGE_RATIO, estimate_multi_stage

#: Map from the paper's variant names to the first-stage SID they use.
VARIANT_TO_SID: dict[str, SIDName] = {
    "sidco-e": "exponential",
    "sidco-gp": "gamma",
    "sidco-p": "gpareto",
}


class SIDCo(Compressor):
    """Statistical threshold sparsifier with adaptive multi-stage fitting.

    Parameters
    ----------
    sid:
        First-stage sparsity-inducing distribution: ``"exponential"``,
        ``"gamma"`` or ``"gpareto"``.
    first_stage_ratio:
        Intermediate compression ratio used by the first stage when more than
        one stage is active (0.25 in the paper's evaluation).
    controller:
        Stage-adaptation configuration (``Q``, tolerance band, max stages,
        initial stages).  A fresh :class:`StageController` is built from it.
    """

    name = "sidco"

    def __init__(
        self,
        sid: SIDName = "exponential",
        *,
        first_stage_ratio: float = DEFAULT_FIRST_STAGE_RATIO,
        controller: StageControllerConfig | None = None,
    ) -> None:
        self.sid = validate_sid(sid)
        if not 0.0 < first_stage_ratio < 1.0:
            raise ValueError(f"first_stage_ratio must be in (0, 1), got {first_stage_ratio}")
        self.first_stage_ratio = first_stage_ratio
        self.controller = StageController(controller or StageControllerConfig())
        self.name = f"sidco-{_sid_suffix(self.sid)}"

    @classmethod
    def from_variant(cls, variant: str, **kwargs) -> "SIDCo":
        """Build a SIDCo instance from a paper variant name (``sidco-e``/``-gp``/``-p``)."""
        key = variant.lower()
        if key not in VARIANT_TO_SID:
            raise ValueError(f"unknown SIDCo variant {variant!r}; expected one of {sorted(VARIANT_TO_SID)}")
        return cls(sid=VARIANT_TO_SID[key], **kwargs)

    def reset(self) -> None:
        self.controller.reset()

    @property
    def num_stages(self) -> int:
        """Current number of fitting stages chosen by the controller."""
        return self.controller.num_stages

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        target_k = self._target_k(d, ratio)

        abs_grad = np.abs(arr)
        if d < 2 or float(abs_grad.max()) == 0.0:
            # Degenerate input (single element, or no tail at all): there is
            # nothing to fit, so fall back to an exact-k selection instead of
            # handing the SID fitters an empty/ill-posed sample.
            result = self._result_from_topk(
                arr,
                target_k,
                ratio,
                ops=[_abs_pass(d)],
                metadata={"sid": self.sid, "degenerate": True},
            )
            self.controller.observe(result.achieved_k, target_k)
            return result

        estimate = estimate_multi_stage(
            abs_grad,
            ratio,
            self.sid,
            self.controller.num_stages,
            first_stage_ratio=self.first_stage_ratio,
        )
        ops = list(estimate.ops)
        # The |g| pass feeding the estimator.
        ops.insert(0, _abs_pass(d))

        result = self._result_from_threshold(
            arr,
            estimate.threshold,
            ratio,
            ops,
            metadata={
                "sid": self.sid,
                "stages_used": estimate.stages_used,
                "stage_thresholds": estimate.stage_thresholds,
                "stage_ratios": estimate.stage_ratios,
                "num_stages_configured": self.controller.num_stages,
            },
        )
        self.controller.observe(result.achieved_k, target_k)
        return result

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit | None:
        """Batched per-bucket SID fitting (the PR-1 vectorized fast path).

        Declines (returns ``None``) on degenerate gradients with no tail to
        fit; the pipeline then falls back to the whole-vector degenerate
        handling of :meth:`compress`.  The stage controller is *not* observed
        here — the pipeline observes the global achieved selection once per
        call, exactly like the unbucketed compressor.
        """
        # Deferred import: repro.pipeline imports this module at load time.
        from ..pipeline.vectorized import _bucket_mask_and_counts, estimate_multi_stage_bucketed

        arr = np.asarray(gradient, dtype=np.float64).ravel()
        d = arr.size
        abs_flat = np.abs(arr)
        if d < 2 or float(abs_flat.max()) == 0.0:
            return None

        ops = [_abs_pass(d)]
        estimate = estimate_multi_stage_bucketed(
            abs_flat,
            layout,
            ratio,
            self.sid,
            self.controller.num_stages,
            first_stage_ratio=self.first_stage_ratio,
        )
        ops.extend(estimate.ops)
        mask, bucket_nnz = _bucket_mask_and_counts(abs_flat, layout, estimate.thresholds)
        ops.append(OpRecord("elementwise", d))
        ops.append(OpRecord("compact", d, int(bucket_nnz.sum())))
        indices = np.flatnonzero(mask)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=bucket_nnz,
            bucket_thresholds=estimate.thresholds,
            target_ratio=ratio,
            ops=ops,
            metadata={
                "sid": self.sid,
                "num_stages_configured": self.controller.num_stages,
                "stages_used": estimate.max_stages_used,
                "bucket_stages_used": estimate.stages_used,
            },
        )


def _sid_suffix(sid: str) -> str:
    return {"exponential": "e", "gamma": "gp", "gpareto": "p"}[sid]


def _abs_pass(size: int):
    from ..compressors.base import OpRecord

    return OpRecord("elementwise", size)
