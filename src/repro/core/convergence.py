"""Convergence-analysis helpers (Section 3.1, Lemma 3 and Appendix C).

These functions express the paper's convergence statements as computable
quantities: the k-contraction factor of threshold sparsification, the bound on
the number of iterations after which compressed SGD with error feedback
matches the plain SGD rate, and the inflation of that bound caused by an
imperfect threshold (estimation error tolerance ``eps``).
"""

from __future__ import annotations

from dataclasses import dataclass


def contraction_factor(delta: float) -> float:
    """Expected contraction ``E||C(g) - g||^2 <= (1 - delta) E||g||^2`` (Eq. 42)."""
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return 1.0 - delta


def iterations_to_sgd_rate(delta: float, eps: float = 0.0) -> float:
    """Iterations after which compressed SGD matches the SGD rate (Eq. 13).

    ``O(1 / (delta^2 (1 - eps)^2))`` — the worst case where the achieved ratio
    under-shoots the target by the tolerance ``eps``.
    """
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    if not 0.0 <= eps < 1.0:
        raise ValueError(f"eps must be in [0, 1), got {eps}")
    return 1.0 / (delta**2 * (1.0 - eps) ** 2)


def extra_iterations_fraction(eps: float) -> float:
    """Fractional extra iterations vs exact Top-k caused by tolerance ``eps``.

    For ``eps = 0.2`` this is about 0.5625, i.e. "at most about 50% more
    iterations than Top-k" as stated below Lemma 3.
    """
    if not 0.0 <= eps < 1.0:
        raise ValueError(f"eps must be in [0, 1), got {eps}")
    return 1.0 / (1.0 - eps) ** 2 - 1.0


@dataclass(frozen=True)
class ConvergenceBound:
    """Summary of the convergence bound for a compression configuration."""

    delta: float
    eps: float
    contraction: float
    iterations_to_rate: float
    extra_vs_topk_fraction: float

    @classmethod
    def for_config(cls, delta: float, eps: float) -> "ConvergenceBound":
        return cls(
            delta=delta,
            eps=eps,
            contraction=contraction_factor(delta),
            iterations_to_rate=iterations_to_sgd_rate(delta, eps),
            extra_vs_topk_fraction=extra_iterations_fraction(eps),
        )


def error_feedback_residual_bound(delta: float, iterations: int, grad_second_moment: float, smoothness: float) -> float:
    """Second term of the EC-SGD bound (Eq. 43): ``4 L^2 sigma^2 (1 - delta) / (delta^2 (I + 1))``."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return 4.0 * smoothness**2 * grad_second_moment * (1.0 - delta) / (delta**2 * (iterations + 1))
