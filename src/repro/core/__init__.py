"""SIDCo core: threshold estimation, stage adaptation, and the compressor."""

from .convergence import (
    ConvergenceBound,
    contraction_factor,
    error_feedback_residual_bound,
    extra_iterations_fraction,
    iterations_to_sgd_rate,
)
from .sidco import SIDCo, VARIANT_TO_SID
from .stages import StageController, StageControllerConfig
from .threshold import (
    DEFAULT_FIRST_STAGE_RATIO,
    MIN_STAGE_SAMPLE,
    ThresholdEstimate,
    estimate_multi_stage,
    estimate_single_stage,
    stage_ratios,
    stage_sid,
)

__all__ = [
    "DEFAULT_FIRST_STAGE_RATIO",
    "MIN_STAGE_SAMPLE",
    "VARIANT_TO_SID",
    "ConvergenceBound",
    "SIDCo",
    "StageController",
    "StageControllerConfig",
    "ThresholdEstimate",
    "contraction_factor",
    "error_feedback_residual_bound",
    "estimate_multi_stage",
    "estimate_single_stage",
    "extra_iterations_fraction",
    "iterations_to_sgd_rate",
    "stage_ratios",
    "stage_sid",
]
