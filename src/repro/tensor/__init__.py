"""Tensor utilities: flatten/unflatten parameter groups and sparse gradients."""

from .flatten import FlatSpec, TensorSlot, flatten, unflatten
from .sparse import FLOAT_BYTES, INDEX_BYTES, SparseGradient, aggregate_sparse

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "FlatSpec",
    "SparseGradient",
    "TensorSlot",
    "aggregate_sparse",
    "flatten",
    "unflatten",
]
