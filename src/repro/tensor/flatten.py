"""Flattening utilities: pack per-layer gradients into one vector and back.

Distributed training frameworks hand compressors either per-tensor gradients
or a single flattened buffer.  SIDCo (like Top-k/DGC in the paper's Horovod
integration) operates on the flattened view, so this module provides a
``FlatSpec`` that remembers each parameter's name, shape and offset and can
round-trip between a dict of arrays and one contiguous float64 vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TensorSlot:
    """Location of one named tensor inside a flattened buffer."""

    name: str
    shape: tuple[int, ...]
    offset: int
    size: int


@dataclass(frozen=True)
class FlatSpec:
    """Layout of a flattened parameter/gradient buffer."""

    slots: tuple[TensorSlot, ...]
    total_size: int

    @classmethod
    def from_named_shapes(cls, named_shapes: dict[str, tuple[int, ...]]) -> "FlatSpec":
        slots: list[TensorSlot] = []
        offset = 0
        for name, shape in named_shapes.items():
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            slots.append(TensorSlot(name=name, shape=tuple(shape), offset=offset, size=size))
            offset += size
        return cls(slots=tuple(slots), total_size=offset)

    @classmethod
    def from_arrays(cls, named_arrays: dict[str, np.ndarray]) -> "FlatSpec":
        return cls.from_named_shapes({name: tuple(arr.shape) for name, arr in named_arrays.items()})

    def slot(self, name: str) -> TensorSlot:
        for s in self.slots:
            if s.name == name:
                return s
        raise KeyError(f"no tensor named {name!r} in FlatSpec")

    def offsets(self) -> np.ndarray:
        """Start offset of every slot, in layout order."""
        return np.asarray([s.offset for s in self.slots], dtype=np.int64)

    def slot_sizes(self) -> np.ndarray:
        """Element count of every slot, in layout order."""
        return np.asarray([s.size for s in self.slots], dtype=np.int64)


def flatten(named_arrays: dict[str, np.ndarray], spec: FlatSpec | None = None) -> tuple[np.ndarray, FlatSpec]:
    """Concatenate named arrays into a single 1-D float64 vector."""
    if spec is None:
        spec = FlatSpec.from_arrays(named_arrays)
    flat = np.empty(spec.total_size, dtype=np.float64)
    for slot in spec.slots:
        arr = np.asarray(named_arrays[slot.name], dtype=np.float64)
        if arr.size != slot.size:
            raise ValueError(
                f"tensor {slot.name!r} has {arr.size} elements but the spec expects {slot.size}"
            )
        flat[slot.offset : slot.offset + slot.size] = arr.ravel()
    return flat, spec


def unflatten(flat: np.ndarray, spec: FlatSpec) -> dict[str, np.ndarray]:
    """Split a flat vector back into named arrays with their original shapes."""
    flat = np.asarray(flat, dtype=np.float64).ravel()
    if flat.size != spec.total_size:
        raise ValueError(f"flat vector has {flat.size} elements but the spec expects {spec.total_size}")
    out: dict[str, np.ndarray] = {}
    for slot in spec.slots:
        out[slot.name] = flat[slot.offset : slot.offset + slot.size].reshape(slot.shape).copy()
    return out
