"""Sparse gradient representation with wire-volume accounting.

Sparsified gradients travel over the network as ``(indices, values)`` pairs.
The communication-volume model the speed-up figures depend on (Figures 3, 5,
6, 10, 13) needs a faithful account of how many bytes each representation
costs, so the sparse container records its dense dimension and exposes both
its payload size and the dense equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FLOAT_BYTES = 4  # the paper's systems ship fp32 gradients
INDEX_BYTES = 4  # int32 indices, as used by the Horovod/PyTorch integrations


@dataclass(frozen=True)
class SparseGradient:
    """A k-sparse view of a d-dimensional gradient vector."""

    indices: np.ndarray
    values: np.ndarray
    dense_size: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices)
        values = np.asarray(self.values)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be 1-D arrays")
        if indices.size != values.size:
            raise ValueError(
                f"indices ({indices.size}) and values ({values.size}) must have the same length"
            )
        if self.dense_size < indices.size:
            raise ValueError("dense_size cannot be smaller than the number of non-zeros")
        if indices.size and (indices.min() < 0 or indices.max() >= self.dense_size):
            raise ValueError("indices out of range for dense_size")
        object.__setattr__(self, "indices", indices.astype(np.int64, copy=False))
        object.__setattr__(self, "values", values.astype(np.float64, copy=False))

    @property
    def nnz(self) -> int:
        """Number of transmitted (non-zero) elements."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Achieved compression ratio ``k_hat / d``."""
        return self.nnz / self.dense_size if self.dense_size else 0.0

    def payload_bytes(self) -> int:
        """Bytes on the wire for the sparse representation (values + indices)."""
        return self.nnz * (FLOAT_BYTES + INDEX_BYTES)

    def dense_bytes(self) -> int:
        """Bytes on the wire for the equivalent uncompressed gradient."""
        return self.dense_size * FLOAT_BYTES

    def volume_reduction(self) -> float:
        """Dense bytes divided by sparse bytes (how much communication shrank)."""
        payload = self.payload_bytes()
        if payload == 0:
            return float("inf")
        return self.dense_bytes() / payload

    def to_dense(self) -> np.ndarray:
        """Materialise the dense vector (zeros everywhere except the kept entries)."""
        dense = np.zeros(self.dense_size, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseGradient":
        """Build a sparse gradient from a dense vector, keeping exact non-zeros."""
        dense = np.asarray(dense, dtype=np.float64).ravel()
        indices = np.flatnonzero(dense)
        return cls(indices=indices, values=dense[indices], dense_size=dense.size)

    @classmethod
    def from_mask(cls, dense: np.ndarray, mask: np.ndarray) -> "SparseGradient":
        """Build a sparse gradient keeping only elements where ``mask`` is True."""
        dense = np.asarray(dense, dtype=np.float64).ravel()
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.size != dense.size:
            raise ValueError("mask and dense vector must have the same length")
        indices = np.flatnonzero(mask)
        return cls(indices=indices, values=dense[indices], dense_size=dense.size)


def aggregate_sparse(gradients: list[SparseGradient]) -> np.ndarray:
    """Sum a list of sparse gradients into one dense vector (all-gather semantics).

    This mirrors the paper's peer-to-peer aggregation: every worker gathers all
    sparse contributions and sums them locally; indices from different workers
    may overlap or not.
    """
    if not gradients:
        raise ValueError("need at least one sparse gradient to aggregate")
    dense_size = gradients[0].dense_size
    total = np.zeros(dense_size, dtype=np.float64)
    for grad in gradients:
        if grad.dense_size != dense_size:
            raise ValueError("all sparse gradients must share the same dense size")
        np.add.at(total, grad.indices, grad.values)
    return total
