"""RedSync trimmed-threshold heuristic (Fang et al., 2019).

RedSync searches for a threshold by moving a ratio between the mean and the
maximum of the absolute gradient: starting near the max, it repeatedly lowers
the threshold until at least ``k`` elements exceed it (or an iteration budget
runs out).  The search is cheap (each probe is one vectorised comparison) but
its stopping rule is coarse, so the selected count can land anywhere in a wide
band around ``k`` — the noisy estimation quality the paper shows in Figures
1c, 3c/f and 4b/d, with severe under-selection at aggressive ratios.
"""

from __future__ import annotations

import numpy as np

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import (
    abs_block,
    bucket_target_ks,
    concat_indices,
    probe_round_ops,
    select_ge,
    workspace_for,
)


class RedSync(Compressor):
    """Mean/max interpolation threshold search.

    Parameters
    ----------
    max_search_iters:
        Budget of probe iterations.  RedSync's published implementation uses a
        small fixed budget so that the search cost stays linear; the same
        budget is what makes its achieved ratio fluctuate.
    shrink_factor:
        Multiplicative step applied to the interpolation coefficient each time
        the probe selects fewer than ``k`` elements.
    """

    name = "redsync"

    def __init__(self, max_search_iters: int = 10, shrink_factor: float = 0.5) -> None:
        if max_search_iters < 1:
            raise ValueError("max_search_iters must be >= 1")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.max_search_iters = max_search_iters
        self.shrink_factor = shrink_factor

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        ops: list[OpRecord] = []

        mags = np.abs(arr)
        ops.append(OpRecord("elementwise", d))
        mean = float(mags.mean())
        maximum = float(mags.max())
        ops.append(OpRecord("reduce", d))
        ops.append(OpRecord("reduce", d))

        if maximum <= mean or maximum == 0.0:
            # Degenerate vector (constant magnitudes): keep everything above the mean.
            return self._result_from_threshold(arr, mean, ratio, ops, {"iterations": 0})

        # Interpolate between max and mean: threshold = mean + alpha * (max - mean),
        # starting close to the max and lowering alpha until >= k elements pass.
        alpha = 1.0
        threshold = maximum
        iterations = 0
        selected = 1
        for iterations in range(1, self.max_search_iters + 1):
            alpha *= self.shrink_factor
            threshold = mean + alpha * (maximum - mean)
            selected = int(np.count_nonzero(mags >= threshold))
            ops.append(OpRecord("elementwise", d))
            ops.append(OpRecord("reduce", d))
            if selected >= k:
                break

        return self._result_from_threshold(
            arr, threshold, ratio, ops, {"iterations": iterations, "selected_at_stop": selected}
        )

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        sizes = layout.sizes()
        num = layout.num_buckets
        ks = bucket_target_ks(sizes, ratio)

        # Each bucket's probe search runs off one cache-hot |g| scratch block
        # (the probes are data-dependent, so blocking — not stage-major 2-D
        # broadcasting — is what keeps this faster than the scalar loop); the
        # interpolation arithmetic and the fused trace batch across buckets.
        scratch = workspace_for(layout)
        idx_chunks: list[np.ndarray] = []
        bucket_nnz = np.empty(num, dtype=np.int64)
        thresholds: list[float] = []
        probe_iters = np.zeros(num, dtype=np.int64)
        for i in range(num):
            start, stop = layout.bounds(i)
            mags = abs_block(arr, start, stop, scratch)
            mean = float(mags.mean())
            maximum = float(mags.max())
            if maximum <= mean or maximum == 0.0:
                threshold = mean
            else:
                alpha = 1.0
                threshold = maximum
                for iterations in range(1, self.max_search_iters + 1):
                    alpha *= self.shrink_factor
                    threshold = mean + alpha * (maximum - mean)
                    if int(np.count_nonzero(mags >= threshold)) >= ks[i]:
                        break
                probe_iters[i] = iterations
            idx = select_ge(mags, threshold, start)
            idx_chunks.append(idx)
            bucket_nnz[i] = idx.size
            thresholds.append(float(threshold))

        d = arr.size
        ops = [OpRecord("elementwise", d), OpRecord("reduce", d), OpRecord("reduce", d)]
        ops.extend(probe_round_ops(sizes, probe_iters))
        ops.append(OpRecord("elementwise", d))
        ops.append(OpRecord("compact", d, int(bucket_nnz.sum())))

        indices = concat_indices(idx_chunks)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=bucket_nnz,
            bucket_thresholds=thresholds,
            target_ratio=ratio,
            ops=ops,
        )
