"""RedSync trimmed-threshold heuristic (Fang et al., 2019).

RedSync searches for a threshold by moving a ratio between the mean and the
maximum of the absolute gradient: starting near the max, it repeatedly lowers
the threshold until at least ``k`` elements exceed it (or an iteration budget
runs out).  The search is cheap (each probe is one vectorised comparison) but
its stopping rule is coarse, so the selected count can land anywhere in a wide
band around ``k`` — the noisy estimation quality the paper shows in Figures
1c, 3c/f and 4b/d, with severe under-selection at aggressive ratios.
"""

from __future__ import annotations

import numpy as np

from .base import Compressor, CompressionResult, OpRecord


class RedSync(Compressor):
    """Mean/max interpolation threshold search.

    Parameters
    ----------
    max_search_iters:
        Budget of probe iterations.  RedSync's published implementation uses a
        small fixed budget so that the search cost stays linear; the same
        budget is what makes its achieved ratio fluctuate.
    shrink_factor:
        Multiplicative step applied to the interpolation coefficient each time
        the probe selects fewer than ``k`` elements.
    """

    name = "redsync"

    def __init__(self, max_search_iters: int = 10, shrink_factor: float = 0.5) -> None:
        if max_search_iters < 1:
            raise ValueError("max_search_iters must be >= 1")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.max_search_iters = max_search_iters
        self.shrink_factor = shrink_factor

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        ops: list[OpRecord] = []

        mags = np.abs(arr)
        ops.append(OpRecord("elementwise", d))
        mean = float(mags.mean())
        maximum = float(mags.max())
        ops.append(OpRecord("reduce", d))
        ops.append(OpRecord("reduce", d))

        if maximum <= mean or maximum == 0.0:
            # Degenerate vector (constant magnitudes): keep everything above the mean.
            return self._result_from_threshold(arr, mean, ratio, ops, {"iterations": 0})

        # Interpolate between max and mean: threshold = mean + alpha * (max - mean),
        # starting close to the max and lowering alpha until >= k elements pass.
        alpha = 1.0
        threshold = maximum
        iterations = 0
        selected = 1
        for iterations in range(1, self.max_search_iters + 1):
            alpha *= self.shrink_factor
            threshold = mean + alpha * (maximum - mean)
            selected = int(np.count_nonzero(mags >= threshold))
            ops.append(OpRecord("elementwise", d))
            ops.append(OpRecord("reduce", d))
            if selected >= k:
                break

        return self._result_from_threshold(
            arr, threshold, ratio, ops, {"iterations": iterations, "selected_at_stop": selected}
        )
