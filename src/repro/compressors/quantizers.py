"""Gradient quantizers (related-work baselines: sign-SGD and TernGrad style).

The paper's Section 1.1 discusses quantization as the other family of gradient
compressors: volume reduction is capped at 32x (one bit per 32-bit float) and
error compensation is required for convergence at low bit widths.  These two
quantizers are provided as extension baselines so the library covers both
compression families; they are not part of the sparsifier registry because
their output is dense (every coordinate is transmitted, just with fewer bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import OpRecord

FLOAT_BITS = 32


@dataclass
class QuantizationResult:
    """Output of a quantizer: the dequantized gradient plus volume accounting."""

    dequantized: np.ndarray
    bits_per_element: float
    ops: list[OpRecord]
    metadata: dict

    @property
    def volume_reduction(self) -> float:
        """Dense fp32 bytes divided by quantized payload bytes."""
        return FLOAT_BITS / self.bits_per_element

    def payload_bytes(self) -> float:
        return self.dequantized.size * self.bits_per_element / 8.0


class SignSGD:
    """One-bit quantization with an L1 scale (EF-SignSGD style).

    Transmits ``sign(g)`` plus one scalar ``mean(|g|)`` per call; the
    dequantized gradient is ``mean(|g|) * sign(g)``, which is the form whose
    convergence error feedback repairs (Karimireddy et al., 2019).
    """

    name = "signsgd"

    def quantize(self, gradient: np.ndarray) -> QuantizationResult:
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        scale = float(np.mean(np.abs(grad)))
        signs = np.sign(grad)
        # Zero entries are transmitted as +1 by convention (they carry no scale anyway).
        signs[signs == 0.0] = 1.0
        ops = [OpRecord("elementwise", grad.size), OpRecord("reduce", grad.size)]
        return QuantizationResult(
            dequantized=scale * signs,
            bits_per_element=1.0 + FLOAT_BITS / grad.size,
            ops=ops,
            metadata={"scale": scale},
        )


class TernGrad:
    """Ternary quantization: each coordinate becomes {-s, 0, +s} stochastically.

    ``s`` is the max magnitude; each element keeps its sign with probability
    ``|g_i| / s`` and is zeroed otherwise, which makes the quantizer unbiased
    (``E[Q(g)] = g``).
    """

    name = "terngrad"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def quantize(self, gradient: np.ndarray) -> QuantizationResult:
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        scale = float(np.max(np.abs(grad)))
        if scale == 0.0:
            ternary = np.zeros_like(grad)
        else:
            keep_prob = np.abs(grad) / scale
            keep = self._rng.uniform(size=grad.size) < keep_prob
            ternary = np.where(keep, np.sign(grad) * scale, 0.0)
        ops = [
            OpRecord("elementwise", grad.size),
            OpRecord("reduce", grad.size),
            OpRecord("random_sample", grad.size, int(np.count_nonzero(ternary))),
        ]
        return QuantizationResult(
            dequantized=ternary,
            bits_per_element=np.log2(3.0) + FLOAT_BITS / grad.size,
            ops=ops,
            metadata={"scale": scale, "nonzero": int(np.count_nonzero(ternary))},
        )
