"""Gradient quantizers (related-work baselines: sign-SGD and TernGrad style).

The paper's Section 1.1 discusses quantization as the other family of gradient
compressors: volume reduction is capped at 32x (one bit per 32-bit float) and
error compensation is required for convergence at low bit widths.  These two
quantizers are provided as extension baselines so the library covers both
compression families; they are not part of the sparsifier registry because
their output is dense (every coordinate is transmitted, just with fewer bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import OpRecord

FLOAT_BITS = 32


@dataclass
class QuantizationResult:
    """Output of a quantizer: the dequantized gradient plus volume accounting."""

    dequantized: np.ndarray
    bits_per_element: float
    ops: list[OpRecord]
    metadata: dict

    @property
    def volume_reduction(self) -> float:
        """Dense fp32 bytes divided by quantized payload bytes."""
        return FLOAT_BITS / self.bits_per_element

    def payload_bytes(self) -> float:
        return self.dequantized.size * self.bits_per_element / 8.0


class SignSGD:
    """One-bit quantization with an L1 scale (EF-SignSGD style).

    Transmits ``sign(g)`` plus one scalar ``mean(|g|)`` per call; the
    dequantized gradient is ``mean(|g|) * sign(g)``, which is the form whose
    convergence error feedback repairs (Karimireddy et al., 2019).
    """

    name = "signsgd"

    def quantize(self, gradient: np.ndarray) -> QuantizationResult:
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        scale = float(np.mean(np.abs(grad)))
        signs = np.sign(grad)
        # Zero entries are transmitted as +1 by convention (they carry no scale anyway).
        signs[signs == 0.0] = 1.0
        ops = [OpRecord("elementwise", grad.size), OpRecord("reduce", grad.size)]
        return QuantizationResult(
            dequantized=scale * signs,
            bits_per_element=1.0 + FLOAT_BITS / grad.size,
            ops=ops,
            metadata={"scale": scale},
        )

    def quantize_all_buckets(self, gradient: np.ndarray, layout) -> QuantizationResult:
        """Batched per-bucket sign quantization: one pass, one scale per bucket.

        Bit-for-bit equivalent to quantizing each bucket view of ``layout``
        and concatenating the dequantized outputs; the payload accounting
        carries one fp32 scale per bucket instead of one per call.
        """
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        # Per-bucket L1 means stay per-block 1-D reductions (pairwise, like
        # the scalar path) rather than reduceat sums, to keep bit equality.
        scales = np.empty(layout.num_buckets)
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            scales[i] = np.mean(np.abs(grad[start:stop]))
        signs = np.sign(grad)
        signs[signs == 0.0] = 1.0
        dequantized = np.repeat(scales, layout.sizes()) * signs
        ops = [OpRecord("elementwise", grad.size), OpRecord("reduce", grad.size)]
        return QuantizationResult(
            dequantized=dequantized,
            bits_per_element=1.0 + FLOAT_BITS * layout.num_buckets / grad.size,
            ops=ops,
            metadata={"bucket_scales": scales.tolist(), "num_buckets": layout.num_buckets},
        )


class TernGrad:
    """Ternary quantization: each coordinate becomes {-s, 0, +s} stochastically.

    ``s`` is the max magnitude; each element keeps its sign with probability
    ``|g_i| / s`` and is zeroed otherwise, which makes the quantizer unbiased
    (``E[Q(g)] = g``).
    """

    name = "terngrad"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def quantize(self, gradient: np.ndarray) -> QuantizationResult:
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        scale = float(np.max(np.abs(grad)))
        if scale == 0.0:
            ternary = np.zeros_like(grad)
        else:
            keep_prob = np.abs(grad) / scale
            keep = self._rng.uniform(size=grad.size) < keep_prob
            ternary = np.where(keep, np.sign(grad) * scale, 0.0)
        ops = [
            OpRecord("elementwise", grad.size),
            OpRecord("reduce", grad.size),
            OpRecord("random_sample", grad.size, int(np.count_nonzero(ternary))),
        ]
        return QuantizationResult(
            dequantized=ternary,
            bits_per_element=np.log2(3.0) + FLOAT_BITS / grad.size,
            ops=ops,
            metadata={"scale": scale, "nonzero": int(np.count_nonzero(ternary))},
        )

    def quantize_all_buckets(self, gradient: np.ndarray, layout) -> QuantizationResult:
        """Batched per-bucket ternary quantization with one max-scale per bucket.

        Keep-draws replay the scalar loop's generator consumption: the
        per-bucket uniform draws of a Generator stream are bit-identical
        whether drawn bucket by bucket or in one fused draw, and all-zero
        buckets draw nothing (exactly like the scalar path), so the output
        matches the per-bucket loop bit-for-bit.
        """
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size == 0:
            raise ValueError("cannot quantize an empty gradient")
        mags = np.abs(grad)
        scales = np.empty(layout.num_buckets)
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            scales[i] = mags[start:stop].max()
        ternary = np.zeros_like(grad)
        if np.all(scales > 0.0):
            # Fast path: one fused draw for the whole gradient (stream-equal
            # to per-bucket draws when no bucket is skipped).
            spread = np.repeat(scales, layout.sizes())
            keep = self._rng.uniform(size=grad.size) < mags / spread
            np.multiply(np.sign(grad), spread, where=keep, out=ternary)
        else:
            for i in range(layout.num_buckets):
                if scales[i] == 0.0:
                    continue  # scalar path draws nothing for all-zero buckets
                start, stop = layout.bounds(i)
                keep = self._rng.uniform(size=stop - start) < mags[start:stop] / scales[i]
                np.multiply(np.sign(grad[start:stop]), scales[i], where=keep, out=ternary[start:stop])
        ops = [
            OpRecord("elementwise", grad.size),
            OpRecord("reduce", grad.size),
            OpRecord("random_sample", grad.size, int(np.count_nonzero(ternary))),
        ]
        return QuantizationResult(
            dequantized=ternary,
            bits_per_element=np.log2(3.0) + FLOAT_BITS * layout.num_buckets / grad.size,
            ops=ops,
            metadata={"bucket_scales": scales.tolist(), "num_buckets": layout.num_buckets},
        )
