"""Gradient compressors: SIDCo baselines and competitors."""

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .dgc import DGC
from .gaussiank import GaussianKSGD
from .randomk import RandomK
from .redsync import RedSync
from .registry import (
    PAPER_COMPRESSORS,
    SIDCO_VARIANTS,
    available_compressors,
    create_compressor,
    register_compressor,
)
from .threshold_fixed import AdaptiveHardThreshold
from .topk import NoCompression, TopK

__all__ = [
    "DGC",
    "PAPER_COMPRESSORS",
    "SIDCO_VARIANTS",
    "AdaptiveHardThreshold",
    "BucketedFit",
    "Compressor",
    "CompressionResult",
    "GaussianKSGD",
    "NoCompression",
    "OpRecord",
    "RandomK",
    "RedSync",
    "TopK",
    "available_compressors",
    "create_compressor",
    "register_compressor",
]
