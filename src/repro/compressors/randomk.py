"""Random-k sparsification baseline (Wangni et al., 2018 style)."""

from __future__ import annotations

import numpy as np

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import bucket_target_ks, concat_indices
from ..tensor.sparse import SparseGradient


class RandomK(Compressor):
    """Keep a uniformly random subset of ``k`` elements, rescaled by ``d/k``.

    The rescaling keeps the sparsified gradient unbiased
    (``E[C(g)] = g``), which is the standard Random-k estimator.  Selection is
    magnitude-oblivious, so its approximation error is far worse than Top-k —
    the reason the paper (like DGC) treats Top-k as the quality reference.
    """

    name = "randomk"

    def __init__(self, seed: int = 0, rescale: bool = True) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.rescale = rescale

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        indices = self._rng.choice(d, size=k, replace=False)
        values = arr[indices]
        if self.rescale:
            values = values * (d / k)
        ops = [OpRecord("random_sample", d, k), OpRecord("compact", k, k)]
        sparse = SparseGradient(indices=indices, values=values, dense_size=d)
        return CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=None,
            ops=ops,
            metadata={"rescaled": self.rescale},
        )

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        sizes = layout.sizes()
        starts = layout.starts()
        ks = bucket_target_ks(sizes, ratio)

        # Replay the scalar loop's per-bucket draws on the shared generator
        # (same stream), then gather and rescale every bucket in one pass.
        idx_chunks = [
            starts[i] + self._rng.choice(int(sizes[i]), size=int(ks[i]), replace=False)
            for i in range(layout.num_buckets)
        ]
        indices = concat_indices(idx_chunks)
        values = arr[indices]
        if self.rescale:
            values = values * np.repeat(sizes / ks, ks)

        total_k = int(ks.sum())
        return BucketedFit(
            indices=indices,
            values=values,
            bucket_nnz=ks,
            bucket_thresholds=[None] * layout.num_buckets,
            target_ratio=ratio,
            ops=[OpRecord("random_sample", arr.size, total_k), OpRecord("compact", total_k, total_k)],
            metadata={"rescaled": self.rescale},
        )
