"""Random-k sparsification baseline (Wangni et al., 2018 style)."""

from __future__ import annotations

import numpy as np

from .base import Compressor, CompressionResult, OpRecord
from ..tensor.sparse import SparseGradient


class RandomK(Compressor):
    """Keep a uniformly random subset of ``k`` elements, rescaled by ``d/k``.

    The rescaling keeps the sparsified gradient unbiased
    (``E[C(g)] = g``), which is the standard Random-k estimator.  Selection is
    magnitude-oblivious, so its approximation error is far worse than Top-k —
    the reason the paper (like DGC) treats Top-k as the quality reference.
    """

    name = "randomk"

    def __init__(self, seed: int = 0, rescale: bool = True) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.rescale = rescale

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        indices = self._rng.choice(d, size=k, replace=False)
        values = arr[indices]
        if self.rescale:
            values = values * (d / k)
        ops = [OpRecord("random_sample", d, k), OpRecord("compact", k, k)]
        sparse = SparseGradient(indices=indices, values=values, dense_size=d)
        return CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=None,
            ops=ops,
            metadata={"rescaled": self.rescale},
        )
