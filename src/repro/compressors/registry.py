"""Compressor registry: build any compressor (SIDCo or baseline) by name.

The experiment harness, examples, and benchmarks refer to compressors by the
short names used in the paper's figures (``topk``, ``dgc``, ``redsync``,
``gaussiank``, ``sidco-e``, ``sidco-gp``, ``sidco-p``, ``none`` ...); this
module maps those names to constructors.
"""

from __future__ import annotations

from typing import Callable

from .base import Compressor
from .dgc import DGC
from .gaussiank import GaussianKSGD
from .randomk import RandomK
from .redsync import RedSync
from .threshold_fixed import AdaptiveHardThreshold
from .topk import NoCompression, TopK


def _sidco_factory(variant: str) -> Callable[..., Compressor]:
    def factory(**kwargs) -> Compressor:
        from ..core.sidco import SIDCo

        return SIDCo.from_variant(variant, **kwargs)

    return factory


def _bucketed_sidco_factory(variant: str) -> Callable[..., Compressor]:
    """Bucketed-pipeline SIDCo with the vectorized batched fitting fast path."""

    def factory(*, bucket_bytes: int | None = None, vectorized: bool = True, **kwargs) -> Compressor:
        from ..core.sidco import SIDCo
        from ..pipeline import DEFAULT_BUCKET_BYTES, CompressionPipeline

        return CompressionPipeline(
            SIDCo.from_variant(variant, **kwargs),
            bucket_bytes=DEFAULT_BUCKET_BYTES if bucket_bytes is None else bucket_bytes,
            vectorized=vectorized,
        )

    return factory


_REGISTRY: dict[str, Callable[..., Compressor]] = {
    "none": NoCompression,
    "topk": TopK,
    "dgc": DGC,
    "redsync": RedSync,
    "gaussiank": GaussianKSGD,
    "randomk": RandomK,
    "hard_threshold": AdaptiveHardThreshold,
    "sidco-e": _sidco_factory("sidco-e"),
    "sidco-gp": _sidco_factory("sidco-gp"),
    "sidco-p": _sidco_factory("sidco-p"),
    "sidco-e-bucketed": _bucketed_sidco_factory("sidco-e"),
    "sidco-gp-bucketed": _bucketed_sidco_factory("sidco-gp"),
    "sidco-p-bucketed": _bucketed_sidco_factory("sidco-p"),
}

#: The compressor line-up of the paper's main figures, in plotting order.
PAPER_COMPRESSORS: tuple[str, ...] = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")

#: All SIDCo variants (Appendix F / Figure 18 line-up).
SIDCO_VARIANTS: tuple[str, ...] = ("sidco-e", "sidco-gp", "sidco-p")


def available_compressors() -> list[str]:
    """Names accepted by :func:`create_compressor`."""
    return sorted(_REGISTRY)


def create_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a compressor by its registry name."""
    key = name.lower()
    if key not in _REGISTRY:
        # Like get_network/get_topology: the error names every registered
        # compressor (including the sidco-*-bucketed pipeline variants), with
        # the paper's figure line-up called out as the common subset.
        raise ValueError(
            f"unknown compressor {name!r}; known: {available_compressors()} "
            f"(paper line-up: {list(PAPER_COMPRESSORS)})"
        )
    return _REGISTRY[key](**kwargs)


def register_compressor(name: str, factory: Callable[..., Compressor], *, overwrite: bool = False) -> None:
    """Register a user-provided compressor factory under ``name``."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"compressor {name!r} is already registered")
    _REGISTRY[key] = factory
