"""Exact Top-k sparsification (the reference compressor the paper competes with)."""

from __future__ import annotations

import numpy as np

from .base import Compressor, CompressionResult, OpRecord


class TopK(Compressor):
    """Keep exactly the ``k = ratio * d`` largest-magnitude gradient elements.

    This is the strongest selection in terms of approximation error (it
    *defines* the best-k approximation), but also the most expensive: its
    operation trace contains a full Top-k selection over all ``d`` elements,
    which is what makes it slow on GPUs (Section 1.2).
    """

    name = "topk"

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        k = self._target_k(arr.size, ratio)
        return self._result_from_topk(arr, k, ratio, ops=[], metadata={"exact": True})


class NoCompression(Compressor):
    """Identity compressor: ships the dense gradient unchanged (the baseline)."""

    name = "none"

    def compress(self, gradient: np.ndarray, ratio: float = 1.0) -> CompressionResult:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("cannot compress an empty gradient")
        from ..tensor.sparse import SparseGradient

        sparse = SparseGradient(indices=np.arange(arr.size), values=arr, dense_size=arr.size)
        return CompressionResult(
            sparse=sparse,
            target_ratio=1.0,
            threshold=None,
            ops=[OpRecord("elementwise", 0)],
            metadata={"dense": True},
        )
