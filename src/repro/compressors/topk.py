"""Exact Top-k sparsification (the reference compressor the paper competes with)."""

from __future__ import annotations

import numpy as np

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import bucket_target_ks, concat_indices


class TopK(Compressor):
    """Keep exactly the ``k = ratio * d`` largest-magnitude gradient elements.

    This is the strongest selection in terms of approximation error (it
    *defines* the best-k approximation), but also the most expensive: its
    operation trace contains a full Top-k selection over all ``d`` elements,
    which is what makes it slow on GPUs (Section 1.2).
    """

    name = "topk"

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        k = self._target_k(arr.size, ratio)
        return self._result_from_topk(arr, k, ratio, ops=[], metadata={"exact": True})

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        sizes = layout.sizes()
        ks = bucket_target_ks(sizes, ratio)

        # Full uniform buckets share one (size, k), so their argpartitions run
        # as a single 2-D row-wise selection; the ragged tail (and non-uniform
        # layouts) fall through to per-bucket views of the same computation.
        idx_chunks: list[np.ndarray] = []
        thresholds: list[float] = []
        nfull = 0
        if layout.is_uniform:
            nfull = layout.total_size // layout.bucket_size
        if nfull:
            size = layout.bucket_size
            k = int(ks[0])
            mags = np.abs(arr[: nfull * size].reshape(nfull, size))
            if k >= size:
                rows = np.broadcast_to(np.arange(size), (nfull, size))
            else:
                rows = np.argpartition(mags, size - k, axis=1)[:, size - k :]
            offsets = np.arange(nfull, dtype=np.int64)[:, None] * size
            idx_chunks.append((rows + offsets).ravel())
            kept_mags = np.take_along_axis(mags, rows, axis=1)
            thresholds.extend(float(t) for t in kept_mags.min(axis=1))
        for i in range(nfull, layout.num_buckets):
            start, stop = layout.bounds(i)
            view = arr[start:stop]
            size, k = stop - start, int(ks[i])
            mags = np.abs(view)
            if k >= size:
                local = np.arange(size)
            else:
                local = np.argpartition(mags, size - k)[size - k :]
            idx_chunks.append(local + start)
            thresholds.append(float(mags[local].min()))

        indices = concat_indices(idx_chunks)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=ks,
            bucket_thresholds=thresholds,
            target_ratio=ratio,
            ops=[
                OpRecord("elementwise", arr.size),
                OpRecord("topk_select", arr.size, int(ks.sum())),
            ],
        )


class NoCompression(Compressor):
    """Identity compressor: ships the dense gradient unchanged (the baseline)."""

    name = "none"

    def compress(self, gradient: np.ndarray, ratio: float = 1.0) -> CompressionResult:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("cannot compress an empty gradient")
        from ..tensor.sparse import SparseGradient

        sparse = SparseGradient(indices=np.arange(arr.size), values=arr, dense_size=arr.size)
        return CompressionResult(
            sparse=sparse,
            target_ratio=1.0,
            threshold=None,
            ops=[OpRecord("elementwise", 0)],
            metadata={"dense": True},
        )

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float = 1.0) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        return BucketedFit(
            indices=np.arange(arr.size),
            values=arr,
            bucket_nnz=layout.sizes(),
            bucket_thresholds=[None] * layout.num_buckets,
            target_ratio=1.0,
            ops=[OpRecord("elementwise", 0)],
            metadata={"dense": True},
        )
