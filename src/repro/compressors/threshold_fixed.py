"""Hard-threshold compressor with an adaptive scale (Aji & Heafield, 2017 style).

Keeps every element whose magnitude exceeds a fixed threshold.  The threshold
is adapted multiplicatively across calls so the achieved ratio drifts toward
the target — a simple linear-time scheme included as an additional baseline
and as a sanity reference for the threshold-selection code path.
"""

from __future__ import annotations

import numpy as np

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import abs_block, concat_indices, select_ge, workspace_for


class AdaptiveHardThreshold(Compressor):
    """Fixed threshold scaled up/down based on the previously achieved ratio.

    Parameters
    ----------
    adjustment_rate:
        Fraction by which the internal scale moves toward the corrective value
        after each call (1.0 = jump straight to the corrective value).
    """

    name = "hard_threshold"

    def __init__(self, adjustment_rate: float = 0.5) -> None:
        if not 0.0 < adjustment_rate <= 1.0:
            raise ValueError("adjustment_rate must be in (0, 1]")
        self.adjustment_rate = adjustment_rate
        self._scale: float | None = None

    def reset(self) -> None:
        self._scale = None

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        ops: list[OpRecord] = []

        mags = np.abs(arr)
        ops.append(OpRecord("elementwise", d))
        mean = float(mags.mean())
        ops.append(OpRecord("reduce", d))

        if self._scale is None:
            # Bootstrap from the exponential-model quantile so the first call
            # is already in the right ballpark.
            self._scale = float(np.log(1.0 / ratio))
        threshold = mean * self._scale

        result = self._result_from_threshold(arr, threshold, ratio, ops, {"scale": self._scale})

        # Multiplicative correction for the next call.
        achieved = max(result.achieved_ratio, 1.0 / d)
        corrective = self._scale * (np.log(1.0 / ratio) / max(np.log(1.0 / achieved), 1e-12))
        self._scale = float((1.0 - self.adjustment_rate) * self._scale + self.adjustment_rate * corrective)
        return result

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        num = layout.num_buckets

        # The adaptive scale couples buckets sequentially (bucket i sees the
        # correction from bucket i-1), so the walk itself stays a per-bucket
        # scalar recurrence — replayed exactly — while the element passes run
        # blocked off one scratch buffer and the trace is fused.
        scratch = workspace_for(layout)
        idx_chunks: list[np.ndarray] = []
        bucket_nnz = np.empty(num, dtype=np.int64)
        thresholds: list[float] = []
        for i in range(num):
            start, stop = layout.bounds(i)
            size = stop - start
            mags = abs_block(arr, start, stop, scratch)
            mean = float(mags.mean())
            if self._scale is None:
                self._scale = float(np.log(1.0 / ratio))
            threshold = mean * self._scale
            idx = select_ge(mags, threshold, start)
            idx_chunks.append(idx)
            bucket_nnz[i] = idx.size
            thresholds.append(float(threshold))

            achieved = max(idx.size / size, 1.0 / size)
            corrective = self._scale * (np.log(1.0 / ratio) / max(np.log(1.0 / achieved), 1e-12))
            self._scale = float(
                (1.0 - self.adjustment_rate) * self._scale + self.adjustment_rate * corrective
            )

        d = arr.size
        indices = concat_indices(idx_chunks)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=bucket_nnz,
            bucket_thresholds=thresholds,
            target_ratio=ratio,
            ops=[
                OpRecord("elementwise", d),
                OpRecord("reduce", d),
                OpRecord("elementwise", d),
                OpRecord("compact", d, int(bucket_nnz.sum())),
            ],
        )
