"""GaussianKSGD threshold estimation (Shi et al., 2019).

GaussianKSGD assumes the gradient is Gaussian, derives an initial threshold
from the Gaussian quantile for the target ratio, then nudges the threshold up
or down with a fixed-step heuristic for a few iterations based on the observed
selection count.  DNN gradients are much more peaked and heavier-tailed than a
Gaussian (Property 2 of the paper), so the initial quantile lands far from the
true Top-k threshold and the bounded correction loop cannot recover —
producing the orders-of-magnitude under-selection the paper reports.
"""

from __future__ import annotations

import numpy as np
from scipy import special as _sp

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import (
    abs_block,
    bucket_target_ks,
    concat_indices,
    probe_round_ops,
    select_ge,
    workspace_for,
)


class GaussianKSGD(Compressor):
    """Gaussian-quantile initial threshold plus bounded iterative correction.

    Parameters
    ----------
    max_adjust_iters:
        Number of correction iterations applied after the Gaussian guess.
    tolerance:
        Relative band around ``k`` considered "close enough" to stop adjusting.
    step:
        Multiplicative step used to scale the threshold when the selection is
        outside the tolerance band.
    """

    name = "gaussiank"

    def __init__(self, max_adjust_iters: int = 4, tolerance: float = 0.2, step: float = 0.1) -> None:
        if max_adjust_iters < 0:
            raise ValueError("max_adjust_iters must be >= 0")
        if not 0.0 < tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        if not 0.0 < step < 1.0:
            raise ValueError("step must be in (0, 1)")
        self.max_adjust_iters = max_adjust_iters
        self.tolerance = tolerance
        self.step = step

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        ops: list[OpRecord] = []

        mean = float(arr.mean())
        std = float(arr.std())
        ops.append(OpRecord("reduce", d))
        ops.append(OpRecord("reduce", d))
        if std == 0.0:
            return self._result_from_threshold(arr, abs(mean), ratio, ops, {"iterations": 0})

        # P(|G - mu| >= eta) = delta under a Gaussian model ->
        # eta = std * sqrt(2) * erfinv(1 - delta).
        threshold = float(std * np.sqrt(2.0) * _sp.erfinv(1.0 - ratio))

        mags = np.abs(arr - mean)
        ops.append(OpRecord("elementwise", d))

        iterations = 0
        for iterations in range(1, self.max_adjust_iters + 1):
            selected = int(np.count_nonzero(mags >= threshold))
            ops.append(OpRecord("elementwise", d))
            ops.append(OpRecord("reduce", d))
            if selected > (1.0 + self.tolerance) * k:
                threshold *= 1.0 + self.step
            elif selected < (1.0 - self.tolerance) * k:
                threshold *= 1.0 - self.step
            else:
                break

        # Selection is done on |g| (not |g - mean|) as in the published scheme;
        # gradients are near-zero mean so the two coincide in practice.
        return self._result_from_threshold(arr, threshold, ratio, ops, {"iterations": iterations})

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        sizes = layout.sizes()
        num = layout.num_buckets
        ks = bucket_target_ks(sizes, ratio)
        # The Gaussian quantile factor depends only on the target ratio, so it
        # is computed once for every bucket (the scalar path recomputes it per
        # bucket); the multiplication order below matches the scalar formula.
        erfinv_tail = _sp.erfinv(1.0 - ratio)
        sqrt2 = np.sqrt(2.0)

        # |g - mean| probes and the final |g| selection run bucket-blocked off
        # one scratch buffer; the correction-loop arithmetic is per-bucket
        # Python floats exactly like the scalar path (bit-for-bit state).
        scratch = workspace_for(layout)
        idx_chunks: list[np.ndarray] = []
        bucket_nnz = np.empty(num, dtype=np.int64)
        thresholds: list[float] = []
        probe_iters = np.zeros(num, dtype=np.int64)
        for i in range(num):
            start, stop = layout.bounds(i)
            view = arr[start:stop]
            mean = float(view.mean())
            std = float(view.std())
            if std == 0.0:
                threshold = abs(mean)
            else:
                threshold = float(std * sqrt2 * erfinv_tail)
                mags = scratch[: stop - start]
                np.subtract(view, mean, out=mags)
                np.abs(mags, out=mags)
                for iterations in range(1, self.max_adjust_iters + 1):
                    probe_iters[i] = iterations
                    selected = int(np.count_nonzero(mags >= threshold))
                    if selected > (1.0 + self.tolerance) * ks[i]:
                        threshold *= 1.0 + self.step
                    elif selected < (1.0 - self.tolerance) * ks[i]:
                        threshold *= 1.0 - self.step
                    else:
                        break
            mags = abs_block(arr, start, stop, scratch)
            idx = select_ge(mags, threshold, start)
            idx_chunks.append(idx)
            bucket_nnz[i] = idx.size
            thresholds.append(float(threshold))

        d = arr.size
        ops = [OpRecord("reduce", d), OpRecord("reduce", d), OpRecord("elementwise", d)]
        ops.extend(probe_round_ops(sizes, probe_iters))
        ops.append(OpRecord("elementwise", d))
        ops.append(OpRecord("compact", d, int(bucket_nnz.sum())))

        indices = concat_indices(idx_chunks)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=bucket_nnz,
            bucket_thresholds=thresholds,
            target_ratio=ratio,
            ops=ops,
        )
