"""Deep Gradient Compression (DGC) sampling-based threshold estimation.

DGC (Lin et al., 2018) estimates the Top-k threshold hierarchically:

1. draw a random subset of the gradient (default 1%),
2. run Top-k on that subset to find a candidate threshold,
3. select all elements above the candidate threshold,
4. if the selection overshoots the target ``k``, run Top-k again on the
   (much smaller) selected set to trim it down to exactly ``k``.

Its estimation quality is excellent (it effectively *is* Top-k on a sample)
but its cost is dominated by the random sampling, which is cheap on GPUs and
very expensive on CPUs — the asymmetry shown in Figure 1a vs 1b.
"""

from __future__ import annotations

import numpy as np

from .base import BucketedFit, Compressor, CompressionResult, OpRecord
from .bucketed import abs_block, bucket_target_ks, concat_indices, full_bucket_stack, workspace_for
from ..tensor.sparse import SparseGradient


class DGC(Compressor):
    """Sample-based hierarchical Top-k threshold estimation.

    Parameters
    ----------
    sample_ratio:
        Fraction of the gradient to sample for the first-stage Top-k
        (the paper and the original DGC implementation use 1%).
    overshoot_trim:
        If the thresholded selection exceeds ``overshoot_trim * k`` the second
        Top-k pass is applied to trim it back to exactly ``k`` (the "invoke
        Top-k twice" worst case the paper footnotes).
    seed:
        Seed for the sampling generator, for reproducible traces.
    """

    name = "dgc"

    def __init__(self, sample_ratio: float = 0.01, overshoot_trim: float = 1.0, seed: int = 0) -> None:
        if not 0.0 < sample_ratio <= 1.0:
            raise ValueError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
        if overshoot_trim < 1.0:
            raise ValueError(f"overshoot_trim must be >= 1, got {overshoot_trim}")
        self.sample_ratio = sample_ratio
        self.overshoot_trim = overshoot_trim
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        d = arr.size
        k = self._target_k(d, ratio)
        ops: list[OpRecord] = []

        # Stage 1: random sample and Top-k on the sample to get a threshold.
        sample_size = max(k, int(np.ceil(self.sample_ratio * d)))
        sample_size = min(sample_size, d)
        sample_idx = self._rng.choice(d, size=sample_size, replace=False)
        ops.append(OpRecord("random_sample", d, sample_size))
        sample_mags = np.abs(arr[sample_idx])
        ops.append(OpRecord("elementwise", sample_size))
        sample_k = max(1, int(round(ratio * sample_size)))
        if sample_k >= sample_size:
            threshold = float(sample_mags.min())
        else:
            part = np.partition(sample_mags, sample_size - sample_k)
            threshold = float(part[sample_size - sample_k])
        ops.append(OpRecord("topk_select", sample_size, sample_k))

        # Stage 2: threshold the full vector.
        mags = np.abs(arr)
        ops.append(OpRecord("elementwise", d))
        mask = mags >= threshold
        selected = int(mask.sum())
        ops.append(OpRecord("compact", d, selected))

        if selected > self.overshoot_trim * k:
            # Worst case: trim the selection back to exactly k with a second Top-k.
            sel_idx = np.flatnonzero(mask)
            sel_mags = mags[sel_idx]
            keep = np.argpartition(sel_mags, sel_idx.size - k)[sel_idx.size - k :]
            ops.append(OpRecord("topk_select", sel_idx.size, k))
            final_idx = sel_idx[keep]
            threshold = float(sel_mags[keep].min())
        else:
            final_idx = np.flatnonzero(mask)

        sparse = SparseGradient(indices=final_idx, values=arr[final_idx], dense_size=d)
        return CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=threshold,
            ops=ops,
            metadata={"sample_size": sample_size, "trimmed": selected > self.overshoot_trim * k},
        )

    def fit_all_buckets(self, gradient: np.ndarray, layout, ratio: float) -> BucketedFit:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        sizes = layout.sizes()
        starts = layout.starts()
        num = layout.num_buckets
        ks = bucket_target_ks(sizes, ratio)

        # Stage 1: the per-bucket sample draws replay the scalar loop's calls
        # on the shared generator (same sequence, same stream), then all
        # buckets with equal sample shape fit their Top-k threshold in one
        # 2-D row-wise partition.
        sample_sizes = np.minimum(np.maximum(ks, np.ceil(self.sample_ratio * sizes).astype(np.int64)), sizes)
        sample_ks = bucket_target_ks(sample_sizes, ratio)
        sample_mags: list[np.ndarray] = []
        for i in range(num):
            sample_idx = self._rng.choice(int(sizes[i]), size=int(sample_sizes[i]), replace=False)
            sample_mags.append(np.abs(arr[starts[i] + sample_idx]))

        thresholds = np.empty(num)
        groups: dict[tuple[int, int], list[int]] = {}
        for i in range(num):
            ss, sk = int(sample_sizes[i]), int(sample_ks[i])
            if sk >= ss:
                thresholds[i] = float(sample_mags[i].min())
            else:
                groups.setdefault((ss, sk), []).append(i)
        for (ss, sk), members in groups.items():
            if len(members) == 1:
                i = members[0]
                thresholds[i] = float(np.partition(sample_mags[i], ss - sk)[ss - sk])
            else:
                stack = full_bucket_stack([sample_mags[i] for i in members])
                part = np.partition(stack, ss - sk, axis=1)[:, ss - sk]
                thresholds[members] = part

        # Stage 2: bucket-blocked threshold selection (with the worst-case
        # trim) off one cache-hot scratch buffer.
        scratch = workspace_for(layout)
        idx_chunks: list[np.ndarray] = []
        bucket_nnz = np.empty(num, dtype=np.int64)
        out_thresholds: list[float] = []
        stage2_selected = 0
        trim_sizes = 0
        trim_ks = 0
        for i in range(num):
            start, stop = layout.bounds(i)
            mags = abs_block(arr, start, stop, scratch)
            threshold = float(thresholds[i])
            k = int(ks[i])
            sel = np.flatnonzero(mags >= threshold)
            stage2_selected += sel.size
            if sel.size > self.overshoot_trim * k:
                sel_mags = mags[sel]
                keep = np.argpartition(sel_mags, sel.size - k)[sel.size - k :]
                threshold = float(sel_mags[keep].min())
                trim_sizes += sel.size
                trim_ks += k
                sel = sel[keep]
            idx_chunks.append(sel + start)
            bucket_nnz[i] = sel.size
            out_thresholds.append(threshold)

        total_sample = int(sample_sizes.sum())
        ops = [
            OpRecord("random_sample", arr.size, total_sample),
            OpRecord("elementwise", total_sample),
            OpRecord("topk_select", total_sample, int(sample_ks.sum())),
            OpRecord("elementwise", arr.size),
            OpRecord("compact", arr.size, stage2_selected),
        ]
        if trim_sizes:
            ops.append(OpRecord("topk_select", trim_sizes, trim_ks))

        indices = concat_indices(idx_chunks)
        return BucketedFit(
            indices=indices,
            values=arr[indices],
            bucket_nnz=bucket_nnz,
            bucket_thresholds=out_thresholds,
            target_ratio=ratio,
            ops=ops,
        )
