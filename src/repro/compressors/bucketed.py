"""Shared helpers for batched bucket-axis compression (``fit_all_buckets``).

Every registry compressor implements
:meth:`~repro.compressors.base.Compressor.fit_all_buckets` on top of these
helpers: one call fits all buckets of a
:class:`~repro.pipeline.bucketing.BucketLayout`, replacing the per-bucket
Python ``compress`` loop with a single batched pass.

Two execution shapes coexist inside that pass, chosen per stage by what is
actually fast on a memory-bound CPU:

* **Cross-bucket vectorised algebra** for everything whose per-bucket work is
  small: threshold formulas, sample-quantile fits over 2-D
  ``(buckets, sample)`` stacks, target-``k`` arithmetic, fused op-trace
  accounting.  This is the same shape
  :func:`repro.pipeline.vectorized.estimate_multi_stage_bucketed` uses for
  SIDCo's stage fits.
* **Bucket-blocked element passes** for everything that streams the gradient:
  ``|g|`` materialisation, probe counts and the final selection run bucket by
  bucket into one persistent scratch buffer.  Running these stage-major
  instead (one whole-gradient 2-D op per probe stage) re-reads the full
  vector from RAM once per stage and measures *slower* than the scalar loop
  at acceptance scale; blocking keeps each bucket's few-MiB working set
  cache-hot across all of its stages while still issuing one fused launch per
  logical primitive in the op trace.

Bit-for-bit equivalence with the per-bucket loop is part of the contract, so
helpers here mirror the scalar helpers exactly: identical reduction orders
(contiguous 1-D pairwise reductions on the same values), identical rounding
(:func:`bucket_target_ks` is ``Compressor._target_k`` vectorised) and
identical selection order (ascending within each bucket, buckets
concatenated in layout order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import OpRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from ..pipeline.bucketing import BucketLayout


def bucket_target_ks(sizes: np.ndarray, ratio: float) -> np.ndarray:
    """Per-bucket ``max(1, round(ratio * size))`` — ``_target_k`` across the bucket axis.

    ``np.rint`` rounds half-to-even exactly like Python's ``round``, so each
    entry matches the scalar helper bit-for-bit.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    return np.maximum(1, np.rint(ratio * sizes).astype(np.int64))


def abs_block(arr: np.ndarray, start: int, stop: int, scratch: np.ndarray) -> np.ndarray:
    """``|arr[start:stop]|`` into the scratch prefix — no fresh allocation.

    The returned view is contiguous, so pairwise reductions over it are
    bit-identical to the same reductions over a freshly allocated
    ``np.abs(bucket_view)``.
    """
    out = scratch[: stop - start]
    np.abs(arr[start:stop], out=out)
    return out


def select_ge(mags: np.ndarray, threshold: float, start: int) -> np.ndarray:
    """Global indices of ``mags >= threshold`` for a bucket starting at ``start``.

    Ascending order, matching ``SparseGradient.from_mask`` on the bucket view.
    """
    idx = np.flatnonzero(mags >= threshold)
    idx += start
    return idx


def concat_indices(chunks: list[np.ndarray]) -> np.ndarray:
    """Bucket-major concatenation of per-bucket index selections."""
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def probe_round_ops(sizes: np.ndarray, iterations: np.ndarray) -> list[OpRecord]:
    """Fused trace of a data-dependent per-bucket probe search.

    Probe round ``r`` of the batched pass touches every bucket that is still
    searching at round ``r``; each round is one fused compare + one fused
    count across those buckets, rather than one launch pair per bucket per
    round as in the scalar loop.
    """
    ops: list[OpRecord] = []
    iterations = np.asarray(iterations, dtype=np.int64)
    for round_no in range(1, int(iterations.max(initial=0)) + 1):
        active = int(sizes[iterations >= round_no].sum())
        ops.append(OpRecord("elementwise", active))
        ops.append(OpRecord("reduce", active))
    return ops


def full_bucket_stack(values: list[np.ndarray]) -> np.ndarray:
    """Stack equal-length per-bucket 1-D arrays into a ``(buckets, n)`` matrix.

    Row-wise ``partition``/``argpartition``/reductions over the stack are
    bit-identical to the same 1-D call per row (C-contiguous equal-size rows),
    which is what lets sample-quantile fits batch across buckets.
    """
    return np.stack(values)


def workspace_for(layout: "BucketLayout") -> np.ndarray:
    """One float64 scratch buffer sized for the largest bucket.

    Allocated per ``fit_all_buckets`` call (so nothing heavy hangs off the
    compressor and pickling for the process worker backend stays cheap) and
    reused across every bucket block within the call.
    """
    return np.empty(int(layout.sizes().max()), dtype=np.float64)
