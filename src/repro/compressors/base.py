"""Compressor interface shared by SIDCo and every baseline.

A compressor turns a dense gradient vector into a :class:`SparseGradient`
given a target compression ratio ``delta = k / d``.  Besides the sparse
result, every call records:

* the threshold it applied (if threshold-based),
* the achieved ratio ``k_hat / d``,
* an *operation trace*: the sequence of vectorised primitives (sorts,
  selections, reductions, samples, element-wise passes) it executed and their
  input sizes.

The operation trace is what the device performance model
(:mod:`repro.perfmodel`) consumes to estimate compression latency on GPU-like
and CPU-like devices, reproducing the micro-benchmarks of Figures 1, 12 and
14-17 without real accelerator hardware.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..tensor.sparse import SparseGradient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from ..pipeline.bucketing import BucketLayout


@dataclass(frozen=True)
class OpRecord:
    """One vectorised primitive executed during compression.

    ``op`` is one of the primitive names understood by
    :mod:`repro.perfmodel.costs` (``sort``, ``topk_select``, ``random_sample``,
    ``reduce``, ``elementwise``, ``compact``, ``log_reduce``).  ``size`` is the
    number of elements the primitive touched and ``k`` the selection size where
    relevant (e.g. Top-k selection).
    """

    op: str
    size: int
    k: int = 0


@dataclass
class CompressionResult:
    """Output of a single ``compress`` call."""

    sparse: SparseGradient
    target_ratio: float
    threshold: float | None = None
    ops: list[OpRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def achieved_ratio(self) -> float:
        """The achieved compression ratio ``k_hat / d``."""
        return self.sparse.density

    @property
    def achieved_k(self) -> int:
        return self.sparse.nnz

    @property
    def estimation_quality(self) -> float:
        """``k_hat / k`` — the normalised estimation quality of Figures 1c, 3c, 5b, 6c."""
        expected_k = self.target_ratio * self.sparse.dense_size
        if expected_k <= 0:
            return float("nan")
        return self.sparse.nnz / expected_k


@dataclass
class BucketedFit:
    """Per-bucket selections from one batched ``fit_all_buckets`` pass.

    The arrays are bucket-major: bucket 0's selection first, then bucket 1's,
    each in the same within-bucket order the compressor's scalar ``compress``
    would have produced on that bucket alone — which is what makes the batched
    path bit-for-bit comparable against the per-bucket loop.
    """

    #: global flat indices of the kept elements, bucket-major
    indices: np.ndarray
    #: transmitted values aligned with ``indices`` (rescaled where the
    #: compressor rescales, e.g. Random-k's ``d/k`` factor per bucket)
    values: np.ndarray
    #: (num_buckets,) number of kept elements per bucket
    bucket_nnz: np.ndarray
    #: per-bucket thresholds; ``None`` (or ``+inf``) where the bucket's
    #: selection is not threshold-based or the bucket selected nothing
    bucket_thresholds: "Sequence[float | None] | np.ndarray"
    #: the effective target ratio (``NoCompression`` normalises it to 1.0)
    target_ratio: float
    #: fused operation trace: one launch per primitive across all buckets
    ops: list[OpRecord] = field(default_factory=list)
    #: compressor-specific extras merged into the result metadata
    metadata: dict = field(default_factory=dict)


class Compressor(abc.ABC):
    """Abstract gradient compressor.

    Compressors may keep internal state that evolves across training
    iterations (e.g. SIDCo's stage controller); ``reset`` clears it so one
    instance can be reused across independent runs.
    """

    #: short identifier used by the registry, figures, and reports
    name: str = "base"

    @abc.abstractmethod
    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        """Compress ``gradient`` targeting ``ratio = k/d`` kept elements."""

    def reset(self) -> None:
        """Clear any cross-iteration state (no-op by default)."""

    def fit_all_buckets(
        self, gradient: np.ndarray, layout: "BucketLayout", ratio: float
    ) -> BucketedFit | None:
        """Batched bucket-axis compression: fit every bucket in one call.

        The contract mirrors what :mod:`repro.pipeline.vectorized` does for
        SIDCo: take the validated flat gradient plus the
        :class:`~repro.pipeline.bucketing.BucketLayout` that tiles it, and
        return the per-bucket thresholds/selections of *all* buckets from one
        batched NumPy pass — per-bucket Python ``compress`` calls, their
        repeated ``|g|`` passes and their per-bucket op-trace bookkeeping all
        collapse into fused whole-gradient work.

        Implementations must be *selection-equivalent* to running ``compress``
        on each bucket view in order: same kept indices and values bit-for-bit
        (stateful compressors must also leave their cross-call state — RNG
        streams, adaptive scales — exactly as the per-bucket loop would),
        with tie-breaking tolerance only where ``argpartition`` order among
        exactly-tied magnitudes is inherently ambiguous.

        Returning ``None`` declines the batched path;
        :class:`~repro.pipeline.CompressionPipeline` then falls back to the
        scalar per-bucket loop.  The base implementation always declines.
        """
        return None

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _validate(gradient: np.ndarray, ratio: float) -> np.ndarray:
        arr = np.asarray(gradient, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("cannot compress an empty gradient")
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        return arr

    @staticmethod
    def _target_k(size: int, ratio: float) -> int:
        """Number of elements to keep: ``max(1, round(ratio * d))``."""
        return max(1, int(round(ratio * size)))

    @staticmethod
    def _result_from_threshold(
        gradient: np.ndarray,
        threshold: float,
        ratio: float,
        ops: list[OpRecord],
        metadata: dict | None = None,
    ) -> CompressionResult:
        """Select all elements with ``|g| >= threshold`` and package the result."""
        mask = np.abs(gradient) >= threshold
        ops.append(OpRecord("elementwise", gradient.size))
        ops.append(OpRecord("compact", gradient.size, int(mask.sum())))
        sparse = SparseGradient.from_mask(gradient, mask)
        return CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=float(threshold),
            ops=ops,
            metadata=metadata or {},
        )

    @staticmethod
    def _result_from_topk(
        gradient: np.ndarray,
        k: int,
        ratio: float,
        ops: list[OpRecord],
        metadata: dict | None = None,
    ) -> CompressionResult:
        """Keep exactly the ``k`` largest-magnitude elements."""
        magnitudes = np.abs(gradient)
        ops.append(OpRecord("elementwise", gradient.size))
        if k >= gradient.size:
            indices = np.arange(gradient.size)
        else:
            indices = np.argpartition(magnitudes, gradient.size - k)[gradient.size - k :]
        ops.append(OpRecord("topk_select", gradient.size, k))
        sparse = SparseGradient(indices=indices, values=gradient[indices], dense_size=gradient.size)
        threshold = float(np.abs(gradient[indices]).min()) if indices.size else 0.0
        return CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=threshold,
            ops=ops,
            metadata=metadata or {},
        )
