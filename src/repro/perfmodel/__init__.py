"""Device performance model for compression latency."""

from .costs import PRIMITIVES, CostBreakdown, DeviceProfile, breakdown, distribute_cost, scale_ops
from .device import CPU_XEON, DEVICES, GPU_V100, get_device
from .estimator import (
    DEFAULT_SAMPLE_CAP,
    LatencyEstimate,
    compression_throughput,
    estimate_latency,
    estimate_latency_for_dimension,
    latency_breakdown,
    speedup_over_reference,
)

__all__ = [
    "CPU_XEON",
    "DEFAULT_SAMPLE_CAP",
    "DEVICES",
    "GPU_V100",
    "PRIMITIVES",
    "CostBreakdown",
    "DeviceProfile",
    "LatencyEstimate",
    "breakdown",
    "compression_throughput",
    "distribute_cost",
    "estimate_latency",
    "estimate_latency_for_dimension",
    "get_device",
    "latency_breakdown",
    "scale_ops",
    "speedup_over_reference",
]
