"""Per-primitive cost model for compression operations.

The paper's latency results (Figures 1, 12, 14-17) are driven by how a small
set of vectorised primitives behave on different devices:

* GPUs execute element-wise passes, reductions and random-number generation at
  memory bandwidth, but Top-k selection (sort / radix-select) parallelises
  poorly — this is why Top-k is the slowest compressor on GPU;
* CPUs select k-th elements reasonably fast (``nth_element`` / radix select)
  but pay dearly for the per-element random number generation and gathers DGC
  needs — this is why DGC is the slowest compressor on CPU;
* threshold estimators only use reductions, element-wise passes and a stream
  compaction, so they are cheap everywhere.

A :class:`DeviceProfile` captures those asymmetries as per-element
coefficients plus a fixed per-operation launch overhead.  Absolute values are
calibrated to V100-class and Xeon-class hardware orders of magnitude, but the
figures only rely on the relative ordering and how it scales with the vector
dimension ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compressors.base import OpRecord

#: Primitive names every profile must provide a coefficient for.
PRIMITIVES: tuple[str, ...] = (
    "elementwise",
    "reduce",
    "log_reduce",
    "compact",
    "topk_select",
    "sort",
    "random_sample",
)


@dataclass(frozen=True)
class DeviceProfile:
    """Per-element costs (seconds/element) and per-op launch overhead (seconds)."""

    name: str
    per_element: dict[str, float]
    launch_overhead: float

    def __post_init__(self) -> None:
        missing = set(PRIMITIVES) - set(self.per_element)
        if missing:
            raise ValueError(f"device profile {self.name!r} is missing primitives: {sorted(missing)}")
        if self.launch_overhead < 0.0:
            raise ValueError("launch_overhead must be non-negative")
        bad = {op: c for op, c in self.per_element.items() if c <= 0.0}
        if bad:
            raise ValueError(f"per-element costs must be positive, got {bad}")

    def op_cost(self, record: OpRecord) -> float:
        """Estimated seconds for one primitive invocation."""
        if record.op not in self.per_element:
            raise KeyError(f"unknown primitive {record.op!r} for device {self.name!r}")
        return self.launch_overhead + self.per_element[record.op] * max(record.size, 0)

    def trace_cost(self, ops: list[OpRecord]) -> float:
        """Estimated seconds for a full operation trace."""
        return float(sum(self.op_cost(op) for op in ops))


@dataclass
class CostBreakdown:
    """Latency estimate decomposed per primitive (for reports and ablations)."""

    device: str
    total_seconds: float
    per_primitive_seconds: dict[str, float] = field(default_factory=dict)
    num_ops: int = 0


def breakdown(ops: list[OpRecord], device: DeviceProfile) -> CostBreakdown:
    """Decompose the cost of an operation trace per primitive."""
    per_primitive: dict[str, float] = {}
    total = 0.0
    for record in ops:
        cost = device.op_cost(record)
        per_primitive[record.op] = per_primitive.get(record.op, 0.0) + cost
        total += cost
    return CostBreakdown(
        device=device.name,
        total_seconds=total,
        per_primitive_seconds=per_primitive,
        num_ops=len(ops),
    )


def distribute_cost(total_seconds: float, weights) -> np.ndarray:
    """Split a total duration across buckets proportionally to ``weights``.

    Compression primitives are linear in the number of elements scanned, so
    one compression call covering many gradient buckets (e.g. the batched
    SIDCo fitting pass) spends time on each bucket in proportion to the
    bucket's element count.  The event-driven iteration schedule uses this to
    turn one trace-level total into per-bucket compression durations.
    """
    if total_seconds < 0.0:
        raise ValueError("total_seconds must be non-negative")
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    if (w < 0.0).any():
        raise ValueError("weights must be non-negative")
    total_weight = float(w.sum())
    if total_weight <= 0.0:
        return np.full(w.size, total_seconds / w.size)
    return total_seconds * w / total_weight


def scale_ops(ops: list[OpRecord], factor: float) -> list[OpRecord]:
    """Scale the sizes of an operation trace by ``factor``.

    Every compressor's trace sizes are linear in the gradient dimension, so a
    trace captured on a down-sampled vector can be rescaled to the full model
    dimension without materialising hundreds of millions of elements.
    """
    if factor <= 0.0:
        raise ValueError("factor must be positive")
    return [OpRecord(op=o.op, size=int(round(o.size * factor)), k=int(round(o.k * factor))) for o in ops]
