"""Compression-latency estimation on modelled devices.

``estimate_latency`` prices a single compression call's operation trace on a
device profile.  ``estimate_latency_for_dimension`` runs the compressor on a
bounded-size sample vector and rescales the trace to an arbitrary model
dimension ``d`` — every compressor's primitive sizes are linear in ``d``, so
this reproduces the size sweeps of Figures 14-17 (up to 260M elements)
without allocating those vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compressors.base import Compressor, CompressionResult
from .costs import CostBreakdown, DeviceProfile, breakdown, scale_ops

#: Largest vector actually materialised when extrapolating to huge models.
DEFAULT_SAMPLE_CAP = 1_000_000


def estimate_latency(result: CompressionResult, device: DeviceProfile) -> float:
    """Seconds the compression call would take on ``device``."""
    return device.trace_cost(result.ops)


def latency_breakdown(result: CompressionResult, device: DeviceProfile) -> CostBreakdown:
    """Per-primitive latency decomposition of a compression call on ``device``."""
    return breakdown(result.ops, device)


def compression_throughput(result: CompressionResult, device: DeviceProfile) -> float:
    """Modelled compression throughput (dense elements/second) on ``device``.

    The bucketed pipeline's batched fast path emits one fused trace for all
    buckets while the per-bucket loop emits one trace per bucket (paying the
    launch overhead per bucket), so this is the number that exposes the
    vectorisation win inside the cost model as well as on the wall clock.
    """
    seconds = device.trace_cost(result.ops)
    if seconds <= 0.0:
        return float("inf")
    return result.sparse.dense_size / seconds


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency of one compressor at one dimension/ratio on one device."""

    compressor: str
    device: str
    dimension: int
    ratio: float
    seconds: float
    achieved_ratio: float


def estimate_latency_for_dimension(
    compressor: Compressor,
    gradient_sample: np.ndarray,
    dimension: int,
    ratio: float,
    device: DeviceProfile,
) -> LatencyEstimate:
    """Estimate latency at model dimension ``dimension`` from a sample vector.

    The compressor runs on ``gradient_sample`` (whatever fits in memory); the
    resulting operation trace is rescaled by ``dimension / len(sample)``
    before pricing.  The sample must be statistically representative of the
    full gradient, which holds for the i.i.d. synthetic generators used by the
    micro-benchmarks.
    """
    sample = np.asarray(gradient_sample, dtype=np.float64).ravel()
    if sample.size == 0:
        raise ValueError("gradient_sample must be non-empty")
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    result = compressor.compress(sample, ratio)
    factor = dimension / sample.size
    ops = scale_ops(result.ops, factor) if factor != 1.0 else result.ops
    seconds = device.trace_cost(ops)
    return LatencyEstimate(
        compressor=compressor.name,
        device=device.name,
        dimension=dimension,
        ratio=ratio,
        seconds=seconds,
        achieved_ratio=result.achieved_ratio,
    )


def speedup_over_reference(estimates: dict[str, float], reference: str = "topk") -> dict[str, float]:
    """Normalise a mapping of compressor -> seconds by a reference compressor.

    This is the "Norm. Comp. Speedup (X)" axis of Figures 1, 14 and 16.
    """
    if reference not in estimates:
        raise KeyError(f"reference compressor {reference!r} not in estimates")
    ref = estimates[reference]
    if ref <= 0.0:
        raise ValueError("reference latency must be positive")
    return {name: ref / max(seconds, 1e-300) for name, seconds in estimates.items()}
