"""Calibrated device profiles: a V100-class GPU and a Xeon-class CPU.

Coefficients are chosen so the *relative ordering* the paper reports emerges:

* on the GPU, a full Top-k selection over ``d`` elements costs roughly two
  orders of magnitude more per element than a reduction, so threshold
  estimators are ~40-60x faster than Top-k (Figure 1a) and DGC sits in
  between (its Top-k runs only on a 1% sample but it still pays a full-vector
  random mask);
* on the CPU, the k-selection is only a few times more expensive than a
  reduction while per-element random sampling is *more* expensive than the
  selection, so DGC drops below Top-k while threshold estimators stay ~2-3x
  faster (Figure 1b / Figure 12).
"""

from __future__ import annotations

from .costs import DeviceProfile

#: V100-class accelerator: memory-bandwidth bound primitives are ~10^-11 s/elem,
#: selection/sort primitives parallelise poorly.
GPU_V100 = DeviceProfile(
    name="gpu-v100",
    per_element={
        "elementwise": 1.0e-11,
        "reduce": 2.0e-11,
        "log_reduce": 3.0e-11,
        "compact": 2.0e-11,
        "topk_select": 4.5e-9,
        "sort": 9.0e-9,
        "random_sample": 6.0e-11,
    },
    launch_overhead=5.0e-6,
)

#: Xeon-class CPU (single socket, vectorised single-thread kernels):
#: reductions stream at ~1 ns/elem, selection ~1.2e-8, random sampling ~2e-8.
CPU_XEON = DeviceProfile(
    name="cpu-xeon",
    per_element={
        "elementwise": 1.0e-9,
        "reduce": 1.0e-9,
        "log_reduce": 4.0e-9,
        "compact": 2.0e-9,
        "topk_select": 2.0e-8,
        "sort": 8.0e-8,
        "random_sample": 5.0e-8,
    },
    launch_overhead=2.0e-7,
)

DEVICES: dict[str, DeviceProfile] = {
    "gpu": GPU_V100,
    "cpu": CPU_XEON,
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by short name (``gpu`` or ``cpu``) or full name."""
    key = name.lower()
    if key in DEVICES:
        return DEVICES[key]
    for profile in DEVICES.values():
        if profile.name == key:
            return profile
    raise ValueError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
