"""repro: reproduction of SIDCo — statistical-based gradient compression (MLSys 2021).

Public API overview
-------------------
- :mod:`repro.core` — the SIDCo compressor, threshold estimation, stage adaptation.
- :mod:`repro.compressors` — baselines (Top-k, DGC, RedSync, GaussianKSGD, ...) and registry.
- :mod:`repro.stats` — sparsity-inducing distributions, fitting, compressibility diagnostics.
- :mod:`repro.nn`, :mod:`repro.optim`, :mod:`repro.data` — NumPy DNN training substrate.
- :mod:`repro.distributed` — synchronous data-parallel training simulator with compression.
- :mod:`repro.perfmodel` — device cost model for compression latency (GPU-like / CPU-like).
- :mod:`repro.harness` — experiment configurations and runners for every paper table/figure.
"""

from .compressors import (
    PAPER_COMPRESSORS,
    SIDCO_VARIANTS,
    Compressor,
    CompressionResult,
    available_compressors,
    create_compressor,
)
from .core import SIDCo, StageController, StageControllerConfig
from .pipeline import DEFAULT_BUCKET_BYTES, BucketLayout, CompressionPipeline
from .tensor import SparseGradient

__version__ = "1.2.0"

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "PAPER_COMPRESSORS",
    "SIDCO_VARIANTS",
    "BucketLayout",
    "Compressor",
    "CompressionPipeline",
    "CompressionResult",
    "SIDCo",
    "SparseGradient",
    "StageController",
    "StageControllerConfig",
    "available_compressors",
    "create_compressor",
    "__version__",
]
