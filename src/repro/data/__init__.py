"""Synthetic datasets and sharding/batching utilities."""

from .images import make_image_classification
from .loader import BatchIterator, shard_dataset
from .sequence import make_sequence_classification
from .synthetic import ArrayDataset, make_blobs_classification, make_regression
from .text import LanguageModelingDataset, make_language_modeling

__all__ = [
    "ArrayDataset",
    "BatchIterator",
    "LanguageModelingDataset",
    "make_blobs_classification",
    "make_image_classification",
    "make_language_modeling",
    "make_regression",
    "make_sequence_classification",
    "shard_dataset",
]
