"""Synthetic image-classification data standing in for CIFAR-10 / ImageNet.

Each class has a deterministic spatial "prototype" pattern (a mixture of
localised bumps and orientation gratings) that gets corrupted with noise and
random per-example contrast/brightness jitter.  The result is a task a small
CNN genuinely has to learn — so its gradients evolve over training like the
paper's CNN gradients — without any external data.
"""

from __future__ import annotations

import numpy as np

from .synthetic import ArrayDataset


def _class_prototype(class_id: int, channels: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Deterministic per-class spatial pattern."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64) / size
    proto = np.zeros((channels, size, size))
    for c in range(channels):
        freq = 1.0 + (class_id % 4) + 0.5 * c
        phase = rng.uniform(0.0, 2.0 * np.pi)
        orientation = (class_id * 37 + c * 11) % 180 / 180.0 * np.pi
        wave = np.sin(2.0 * np.pi * freq * (xs * np.cos(orientation) + ys * np.sin(orientation)) + phase)
        cx, cy = rng.uniform(0.2, 0.8, size=2)
        bump = np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / 0.05))
        proto[c] = 0.6 * wave + 0.8 * bump
    return proto


def make_image_classification(
    num_examples: int = 256,
    num_classes: int = 10,
    *,
    channels: int = 3,
    image_size: int = 16,
    noise: float = 0.5,
    seed: int = 0,
) -> ArrayDataset:
    """CIFAR-like synthetic dataset of shape ``(N, channels, image_size, image_size)``."""
    if image_size < 4:
        raise ValueError("image_size must be at least 4")
    rng = np.random.default_rng(seed)
    prototypes = np.stack([_class_prototype(c, channels, image_size, rng) for c in range(num_classes)])
    targets = rng.integers(0, num_classes, size=num_examples)
    inputs = prototypes[targets]
    # Per-example brightness/contrast jitter plus pixel noise.
    contrast = rng.uniform(0.7, 1.3, size=(num_examples, 1, 1, 1))
    brightness = rng.uniform(-0.2, 0.2, size=(num_examples, 1, 1, 1))
    inputs = inputs * contrast + brightness + rng.normal(0.0, noise, size=inputs.shape)
    return ArrayDataset(inputs=inputs, targets=targets)
