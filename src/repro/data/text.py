"""Synthetic language-modelling data standing in for the Penn Treebank.

A first-order Markov chain over a synthetic vocabulary generates token
streams with realistic statistical structure: a Zipfian unigram distribution
and sparse, peaked transition rows.  A language model can genuinely reduce
perplexity on this data (the transitions are learnable), which is what the
PTB proxy benchmark needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LanguageModelingDataset:
    """Token stream split into fixed-length (input, next-token target) windows."""

    inputs: np.ndarray   # (num_sequences, seq_len) int64
    targets: np.ndarray  # (num_sequences, seq_len) int64
    vocab_size: int

    def __post_init__(self) -> None:
        if self.inputs.shape != self.targets.shape:
            raise ValueError("inputs and targets must have the same shape")
        if len(self.inputs) == 0:
            raise ValueError("dataset cannot be empty")

    def __len__(self) -> int:
        return len(self.inputs)

    def subset(self, indices: np.ndarray) -> "LanguageModelingDataset":
        return LanguageModelingDataset(
            inputs=self.inputs[indices], targets=self.targets[indices], vocab_size=self.vocab_size
        )


def _markov_transition_matrix(vocab_size: int, branching: int, rng: np.random.Generator) -> np.ndarray:
    """Sparse, peaked transition matrix with a Zipfian stationary tendency."""
    zipf = 1.0 / np.arange(1, vocab_size + 1, dtype=np.float64)
    zipf /= zipf.sum()
    matrix = np.zeros((vocab_size, vocab_size))
    for token in range(vocab_size):
        successors = rng.choice(vocab_size, size=min(branching, vocab_size), replace=False, p=zipf)
        weights = rng.dirichlet(np.ones(len(successors)) * 0.5)
        matrix[token, successors] = weights
    # Mix with the unigram distribution so every row has full support.
    matrix = 0.9 * matrix + 0.1 * zipf[None, :]
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


def make_language_modeling(
    num_sequences: int = 128,
    seq_len: int = 20,
    vocab_size: int = 64,
    *,
    branching: int = 4,
    seed: int = 0,
) -> LanguageModelingDataset:
    """Generate a Markov-chain token corpus windowed for next-token prediction."""
    if vocab_size < 2:
        raise ValueError("vocab_size must be at least 2")
    if seq_len < 2:
        raise ValueError("seq_len must be at least 2")
    rng = np.random.default_rng(seed)
    transitions = _markov_transition_matrix(vocab_size, branching, rng)
    total_tokens = num_sequences * (seq_len + 1)
    stream = np.empty(total_tokens, dtype=np.int64)
    stream[0] = rng.integers(0, vocab_size)
    for t in range(1, total_tokens):
        stream[t] = rng.choice(vocab_size, p=transitions[stream[t - 1]])
    windows = stream[: num_sequences * (seq_len + 1)].reshape(num_sequences, seq_len + 1)
    return LanguageModelingDataset(inputs=windows[:, :-1], targets=windows[:, 1:], vocab_size=vocab_size)
