"""Synthetic sequence-classification data standing in for the AN4 speech corpus.

Each class is defined by a characteristic temporal trajectory in feature
space (a slowly varying template modulated by class-specific frequencies),
sampled with additive noise and random time warping — enough temporal
structure that only a recurrent model captures it well, which is the role AN4
plays in the paper's benchmark suite.
"""

from __future__ import annotations

import numpy as np

from .synthetic import ArrayDataset


def make_sequence_classification(
    num_examples: int = 192,
    num_classes: int = 8,
    *,
    seq_len: int = 16,
    num_features: int = 12,
    noise: float = 0.4,
    seed: int = 0,
) -> ArrayDataset:
    """Sequences of shape ``(N, seq_len, num_features)`` with utterance-level labels."""
    if seq_len < 4:
        raise ValueError("seq_len must be at least 4")
    rng = np.random.default_rng(seed)
    time = np.linspace(0.0, 1.0, seq_len)
    templates = np.zeros((num_classes, seq_len, num_features))
    for cls in range(num_classes):
        for feat in range(num_features):
            freq = 1.0 + (cls % 5) + 0.3 * feat
            phase = rng.uniform(0.0, 2.0 * np.pi)
            envelope = np.exp(-((time - rng.uniform(0.2, 0.8)) ** 2) / 0.1)
            templates[cls, :, feat] = np.sin(2.0 * np.pi * freq * time + phase) * (0.5 + envelope)

    targets = rng.integers(0, num_classes, size=num_examples)
    inputs = np.empty((num_examples, seq_len, num_features))
    for i, cls in enumerate(targets):
        # Random temporal warp: resample the template at jittered time points.
        warp = np.sort(np.clip(time + rng.normal(0.0, 0.03, size=seq_len), 0.0, 1.0))
        warped = np.empty((seq_len, num_features))
        for feat in range(num_features):
            warped[:, feat] = np.interp(warp, time, templates[cls, :, feat])
        inputs[i] = warped + rng.normal(0.0, noise, size=(seq_len, num_features))
    return ArrayDataset(inputs=inputs, targets=targets)
