"""Synthetic vector-classification data (Gaussian blobs with class structure)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArrayDataset:
    """An in-memory dataset of ``(inputs, targets)`` arrays sharing a leading dimension."""

    inputs: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.targets):
            raise ValueError("inputs and targets must have the same number of examples")
        if len(self.inputs) == 0:
            raise ValueError("dataset cannot be empty")

    def __len__(self) -> int:
        return len(self.inputs)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(inputs=self.inputs[indices], targets=self.targets[indices])


def make_blobs_classification(
    num_examples: int = 512,
    num_features: int = 32,
    num_classes: int = 10,
    *,
    class_separation: float = 2.0,
    noise: float = 1.0,
    seed: int = 0,
) -> ArrayDataset:
    """Gaussian-blob classification: one anchored cluster per class plus noise.

    The separation/noise ratio controls how quickly a small model's loss
    drops, which lets integration tests assert "training reduces loss" without
    long runs.
    """
    if num_examples < num_classes:
        raise ValueError("need at least one example per class")
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, class_separation, size=(num_classes, num_features))
    targets = rng.integers(0, num_classes, size=num_examples)
    inputs = centers[targets] + rng.normal(0.0, noise, size=(num_examples, num_features))
    return ArrayDataset(inputs=inputs, targets=targets)


def make_regression(
    num_examples: int = 512,
    num_features: int = 16,
    *,
    noise: float = 0.1,
    seed: int = 0,
) -> ArrayDataset:
    """Linear regression data ``y = X w + noise`` with a dense ground-truth weight."""
    rng = np.random.default_rng(seed)
    weights = rng.normal(0.0, 1.0, size=num_features)
    inputs = rng.normal(0.0, 1.0, size=(num_examples, num_features))
    targets = inputs @ weights + rng.normal(0.0, noise, size=num_examples)
    return ArrayDataset(inputs=inputs, targets=targets[:, None])
