"""Batching and worker sharding for the data-parallel simulator.

In synchronous data-parallel training each of the ``N`` workers owns a
disjoint shard of the training set and iterates over it in its own order
(Algorithm 2).  ``shard_dataset`` performs the partitioning;
``BatchIterator`` yields an endless, reshuffled stream of mini-batches from a
shard so the trainer can run an arbitrary number of iterations.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .synthetic import ArrayDataset
from .text import LanguageModelingDataset

Dataset = ArrayDataset | LanguageModelingDataset


def shard_dataset(dataset: Dataset, num_shards: int, *, seed: int = 0) -> list[Dataset]:
    """Split a dataset into ``num_shards`` disjoint, near-equal random shards."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = len(dataset)
    if n < num_shards:
        raise ValueError(f"cannot split {n} examples into {num_shards} shards")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n)
    return [dataset.subset(np.sort(chunk)) for chunk in np.array_split(permutation, num_shards)]


class BatchIterator:
    """Endless mini-batch stream over one dataset shard.

    Every epoch the shard is reshuffled with the iterator's own generator, so
    two workers with different seeds see different orders even if (in tests)
    they share a shard.
    """

    def __init__(self, dataset: Dataset, batch_size: int, *, seed: int = 0, drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = min(batch_size, len(dataset))
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self._order = self._rng.permutation(len(dataset))
        self._cursor = 0
        self.epochs_completed = 0

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return self

    def __next__(self) -> tuple[np.ndarray, np.ndarray]:
        return self.next_batch()

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next ``(inputs, targets)`` batch, reshuffling at epoch ends."""
        n = len(self.dataset)
        if self._cursor + self.batch_size > n:
            remaining = n - self._cursor
            if remaining and not self.drop_last and self._cursor < n:
                indices = self._order[self._cursor :]
            else:
                indices = np.empty(0, dtype=np.int64)
            self._order = self._rng.permutation(n)
            self._cursor = 0
            self.epochs_completed += 1
            if indices.size == 0:
                indices = self._order[: self.batch_size]
                self._cursor = self.batch_size
        else:
            indices = self._order[self._cursor : self._cursor + self.batch_size]
            self._cursor += self.batch_size
        subset = self.dataset.subset(indices)
        return subset.inputs, subset.targets

    @property
    def batches_per_epoch(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))
