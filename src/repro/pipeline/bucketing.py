"""Fixed-size gradient bucketing (DDP-style).

Real data-parallel stacks (Horovod fusion buffers, PyTorch DDP gradient
buckets) never communicate the whole flattened gradient at once: the gradient
is split into fixed-size buckets that are compressed and shipped as soon as
they are ready, which bounds allocator pressure and lets communication overlap
with backpropagation.  :class:`BucketLayout` describes such a split of a flat
``d``-element gradient into ``ceil(d / bucket_size)`` buckets where every
bucket holds ``bucket_size`` elements except possibly a smaller (ragged) last
one.

The layout is pure arithmetic — no data is copied until a caller asks for
bucket views — so it is equally usable by the compression pipeline, the
timeline model (per-bucket communication pricing) and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor.sparse import FLOAT_BYTES, SparseGradient

#: Default bucket size in bytes.  4 MiB of fp32 wire payload (1 Mi elements)
#: is in the range used by DDP-style fusion buffers and is large enough that
#: per-bucket fitting stays statistically stable at aggressive ratios.
DEFAULT_BUCKET_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class BucketLayout:
    """Split of a flat ``total_size``-element vector into fixed-size buckets."""

    total_size: int
    bucket_size: int

    def __post_init__(self) -> None:
        if self.total_size < 1:
            raise ValueError(f"total_size must be >= 1, got {self.total_size}")
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")

    @classmethod
    def from_bytes(
        cls,
        total_size: int,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        *,
        element_bytes: int = FLOAT_BYTES,
    ) -> "BucketLayout":
        """Layout for a byte budget per bucket (fp32 wire elements by default)."""
        if bucket_bytes < element_bytes:
            raise ValueError(
                f"bucket_bytes ({bucket_bytes}) must hold at least one {element_bytes}-byte element"
            )
        return cls(total_size=total_size, bucket_size=bucket_bytes // element_bytes)

    @property
    def num_buckets(self) -> int:
        return -(-self.total_size // self.bucket_size)

    @property
    def last_bucket_size(self) -> int:
        """Size of the final (possibly ragged) bucket."""
        rem = self.total_size % self.bucket_size
        return rem if rem else self.bucket_size

    @property
    def is_ragged(self) -> bool:
        return self.last_bucket_size != self.bucket_size

    def starts(self) -> np.ndarray:
        """Offset of each bucket into the flat vector."""
        return np.arange(self.num_buckets, dtype=np.int64) * self.bucket_size

    def sizes(self) -> np.ndarray:
        """Element count of each bucket."""
        sizes = np.full(self.num_buckets, self.bucket_size, dtype=np.int64)
        sizes[-1] = self.last_bucket_size
        return sizes

    def bounds(self, index: int) -> tuple[int, int]:
        """Half-open ``[start, stop)`` range of bucket ``index``."""
        if not 0 <= index < self.num_buckets:
            raise IndexError(f"bucket index {index} out of range for {self.num_buckets} buckets")
        start = index * self.bucket_size
        return start, min(start + self.bucket_size, self.total_size)


def split_into_buckets(flat: np.ndarray, layout: BucketLayout) -> list[np.ndarray]:
    """Zero-copy views of ``flat``, one per bucket."""
    flat = np.asarray(flat).ravel()
    if flat.size != layout.total_size:
        raise ValueError(f"flat vector has {flat.size} elements, layout expects {layout.total_size}")
    return [flat[start:stop] for start, stop in (layout.bounds(i) for i in range(layout.num_buckets))]


def merge_sparse_buckets(buckets: list[SparseGradient], layout: BucketLayout) -> SparseGradient:
    """Merge per-bucket sparse gradients back into one global sparse gradient.

    Bucket-local indices are shifted by each bucket's offset; because buckets
    tile the flat vector, the merged indices are unique by construction (and
    globally sorted whenever each bucket's indices are sorted).
    """
    if len(buckets) != layout.num_buckets:
        raise ValueError(f"got {len(buckets)} bucket results, layout expects {layout.num_buckets}")
    indices: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for i, sparse in enumerate(buckets):
        start, stop = layout.bounds(i)
        if sparse.dense_size != stop - start:
            raise ValueError(
                f"bucket {i} has dense_size {sparse.dense_size}, layout expects {stop - start}"
            )
        indices.append(sparse.indices + start)
        values.append(sparse.values)
    return SparseGradient(
        indices=np.concatenate(indices),
        values=np.concatenate(values),
        dense_size=layout.total_size,
    )
