"""Fixed-size and layer-aware gradient bucketing (DDP-style).

Real data-parallel stacks (Horovod fusion buffers, PyTorch DDP gradient
buckets) never communicate the whole flattened gradient at once: the gradient
is split into buckets that are compressed and shipped as soon as they are
ready, which bounds allocator pressure and lets communication overlap with
backpropagation.  :class:`BucketLayout` describes such a split of a flat
``d``-element gradient, in two flavours:

* the default *uniform* layout of ``ceil(d / bucket_size)`` buckets where
  every bucket holds ``bucket_size`` elements except possibly a smaller
  (ragged) last one,
* a *layer-aware* layout (:meth:`BucketLayout.from_flat_spec`) whose bucket
  boundaries snap to :class:`~repro.tensor.flatten.FlatSpec` slot (layer)
  boundaries the way DDP's bucket builder assigns parameters to buckets — no
  layer is split across buckets unless the layer alone exceeds the bucket
  budget.

Because backpropagation produces gradients in reverse layer order, each bucket
also has a *gradient-ready* point: the fraction of the backward pass after
which every element in the bucket has its gradient
(:meth:`BucketLayout.ready_fractions`).  The event-driven iteration schedule
uses these to overlap per-bucket compression/communication with backprop.

The layout is pure arithmetic — no data is copied until a caller asks for
bucket views — so it is equally usable by the compression pipeline, the
timeline model (per-bucket communication pricing) and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor.flatten import FlatSpec
from ..tensor.sparse import FLOAT_BYTES, SparseGradient

#: Default bucket size in bytes.  4 MiB of fp32 wire payload (1 Mi elements)
#: is in the range used by DDP-style fusion buffers and is large enough that
#: per-bucket fitting stays statistically stable at aggressive ratios.
DEFAULT_BUCKET_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class BucketLayout:
    """Split of a flat ``total_size``-element vector into gradient buckets.

    With ``boundaries=None`` the split is uniform: fixed ``bucket_size``
    elements per bucket with a possibly ragged last bucket.  With explicit
    ``boundaries`` (ascending bucket start offsets, first one ``0``) bucket
    sizes may vary — the layer-aware layout built by :meth:`from_flat_spec`
    uses this; ``bucket_size`` then records the nominal per-bucket element
    budget the boundaries were built against.
    """

    total_size: int
    bucket_size: int
    boundaries: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.total_size < 1:
            raise ValueError(f"total_size must be >= 1, got {self.total_size}")
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")
        if self.boundaries is not None:
            if not self.boundaries or self.boundaries[0] != 0:
                raise ValueError("boundaries must be non-empty and start at offset 0")
            if any(b >= c for b, c in zip(self.boundaries, self.boundaries[1:])):
                raise ValueError("boundaries must be strictly increasing")
            if self.boundaries[-1] >= self.total_size:
                raise ValueError("boundaries must lie inside [0, total_size)")

    @classmethod
    def from_bytes(
        cls,
        total_size: int,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        *,
        element_bytes: int = FLOAT_BYTES,
    ) -> "BucketLayout":
        """Uniform layout for a byte budget per bucket (fp32 wire elements by default)."""
        if bucket_bytes < element_bytes:
            raise ValueError(
                f"bucket_bytes ({bucket_bytes}) must hold at least one {element_bytes}-byte element"
            )
        return cls(total_size=total_size, bucket_size=bucket_bytes // element_bytes)

    @classmethod
    def from_flat_spec(
        cls,
        spec: FlatSpec,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        *,
        element_bytes: int = FLOAT_BYTES,
    ) -> "BucketLayout":
        """Layer-aware layout whose bucket boundaries snap to ``spec``'s slots.

        Slots (layers) are packed into buckets DDP-style: a bucket closes when
        adding the next slot would exceed the per-bucket element budget, so no
        slot is ever split across buckets — except slots that alone exceed the
        budget, which are cut into budget-sized chunks so every bucket stays
        within ``bucket_bytes``.
        """
        if bucket_bytes < element_bytes:
            raise ValueError(
                f"bucket_bytes ({bucket_bytes}) must hold at least one {element_bytes}-byte element"
            )
        if not spec.slots:
            raise ValueError("spec must contain at least one slot")
        capacity = bucket_bytes // element_bytes
        # Slots tile the flat vector contiguously, so the open bucket's fill is
        # always ``slot.offset - boundaries[-1]``.
        boundaries: list[int] = [0]
        for slot in spec.slots:
            if slot.size > capacity:
                # Oversized layer: close the open bucket, then cut the layer
                # into budget-sized chunks (its tail chunk stays open).
                if slot.offset != boundaries[-1]:
                    boundaries.append(slot.offset)
                boundaries.extend(range(slot.offset + capacity, slot.offset + slot.size, capacity))
            elif slot.offset + slot.size - boundaries[-1] > capacity:
                boundaries.append(slot.offset)
        return cls(total_size=spec.total_size, bucket_size=capacity, boundaries=tuple(boundaries))

    @property
    def is_uniform(self) -> bool:
        return self.boundaries is None

    @property
    def num_buckets(self) -> int:
        if self.boundaries is not None:
            return len(self.boundaries)
        return -(-self.total_size // self.bucket_size)

    @property
    def last_bucket_size(self) -> int:
        """Size of the final (possibly ragged) bucket."""
        if self.boundaries is not None:
            return self.total_size - self.boundaries[-1]
        rem = self.total_size % self.bucket_size
        return rem if rem else self.bucket_size

    @property
    def is_ragged(self) -> bool:
        return self.last_bucket_size != self.bucket_size

    def starts(self) -> np.ndarray:
        """Offset of each bucket into the flat vector."""
        if self.boundaries is not None:
            return np.asarray(self.boundaries, dtype=np.int64)
        return np.arange(self.num_buckets, dtype=np.int64) * self.bucket_size

    def sizes(self) -> np.ndarray:
        """Element count of each bucket."""
        if self.boundaries is not None:
            edges = np.append(self.starts(), self.total_size)
            return np.diff(edges)
        sizes = np.full(self.num_buckets, self.bucket_size, dtype=np.int64)
        sizes[-1] = self.last_bucket_size
        return sizes

    def bounds(self, index: int) -> tuple[int, int]:
        """Half-open ``[start, stop)`` range of bucket ``index``."""
        if not 0 <= index < self.num_buckets:
            raise IndexError(f"bucket index {index} out of range for {self.num_buckets} buckets")
        if self.boundaries is not None:
            start = self.boundaries[index]
            stop = self.boundaries[index + 1] if index + 1 < len(self.boundaries) else self.total_size
            return start, stop
        start = index * self.bucket_size
        return start, min(start + self.bucket_size, self.total_size)

    def bucket_of(self, indices: np.ndarray) -> np.ndarray:
        """Bucket id of each flat element index."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.boundaries is not None:
            return np.searchsorted(self.starts(), indices, side="right") - 1
        return indices // self.bucket_size

    def ready_fractions(self) -> np.ndarray:
        """Backward-pass fraction after which each bucket's gradient is complete.

        Backpropagation walks the layers in reverse order, producing gradients
        from the *end* of the flat vector towards the front at a rate
        proportional to the element count; a bucket is complete once its
        lowest-offset element has its gradient.  The last bucket is therefore
        ready first, and the bucket holding offset 0 exactly at the end of the
        backward pass (fraction 1.0).
        """
        starts = self.starts().astype(np.float64)
        return (self.total_size - starts) / self.total_size


def split_into_buckets(flat: np.ndarray, layout: BucketLayout) -> list[np.ndarray]:
    """Zero-copy views of ``flat``, one per bucket."""
    flat = np.asarray(flat).ravel()
    if flat.size != layout.total_size:
        raise ValueError(f"flat vector has {flat.size} elements, layout expects {layout.total_size}")
    return [flat[start:stop] for start, stop in (layout.bounds(i) for i in range(layout.num_buckets))]


def merge_sparse_buckets(buckets: list[SparseGradient], layout: BucketLayout) -> SparseGradient:
    """Merge per-bucket sparse gradients back into one global sparse gradient.

    Bucket-local indices are shifted by each bucket's offset; because buckets
    tile the flat vector, the merged indices are unique by construction (and
    globally sorted whenever each bucket's indices are sorted).
    """
    if len(buckets) != layout.num_buckets:
        raise ValueError(f"got {len(buckets)} bucket results, layout expects {layout.num_buckets}")
    indices: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for i, sparse in enumerate(buckets):
        start, stop = layout.bounds(i)
        if sparse.dense_size != stop - start:
            raise ValueError(
                f"bucket {i} has dense_size {sparse.dense_size}, layout expects {stop - start}"
            )
        indices.append(sparse.indices + start)
        values.append(sparse.values)
    return SparseGradient(
        indices=np.concatenate(indices),
        values=np.concatenate(values),
        dense_size=layout.total_size,
    )
