"""Batched multi-stage SID threshold estimation over gradient buckets.

:func:`estimate_multi_stage_bucketed` reproduces
:func:`repro.core.threshold.estimate_multi_stage` independently for every
bucket of a :class:`~repro.pipeline.bucketing.BucketLayout` — but runs all
buckets through each fitting stage together as a handful of vectorised NumPy
passes instead of a Python loop of per-bucket fits:

* stage-one moments come from ``np.add.reduceat`` over the flat
  absolute-gradient vector (which handles the ragged last bucket with no
  padding) or, equivalently, from a 2-D ``(buckets, bucket_size)`` view,
* later peak-over-threshold stages keep all buckets' exceedances in one
  compacted vector with a parallel bucket-id vector, so per-bucket moments are
  ``np.bincount`` reductions,
* the closed-form threshold formulas (Corollaries 1.1-1.3, Lemma 2) are
  evaluated element-wise across the bucket axis.

Per-bucket control flow (per-stage ratios, the ``is_last`` collapse, the
minimum-sample stopping rule, the single-stage fallback for tiny buckets)
follows the scalar estimator exactly, tracked with boolean bucket masks, so
the thresholds agree with a per-bucket scalar loop up to floating-point
reduction order.  Buckets whose fit would be degenerate (all-zero, or too few
exceedances for a GP moment match) — cases where the scalar estimator raises —
get a ``+inf`` threshold instead, i.e. they simply select nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compressors.base import OpRecord
from ..core.threshold import MIN_STAGE_SAMPLE, stage_sid
from ..stats import special
from ..stats.fitting import SIDName, validate_sid
from .bucketing import BucketLayout

#: Matches ``GeneralizedPareto._SHAPE_EPS``: below this the GP quantile uses
#: its exponential limit.
_GP_SHAPE_EPS = 1e-8


@dataclass
class BucketedThresholdEstimate:
    """Per-bucket thresholds from one batched multi-stage estimation."""

    thresholds: np.ndarray  # (num_buckets,) final per-bucket thresholds
    stages_used: np.ndarray  # (num_buckets,) stages actually fitted per bucket
    ops: list[OpRecord] = field(default_factory=list)

    @property
    def max_stages_used(self) -> int:
        return int(self.stages_used.max()) if self.stages_used.size else 0


def _per_bucket_reduce(flat: np.ndarray, layout: BucketLayout) -> np.ndarray:
    """Per-bucket sums of a flat vector (ragged-safe, one pass)."""
    if layout.num_buckets == 1:
        return np.asarray([flat.sum()], dtype=np.float64)
    return np.add.reduceat(flat, layout.starts())


def _bucket_mask_and_counts(
    abs_flat: np.ndarray, layout: BucketLayout, thresholds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean keep-mask ``|g| >= eta_bucket`` over the flat vector plus per-bucket counts.

    For uniform layouts the prefix is compared through a 2-D broadcast view and
    the ragged tail (when present) separately; layer-aware layouts with
    variable bucket sizes broadcast each bucket's threshold across its span
    instead.  ``+inf`` thresholds drop a bucket entirely.
    """
    if not layout.is_uniform:
        keep = abs_flat >= np.repeat(thresholds, layout.sizes())
        if layout.num_buckets == 1:
            counts = np.asarray([keep.sum()], dtype=np.int64)
        else:
            counts = np.add.reduceat(keep.astype(np.int64), layout.starts())
        return keep, counts
    d, size = layout.total_size, layout.bucket_size
    nfull = d // size
    keep = np.empty(d, dtype=bool)
    counts = np.zeros(layout.num_buckets, dtype=np.int64)
    if nfull:
        body = abs_flat[: nfull * size].reshape(nfull, size)
        body_keep = keep[: nfull * size].reshape(nfull, size)
        np.greater_equal(body, thresholds[:nfull, None], out=body_keep)
        counts[:nfull] = body_keep.sum(axis=1)
    if nfull * size < d:
        tail = abs_flat[nfull * size :] >= thresholds[nfull]
        keep[nfull * size :] = tail
        counts[nfull] = int(tail.sum())
    return keep, counts


def _fit_stage_thresholds(
    sid: str,
    delta_m: np.ndarray,
    counts: np.ndarray,
    sums: np.ndarray,
    sumsq: np.ndarray | None,
    pos_counts: np.ndarray | None,
    pos_logsums: np.ndarray | None,
    loc: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Vectorised ``Thresh_Estimation`` across the bucket axis.

    Mirrors :func:`repro.stats.fitting.estimate_threshold` bucket-wise;
    buckets outside ``mask`` or with degenerate moments get ``+inf``.
    """
    num = delta_m.size
    eta = np.full(num, np.inf)
    cnt = np.maximum(counts, 1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if sid == "exponential":
            mean = sums / cnt - loc
            ok = mask & (counts > 0) & (mean > 0.0)
            eta[ok] = mean[ok] * np.log(1.0 / delta_m[ok]) + loc[ok]
        elif sid == "gamma":
            # Gamma fitting only ever happens at stage one (loc == 0) and, like
            # the scalar Gamma.fit, uses the strictly-positive sample only.
            pcnt = np.maximum(pos_counts, 1).astype(np.float64)
            mean = sums / pcnt
            s = np.log(np.maximum(mean, 1e-300)) - pos_logsums / pcnt
            shape = np.where(
                s <= 0.0,
                1e6,
                (3.0 - s + np.sqrt((s - 3.0) ** 2 + 24.0 * s)) / np.maximum(12.0 * s, 1e-300),
            )
            shape = np.clip(shape, 1e-6, 1e6)
            scale = mean / shape
            ok = mask & (pos_counts > 0) & (mean > 0.0)
            raw = -scale * (np.log(delta_m) + special.log_gamma(shape))
            eta[ok] = np.maximum(raw, 0.0)[ok] + loc[ok]
        else:  # gpareto
            mu = sums / cnt - loc
            ex2 = (sumsq - 2.0 * loc * sums) / cnt + loc * loc
            var = ex2 - mu * mu
            ok = mask & (counts >= 2) & (mu > 0.0) & (var > 0.0)
            ratio2 = np.where(ok, mu * mu / np.where(var > 0.0, var, 1.0), 1.0)
            shape = np.clip(0.5 * (1.0 - ratio2), -0.499, 0.499)
            scale = np.maximum(0.5 * mu * (ratio2 + 1.0), 1e-300)
            exp_limit = scale * np.log(1.0 / np.maximum(delta_m, 1e-300))
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                general = scale / np.where(np.abs(shape) < _GP_SHAPE_EPS, 1.0, shape) * (
                    np.exp(-shape * np.log(np.maximum(delta_m, 1e-300))) - 1.0
                )
            quantile = np.where(np.abs(shape) < _GP_SHAPE_EPS, exp_limit, general)
            eta[ok] = loc[ok] + quantile[ok]
    return eta


def estimate_multi_stage_bucketed(
    abs_flat: np.ndarray,
    layout: BucketLayout,
    delta: float,
    sid: SIDName,
    num_stages: int,
    *,
    first_stage_ratio: float,
    min_stage_sample: int = MIN_STAGE_SAMPLE,
) -> BucketedThresholdEstimate:
    """Batched equivalent of per-bucket :func:`~repro.core.threshold.estimate_multi_stage`."""
    validate_sid(sid)
    if abs_flat.size != layout.total_size:
        raise ValueError(f"abs_flat has {abs_flat.size} elements, layout expects {layout.total_size}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")

    num = layout.num_buckets
    sizes = layout.sizes()
    target_k = delta * sizes.astype(np.float64)

    thresholds = np.full(num, np.inf)
    eta_prev = np.zeros(num)
    active = np.ones(num, dtype=bool)
    stages_used = np.zeros(num, dtype=np.int64)
    ops: list[OpRecord] = []

    # Current exceedance set: bucket-contiguous values + parallel bucket ids.
    # Stage one reduces straight off ``abs_flat`` instead.
    vals: np.ndarray | None = None
    ids: np.ndarray | None = None

    for m in range(num_stages):
        counts = sizes if m == 0 else np.bincount(ids, minlength=num)

        fallback = np.zeros(num, dtype=bool)
        if m == 0:
            # Tiny buckets: single-stage fit on the whole bucket at the raw
            # target ratio (the scalar estimator's fallback path).
            fallback = active & (counts < min_stage_sample)
        else:
            # Exceedance set too small to fit another stage: stop refining and
            # keep the previous stage's threshold.
            shrunk = active & (counts < min_stage_sample)
            thresholds[shrunk] = eta_prev[shrunk]
            active = active & ~shrunk
        if not active.any():
            break

        needed = np.where(counts > 0, target_k / np.maximum(counts, 1), np.inf)
        needed = np.minimum(needed, 0.999)
        remaining = num_stages - m
        if remaining == 1:
            is_last = active.copy()
        else:
            is_last = active & (needed >= first_stage_ratio)
        if m == 0:
            delta_m = np.where(is_last, needed, first_stage_ratio)
            delta_m = np.where(fallback, delta, delta_m)
            is_last = is_last | fallback
        else:
            geometric = np.power(needed, 1.0 / remaining)
            delta_m = np.where(is_last, needed, np.maximum(geometric, needed))

        this_sid = stage_sid(sid, m)
        active_elems = int(counts[active].sum())
        if m == 0:
            sums = _per_bucket_reduce(abs_flat, layout)
            sumsq = pos_counts = pos_logsums = None
            if this_sid == "gpareto":
                sumsq = _per_bucket_reduce(abs_flat * abs_flat, layout)
            elif this_sid == "gamma":
                positive = abs_flat > 0.0
                pos_counts = _per_bucket_reduce(positive.astype(np.float64), layout).astype(np.int64)
                safe_log = np.log(np.where(positive, abs_flat, 1.0))
                pos_logsums = _per_bucket_reduce(safe_log, layout)
            loc = np.zeros(num)
        else:
            sums = np.bincount(ids, weights=vals, minlength=num)
            sumsq = pos_counts = pos_logsums = None
            if this_sid == "gpareto":
                sumsq = np.bincount(ids, weights=vals * vals, minlength=num)
            loc = eta_prev
        ops.extend(_batched_fit_ops(this_sid, active_elems))

        eta = _fit_stage_thresholds(
            this_sid, delta_m, counts, sums, sumsq, pos_counts, pos_logsums, loc, active
        )
        eta = np.maximum(eta, eta_prev)
        stages_used[active] += 1

        finished = active & is_last
        thresholds[finished] = eta[finished]
        eta_prev = np.where(active, eta, eta_prev)
        active = active & ~is_last
        if not active.any():
            break

        # Compact the exceedances of still-active buckets for the next stage.
        if m == 0:
            cutoff = np.where(active, eta_prev, np.inf)
            keep, kept_counts = _bucket_mask_and_counts(abs_flat, layout, cutoff)
            vals = abs_flat[keep]
            ids = np.repeat(np.arange(num), kept_counts)
            kept_total = int(kept_counts.sum())
            current_total = int(sizes.sum())
        else:
            cutoff = np.where(active, eta_prev, np.inf)
            keep = vals >= cutoff[ids]
            current_total = vals.size
            vals = vals[keep]
            ids = ids[keep]
            kept_total = vals.size
        ops.append(OpRecord("elementwise", current_total))
        ops.append(OpRecord("compact", current_total, kept_total))

    # Any bucket never finalised (loop exhausted while shrinking) keeps its
    # last stage threshold.
    unfinished = np.isinf(thresholds) & (eta_prev > 0.0) & (stages_used > 0)
    thresholds[unfinished] = eta_prev[unfinished]
    return BucketedThresholdEstimate(thresholds=thresholds, stages_used=stages_used, ops=ops)


def _batched_fit_ops(sid: str, size: int) -> list[OpRecord]:
    """Primitive trace of one batched (all-buckets-at-once) SID fit.

    Sizes mirror :func:`repro.core.threshold._fit_ops` but cover every active
    bucket in a single fused pass, so there is one launch per primitive rather
    than one per bucket — the modelling counterpart of the vectorisation.
    """
    if sid == "exponential":
        return [OpRecord("reduce", size)]
    if sid == "gamma":
        return [OpRecord("log_reduce", size), OpRecord("reduce", size)]
    return [OpRecord("reduce", size), OpRecord("reduce", size)]
