"""Bucketed compression pipeline: DDP-style fixed-size gradient buckets.

Splits the flattened gradient into fixed-size buckets, compresses each bucket
(with a batched, vectorised fast path for SIDCo's multi-stage SID fitting),
and merges the sparse selections — recording per-bucket payloads so the
timeline model can price communication bucket by bucket.
"""

from .bucketing import (
    DEFAULT_BUCKET_BYTES,
    BucketLayout,
    merge_sparse_buckets,
    split_into_buckets,
)
from .pipeline import CompressionPipeline
from .vectorized import BucketedThresholdEstimate, estimate_multi_stage_bucketed

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "BucketLayout",
    "BucketedThresholdEstimate",
    "CompressionPipeline",
    "estimate_multi_stage_bucketed",
    "merge_sparse_buckets",
    "split_into_buckets",
]
