"""Bucketed compression pipeline.

:class:`CompressionPipeline` wraps any :class:`~repro.compressors.base.Compressor`
and applies it per fixed-size bucket of the flattened gradient (DDP-style),
merging the per-bucket sparse selections into one global
:class:`~repro.tensor.sparse.SparseGradient`.  Every result carries per-bucket
payload sizes in its metadata so the timeline model can price communication
bucket by bucket (the prerequisite for modelling compute/communication
overlap).

With ``vectorized=True`` (the default) the pipeline does not loop over
buckets at all: any compressor that implements
:meth:`~repro.compressors.base.Compressor.fit_all_buckets` — every registry
compressor does — fits *all* buckets in one batched NumPy pass and the
pipeline packages the returned :class:`~repro.compressors.base.BucketedFit`.
For SIDCo that batched pass is
:func:`~repro.pipeline.vectorized.estimate_multi_stage_bucketed`, sharing the
wrapped instance's stage controller, which observes the global achieved
selection once per call exactly like the unbucketed compressor.  Passing
``vectorized=False`` keeps identical selection semantics but runs the scalar
per-bucket loop — the reference every batched path is tested against
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..compressors.base import BucketedFit, Compressor, CompressionResult, OpRecord
from ..core.sidco import SIDCo
from ..core.threshold import estimate_multi_stage
from ..tensor.flatten import FlatSpec
from ..tensor.sparse import FLOAT_BYTES, INDEX_BYTES, SparseGradient
from .bucketing import DEFAULT_BUCKET_BYTES, BucketLayout, merge_sparse_buckets, split_into_buckets
from .vectorized import _bucket_mask_and_counts


class CompressionPipeline(Compressor):
    """Split-compress-merge pipeline over fixed-size gradient buckets.

    Parameters
    ----------
    compressor:
        The per-bucket compressor (an instance, or a registry name).
    bucket_bytes:
        Wire-payload budget per bucket; the element count per bucket is
        ``bucket_bytes // element_bytes``.  Defaults to 4 MiB of fp32.
    element_bytes:
        Bytes per dense gradient element on the wire (fp32 by default).
    vectorized:
        Use the batched all-buckets-at-once ``fit_all_buckets`` fast path for
        any compressor that provides one (every registry compressor does);
        compressors without it — or declining a particular input — fall back
        to the scalar per-bucket loop.
    flat_spec:
        Optional layer layout of the flattened gradient.  When set, gradients
        whose size matches the spec are bucketed layer-aware
        (:meth:`BucketLayout.from_flat_spec`): bucket boundaries snap to layer
        boundaries DDP-style and per-bucket gradient-ready fractions are
        recorded for the overlap-aware iteration schedule.
    """

    def __init__(
        self,
        compressor: Compressor | str,
        *,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        element_bytes: int = FLOAT_BYTES,
        vectorized: bool = True,
        flat_spec: FlatSpec | None = None,
    ) -> None:
        if isinstance(compressor, str):
            # Deferred import: the registry registers bucketed factories that
            # import this module.
            from ..compressors.registry import create_compressor

            compressor = create_compressor(compressor)
        if isinstance(compressor, CompressionPipeline):
            raise ValueError("cannot nest CompressionPipeline inside itself")
        if element_bytes < 1:
            raise ValueError(f"element_bytes must be >= 1, got {element_bytes}")
        if bucket_bytes < element_bytes:
            raise ValueError(f"bucket_bytes ({bucket_bytes}) must hold at least one element")
        self.compressor = compressor
        self.bucket_bytes = int(bucket_bytes)
        self.element_bytes = int(element_bytes)
        self.vectorized = bool(vectorized)
        self.flat_spec = flat_spec
        self.name = f"{compressor.name}-bucketed"

    def reset(self) -> None:
        self.compressor.reset()

    def layout_for(self, size: int) -> BucketLayout:
        """Bucket layout the pipeline uses for a ``size``-element gradient.

        Layer-aware when a matching :class:`~repro.tensor.flatten.FlatSpec`
        was provided; a size mismatch (e.g. the pipeline reused on a different
        tensor) falls back to the uniform fixed-size layout.
        """
        if self.flat_spec is not None and self.flat_spec.total_size == size:
            return BucketLayout.from_flat_spec(
                self.flat_spec, self.bucket_bytes, element_bytes=self.element_bytes
            )
        return BucketLayout.from_bytes(size, self.bucket_bytes, element_bytes=self.element_bytes)

    def compress(self, gradient: np.ndarray, ratio: float) -> CompressionResult:
        arr = self._validate(gradient, ratio)
        layout = self.layout_for(arr.size)
        if isinstance(self.compressor, SIDCo):
            return self._compress_sidco(arr, ratio, layout)
        if self.vectorized:
            fit = self.compressor.fit_all_buckets(arr, layout, ratio)
            if fit is not None:
                return self._result_from_fit(fit, layout)
        return self._compress_generic(arr, ratio, layout)

    # -- SIDCo fast path ---------------------------------------------------

    def _compress_sidco(self, arr: np.ndarray, ratio: float, layout: BucketLayout) -> CompressionResult:
        inner: SIDCo = self.compressor
        d = arr.size
        target_k = self._target_k(d, ratio)

        if self.vectorized:
            fit = inner.fit_all_buckets(arr, layout, ratio)
            if fit is not None:
                result = self._result_from_fit(fit, layout)
                inner.controller.observe(result.achieved_k, target_k)
                return result

        abs_flat = np.abs(arr)
        if d < 2 or float(abs_flat.max()) == 0.0:
            # No tail to fit anywhere; let the wrapped compressor's degenerate
            # handling pick the selection, but keep the pipeline's metadata
            # contract (per-bucket payloads) intact for the timeline model.
            result = inner.compress(arr, ratio)
            bucket_nnz = np.bincount(
                layout.bucket_of(result.sparse.indices), minlength=layout.num_buckets
            ).astype(np.int64)
            result.metadata.update(self._bucket_metadata(layout, bucket_nnz, degenerate=True))
            return result

        ops: list[OpRecord] = [OpRecord("elementwise", d)]
        num_stages = inner.controller.num_stages
        thresholds = np.empty(layout.num_buckets)
        stages_used = np.empty(layout.num_buckets, dtype=np.int64)
        for i in range(layout.num_buckets):
            start, stop = layout.bounds(i)
            try:
                est = estimate_multi_stage(
                    abs_flat[start:stop],
                    ratio,
                    inner.sid,
                    num_stages,
                    first_stage_ratio=inner.first_stage_ratio,
                )
                thresholds[i] = est.threshold
                stages_used[i] = est.stages_used
                ops.extend(est.ops)
            except ValueError:
                # Degenerate bucket (e.g. all-zero): select nothing, like
                # the vectorized path.
                thresholds[i] = np.inf
                stages_used[i] = 0

        mask, bucket_nnz = _bucket_mask_and_counts(abs_flat, layout, thresholds)
        ops.append(OpRecord("elementwise", d))
        ops.append(OpRecord("compact", d, int(bucket_nnz.sum())))
        indices = np.flatnonzero(mask)
        sparse = SparseGradient(indices=indices, values=arr[indices], dense_size=d)

        finite = np.isfinite(thresholds)
        result = CompressionResult(
            sparse=sparse,
            target_ratio=ratio,
            threshold=float(thresholds[finite].mean()) if finite.any() else None,
            ops=ops,
            metadata=self._bucket_metadata(
                layout,
                bucket_nnz,
                sid=inner.sid,
                vectorized=self.vectorized,
                num_stages_configured=num_stages,
                stages_used=int(stages_used.max()) if stages_used.size else 0,
                bucket_thresholds=thresholds,
                bucket_stages_used=stages_used,
            ),
        )
        inner.controller.observe(result.achieved_k, target_k)
        return result

    # -- generic per-bucket loop -------------------------------------------

    def _compress_generic(self, arr: np.ndarray, ratio: float, layout: BucketLayout) -> CompressionResult:
        results = [
            self.compressor.compress(view, ratio) for view in split_into_buckets(arr, layout)
        ]
        sparse = merge_sparse_buckets([r.sparse for r in results], layout)
        ops = [op for r in results for op in r.ops]
        bucket_nnz = np.asarray([r.sparse.nnz for r in results], dtype=np.int64)
        bucket_thresholds = [r.threshold for r in results]
        have_thresholds = [t for t in bucket_thresholds if t is not None]
        return CompressionResult(
            sparse=sparse,
            # All buckets see the same requested ratio, so they agree on the
            # effective target (NoCompression normalises it to 1.0).
            target_ratio=results[0].target_ratio,
            threshold=float(np.mean(have_thresholds)) if have_thresholds else None,
            ops=ops,
            metadata=self._bucket_metadata(
                layout,
                bucket_nnz,
                inner=self.compressor.name,
                bucket_thresholds=bucket_thresholds,
            ),
        )

    # -- batched fast path --------------------------------------------------

    def _result_from_fit(self, fit: BucketedFit, layout: BucketLayout) -> CompressionResult:
        """Package a batched :class:`BucketedFit` exactly like the scalar merge.

        The summary threshold is the mean of the per-bucket thresholds that
        exist (``None``/``+inf`` entries mark buckets with no threshold-based
        selection), matching both the generic per-bucket merge and the SIDCo
        fast path.
        """
        bucket_nnz = np.asarray(fit.bucket_nnz, dtype=np.int64)
        sparse = SparseGradient(indices=fit.indices, values=fit.values, dense_size=layout.total_size)
        have = [t for t in fit.bucket_thresholds if t is not None and np.isfinite(t)]
        return CompressionResult(
            sparse=sparse,
            target_ratio=fit.target_ratio,
            threshold=float(np.mean(have)) if have else None,
            ops=list(fit.ops),
            metadata=self._bucket_metadata(
                layout,
                bucket_nnz,
                inner=self.compressor.name,
                vectorized=True,
                bucket_thresholds=fit.bucket_thresholds,
                **fit.metadata,
            ),
        )

    # -- shared ------------------------------------------------------------

    @staticmethod
    def _bucket_metadata(layout: BucketLayout, bucket_nnz: np.ndarray, **extra) -> dict:
        payload = (bucket_nnz * (FLOAT_BYTES + INDEX_BYTES)).tolist()
        meta = {
            "num_buckets": layout.num_buckets,
            "bucket_size": layout.bucket_size,
            "bucket_sizes": layout.sizes().tolist(),
            "bucket_ready_fractions": layout.ready_fractions().tolist(),
            "layer_aware": not layout.is_uniform,
            "bucket_nnz": bucket_nnz.tolist(),
            "bucket_payload_bytes": payload,
        }
        meta.update(extra)
        return meta
