"""Benchmark registry mirroring Table 1 of the paper.

Each :class:`BenchmarkConfig` couples the *full-size* facts from Table 1
(model dimension, per-worker batch size, communication-overhead fraction,
optimizer family, quality metric) with the *proxy* the simulator actually
trains (a scaled-down model of the same architectural family on a synthetic
dataset).  Training dynamics come from the proxy; wall-clock behaviour comes
from the full-size dimension via the timeline/performance models, so the
compute/communication balance of every benchmark matches its Table 1 row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..data import (
    make_image_classification,
    make_language_modeling,
    make_sequence_classification,
)
from ..distributed.knobs import KNOB_FIELDS, SimulationKnobs, knob_defaults
from ..distributed.network import CLUSTER_ETHERNET_10G, NetworkModel
from ..distributed.timeline import compute_time_for_overhead
from ..nn.models import build_model

#: Shared knob-default table (single source: ``SimulationKnobs`` field
#: defaults), read once at class-definition time below.
_KNOB_DEFAULTS = knob_defaults()

#: Number of workers in the paper's dedicated cluster (Appendix D, Cluster 1).
PAPER_NUM_WORKERS = 8

#: Compression ratios evaluated throughout the paper.
PAPER_RATIOS: tuple[float, ...] = (0.1, 0.01, 0.001)


@dataclass(frozen=True)
class BenchmarkConfig:
    """One row of Table 1 plus the proxy used to simulate it."""

    name: str
    task: str
    quality_metric: str
    # -- full-size facts from Table 1 -------------------------------------
    full_dimension: int
    per_worker_batch: int
    learning_rate: float
    epochs: int
    comm_overhead: float
    optimizer: str  # "sgd" or "nesterov"
    # -- proxy used by the simulator ---------------------------------------
    proxy_model: str = "mlp"
    proxy_model_kwargs: dict = field(default_factory=dict)
    proxy_dataset: str = "blobs"
    proxy_dataset_kwargs: dict = field(default_factory=dict)
    proxy_iterations: int = 60
    proxy_batch_size: int = 8
    proxy_lr: float = 0.1
    proxy_momentum: float = 0.0
    proxy_nesterov: bool = False
    proxy_clip_norm: float | None = None
    # -- simulation knobs (defaults from the shared SimulationKnobs table) --
    #: Bucketed-pipeline knob: bytes per gradient bucket (DDP-style).  ``None``
    #: compresses the whole flattened gradient as one tensor; a value wraps
    #: each worker's compressor in :class:`repro.pipeline.CompressionPipeline`
    #: and prices communication per bucket.
    bucket_bytes: int | None = _KNOB_DEFAULTS["bucket_bytes"]
    #: Overlap policy for the event-driven iteration schedule (``"none"``,
    #: ``"comm"`` or ``"comm+compress"``); meaningful for bucketed runs.
    overlap: str = _KNOB_DEFAULTS["overlap"]
    #: Cluster-topology preset name (see :func:`repro.distributed.get_topology`)
    #: the collectives run over; ``None`` keeps the degenerate single-level
    #: topology over the run's network.  When set, the worker count comes from
    #: the topology.
    topology: str | None = _KNOB_DEFAULTS["topology"]
    #: Collective algorithm pricing the dense baseline all-reduce.
    allreduce_algorithm: str = _KNOB_DEFAULTS["allreduce_algorithm"]
    #: Collective algorithm pricing the sparse all-gather.
    allgather_algorithm: str = _KNOB_DEFAULTS["allgather_algorithm"]
    #: Payload chunks the hierarchical collective phases pipeline over
    #: (1 = serial phases, the PR-3 pricing).
    pipeline_chunks: int = _KNOB_DEFAULTS["pipeline_chunks"]
    #: Index-overlap assumption for per-node sparse dedup (``"uniform"``,
    #: ``"identical"``, ``"disjoint"``) or ``None`` to ship raw concatenated
    #: node aggregates.
    dedup_assumption: str | None = _KNOB_DEFAULTS["dedup_assumption"]
    #: Schedule buckets on per-link network lanes (cross-bucket pipelining):
    #: bucket *i+1*'s intra-node collective phase overlaps bucket *i*'s
    #: inter-node phase.  ``False`` keeps the serial whole-occupancy network
    #: lane (the PR-4 scheduler, reproduced bit-for-bit).
    cross_bucket_pipeline: bool = _KNOB_DEFAULTS["cross_bucket_pipeline"]
    #: Scheduler implementation for bucketed iterations: ``"loop"`` (the
    #: scalar reference simulator) or ``"vectorized"`` (batched NumPy pricing
    #: + array scheduling, bit-identical results).
    scheduler_backend: str = _KNOB_DEFAULTS["scheduler_backend"]
    #: Synchronization policy under faults (see :mod:`repro.distributed.faults`).
    sync_policy: str = _KNOB_DEFAULTS["sync_policy"]
    #: Slowest workers the ``backup-workers`` policy cuts per iteration.
    backup_workers: int = _KNOB_DEFAULTS["backup_workers"]
    #: ``time-window`` accumulation window factor, or ``None`` for the
    #: policy default when selected.
    time_window_factor: float | None = _KNOB_DEFAULTS["time_window_factor"]
    #: Deterministic compute slowdown (>= 1) of the designated straggler.
    straggler_severity: float = _KNOB_DEFAULTS["straggler_severity"]
    #: Deterministic link-time multiplier (>= 1) of the designated straggler.
    link_degradation: float = _KNOB_DEFAULTS["link_degradation"]

    def simulation_knobs(self) -> SimulationKnobs:
        """This benchmark's knob settings as the consolidated validated bundle."""
        return SimulationKnobs(**{name: getattr(self, name) for name in KNOB_FIELDS})

    def build_proxy_model(self, *, seed: int = 1):
        """Instantiate a freshly initialised proxy model."""
        return build_model(self.proxy_model, seed=seed, **self.proxy_model_kwargs)

    def build_proxy_dataset(self, *, seed: int = 0):
        """Build the synthetic dataset the proxy trains on."""
        builders: dict[str, Callable] = {
            "images": make_image_classification,
            "language": make_language_modeling,
            "sequences": make_sequence_classification,
        }
        if self.proxy_dataset not in builders:
            raise ValueError(f"unknown proxy dataset {self.proxy_dataset!r}")
        return builders[self.proxy_dataset](seed=seed, **self.proxy_dataset_kwargs)

    def compute_seconds(self, network: NetworkModel = CLUSTER_ETHERNET_10G, num_workers: int = PAPER_NUM_WORKERS) -> float:
        """Per-iteration compute time implied by this benchmark's comm-overhead fraction."""
        return compute_time_for_overhead(network, num_workers, self.full_dimension, self.comm_overhead)

    def dimension_scale(self) -> float:
        """Factor mapping the proxy gradient dimension to the full-size dimension."""
        model = self.build_proxy_model()
        proxy_dim = model.num_parameters()
        return self.full_dimension / proxy_dim

    def proxy_bucket_bytes(self, full_scale_bytes: int | None = None) -> int | None:
        """Bucket byte budget rescaled to the proxy's gradient dimension.

        Bucket budgets are always stated against the full-size model
        (``full_scale_bytes`` overrides this config's ``bucket_bytes``); the
        proxy trains a much smaller gradient, so the budget shrinks by the
        dimension scale to keep the *number* of buckets (and hence the
        per-bucket communication structure) the same as at full size.
        """
        budget = self.bucket_bytes if full_scale_bytes is None else full_scale_bytes
        if budget is None:
            return None
        return max(int(round(budget / self.dimension_scale())), 4)


def _lm_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="lstm-ptb",
        task="language_modeling",
        quality_metric="perplexity",
        full_dimension=66_034_000,
        per_worker_batch=20,
        learning_rate=22.0,
        epochs=30,
        comm_overhead=0.94,
        optimizer="nesterov",
        proxy_model="lstm_lm",
        proxy_model_kwargs={"vocab_size": 64, "embedding_dim": 16, "hidden_size": 32, "num_layers": 2},
        proxy_dataset="language",
        proxy_dataset_kwargs={"num_sequences": 160, "seq_len": 16, "vocab_size": 64},
        proxy_iterations=80,
        proxy_batch_size=8,
        proxy_lr=0.5,
        proxy_momentum=0.9,
        proxy_nesterov=True,
        proxy_clip_norm=5.0,
    )


def _an4_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="lstm-an4",
        task="speech_recognition",
        quality_metric="accuracy",
        full_dimension=43_476_256,
        per_worker_batch=20,
        learning_rate=0.004,
        epochs=150,
        comm_overhead=0.80,
        optimizer="nesterov",
        proxy_model="lstm_seq",
        proxy_model_kwargs={"input_dim": 12, "hidden_size": 32, "num_layers": 2, "num_classes": 8},
        proxy_dataset="sequences",
        proxy_dataset_kwargs={"num_examples": 192, "num_classes": 8, "seq_len": 16, "num_features": 12},
        proxy_iterations=80,
        proxy_batch_size=8,
        proxy_lr=0.2,
        proxy_momentum=0.9,
        proxy_nesterov=True,
        proxy_clip_norm=5.0,
    )


def _resnet20_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="resnet20-cifar10",
        task="image_classification",
        quality_metric="accuracy",
        full_dimension=269_467,
        per_worker_batch=512,
        learning_rate=0.1,
        epochs=140,
        comm_overhead=0.10,
        optimizer="sgd",
        proxy_model="resnet",
        proxy_model_kwargs={"in_channels": 3, "num_blocks": 2, "width": 8, "num_classes": 10},
        proxy_dataset="images",
        proxy_dataset_kwargs={"num_examples": 256, "num_classes": 10, "image_size": 16},
        proxy_iterations=50,
        proxy_batch_size=8,
        proxy_lr=0.05,
    )


def _vgg16_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="vgg16-cifar10",
        task="image_classification",
        quality_metric="accuracy",
        full_dimension=14_982_987,
        per_worker_batch=512,
        learning_rate=0.1,
        epochs=140,
        comm_overhead=0.60,
        optimizer="sgd",
        proxy_model="cnn",
        proxy_model_kwargs={"in_channels": 3, "image_size": 16, "channels": (8, 16), "num_classes": 10},
        proxy_dataset="images",
        proxy_dataset_kwargs={"num_examples": 256, "num_classes": 10, "image_size": 16},
        proxy_iterations=50,
        proxy_batch_size=8,
        proxy_lr=0.05,
    )


def _resnet50_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="resnet50-imagenet",
        task="image_classification",
        quality_metric="accuracy",
        full_dimension=25_559_081,
        per_worker_batch=160,
        learning_rate=0.2,
        epochs=90,
        comm_overhead=0.72,
        optimizer="nesterov",
        proxy_model="resnet",
        proxy_model_kwargs={"in_channels": 3, "num_blocks": 3, "width": 10, "num_classes": 16},
        proxy_dataset="images",
        proxy_dataset_kwargs={"num_examples": 320, "num_classes": 16, "image_size": 16},
        proxy_iterations=60,
        proxy_batch_size=8,
        proxy_lr=0.05,
        proxy_momentum=0.9,
        proxy_nesterov=True,
    )


def _vgg19_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="vgg19-imagenet",
        task="image_classification",
        quality_metric="accuracy",
        full_dimension=143_671_337,
        per_worker_batch=160,
        learning_rate=0.05,
        epochs=90,
        comm_overhead=0.83,
        optimizer="nesterov",
        proxy_model="cnn",
        proxy_model_kwargs={"in_channels": 3, "image_size": 16, "channels": (12, 24), "num_classes": 16},
        proxy_dataset="images",
        proxy_dataset_kwargs={"num_examples": 320, "num_classes": 16, "image_size": 16},
        proxy_iterations=60,
        proxy_batch_size=8,
        proxy_lr=0.05,
        proxy_momentum=0.9,
        proxy_nesterov=True,
    )


#: The six benchmarks of Table 1, keyed by name.
TABLE1: dict[str, BenchmarkConfig] = {
    cfg.name: cfg
    for cfg in (
        _lm_config(),
        _an4_config(),
        _resnet20_config(),
        _vgg16_config(),
        _resnet50_config(),
        _vgg19_config(),
    )
}


def get_benchmark(name: str) -> BenchmarkConfig:
    """Look up a Table 1 benchmark by name."""
    key = name.lower()
    if key not in TABLE1:
        raise ValueError(f"unknown benchmark {name!r}; known: {sorted(TABLE1)}")
    return TABLE1[key]


def table1_rows() -> list[dict]:
    """Summary rows reproducing the columns of Table 1."""
    rows = []
    for cfg in TABLE1.values():
        rows.append(
            {
                "benchmark": cfg.name,
                "task": cfg.task,
                "parameters": cfg.full_dimension,
                "per_worker_batch": cfg.per_worker_batch,
                "learning_rate": cfg.learning_rate,
                "epochs": cfg.epochs,
                "comm_overhead": cfg.comm_overhead,
                "optimizer": cfg.optimizer,
                "quality_metric": cfg.quality_metric,
            }
        )
    return rows
