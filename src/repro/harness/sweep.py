"""Declarative what-if sweep engine over the simulator's knob space.

The repo exposes ~10 orthogonal knobs (compressor, ratio, bucket bytes,
overlap policy, topology, collective algorithms, chunk pipelining, sparse
dedup, cross-bucket lanes, scheduler backend); answering "which knobs for my
job?" used to mean hand-writing a script per question.  This module composes
those questions declaratively, in the ``mlmd_bench`` idiom of named workload
specs crossed with a config grid:

* :class:`WorkloadSpec` — the job being planned for: full-size gradient
  dimension and communication-overhead fraction, plus the proxy gradient the
  evaluator actually compresses (dimension-scaled like every Table 1 proxy).
* :class:`SweepSpec` — workloads x a knob grid with explicit axes and
  declarative :class:`KnobConstraint` implications (e.g. sparse dedup
  requires the hierarchical all-gather).  :meth:`SweepSpec.expand` is exactly
  the constrained cross-product, deduplicated, in deterministic order.
* :func:`evaluate_point` — prices one :class:`SweepPoint` through the real
  pipeline/timeline stack (compress a seeded proxy gradient, price the
  collectives, simulate the iteration schedule) and returns a flat metrics
  dict.
* :class:`SweepCache` — memoizes the expensive layers (gradients,
  compression results, :class:`~repro.distributed.CollectiveCost`s, batched
  phase tables, dense baselines, whole point evaluations) keyed on
  (topology, algorithm, payload, density, ...), so repeated points are
  priced once.  Memoized results are bit-for-bit equal to memoization-off
  runs — every cached value is the output of a deterministic pure function.
* :func:`run_sweep` — executes a spec serially or across a ``spawn`` process
  pool (:class:`~repro.distributed.backend.SpawnPool`, the machinery behind
  ``TrainerConfig(worker_backend="process")``), returning a
  :class:`SweepResult` whose versioned JSON rides the unified
  ``BENCH_*`` artifact schema (:mod:`repro.harness.artifacts`).

The auto-tuner (:mod:`repro.harness.tuner`) searches this grid and answers
the production-facing query — "best config for my job on this fabric" —
millions of times against a warm cache.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..compressors.registry import available_compressors, create_compressor
from ..gradients.synthetic import realistic_gradient
from ..perfmodel.device import GPU_V100
from ..pipeline import CompressionPipeline
from ..distributed.backend import SpawnPool
from ..distributed.faults import (
    ClusterProfile,
    get_sync_policy,
    price_iteration,
    validate_sync_policy,
)
from ..distributed.knobs import KNOB_FIELDS, knob_defaults
from ..distributed.schedule import (
    validate_cross_bucket,
    validate_overlap,
    validate_scheduler_backend,
)
from ..distributed.timeline import TimelineModel, compute_time_for_overhead
from ..distributed.topology import (
    CollectiveModel,
    SparseAggregateModel,
    get_collective_algorithm,
    get_topology,
    validate_pipeline_chunks,
)
from .artifacts import bench_artifact, validate_bench_artifact
from .configs import get_benchmark

#: Every knob a sweep point carries, in canonical order: the two compression
#: knobs, then the consolidated simulation knobs in
#: :data:`~repro.distributed.knobs.KNOB_FIELDS` (dataclass field) order.
#: Deriving the tail from the dataclass means a knob added to
#: :class:`~repro.distributed.knobs.SimulationKnobs` can never silently miss
#: the sweep grid.
SWEEP_KNOBS: tuple[str, ...] = ("compressor", "ratio", *KNOB_FIELDS)

#: Default value per knob for axes a spec does not sweep — the shared
#: :func:`~repro.distributed.knobs.knob_defaults` table, with three
#: sweep-specific overrides: the paper's densest ratio, the 4 MiB DDP bucket
#: budget, the strongest overlap policy and the two-level reference fabric
#: (a sweep prices bucketed schedules, so the trainer's unbucketed/serial
#: defaults would leave most axes nothing to bite on).
DEFAULT_KNOBS: dict = {
    "compressor": "topk",
    "ratio": 0.1,
    **knob_defaults(),
    "bucket_bytes": 4 * 2**20,
    "overlap": "comm+compress",
    "topology": "ethernet-4x8",
}

#: Execution backends :func:`run_sweep` accepts.
SWEEP_BACKENDS: tuple[str, ...] = ("serial", "process")


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload a sweep plans for.

    ``dimension`` and ``comm_overhead`` are the full-size facts (Table 1
    style: gradient elements and the fraction of a dense baseline iteration
    spent communicating).  The evaluator compresses a ``proxy_elements``-sized
    seeded gradient and scales wire volume and compression cost back up by
    ``dimension / proxy_elements`` — the same proxy discipline every
    benchmark uses, which keeps a single point evaluation in the milliseconds
    while preserving the full-size compute/communication balance.
    """

    name: str
    dimension: int
    comm_overhead: float
    proxy_elements: int = 32768
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if self.proxy_elements < 64:
            raise ValueError(f"proxy_elements must be >= 64, got {self.proxy_elements}")
        if self.dimension < self.proxy_elements:
            raise ValueError(
                f"dimension ({self.dimension}) must be >= proxy_elements "
                f"({self.proxy_elements})"
            )
        if not 0.0 < self.comm_overhead < 1.0:
            raise ValueError(f"comm_overhead must be in (0, 1), got {self.comm_overhead}")

    @classmethod
    def from_benchmark(cls, name: str, *, proxy_elements: int = 32768, seed: int = 0):
        """Build the workload matching a Table 1 benchmark's full-size facts."""
        config = get_benchmark(name)
        return cls(
            name=config.name,
            dimension=config.full_dimension,
            comm_overhead=config.comm_overhead,
            proxy_elements=proxy_elements,
            seed=seed,
        )

    @property
    def dimension_scale(self) -> float:
        return self.dimension / self.proxy_elements

    def proxy_bucket_bytes(self, bucket_bytes: int | None) -> int | None:
        """A full-size bucket budget rescaled to the proxy gradient (>= 4 bytes)."""
        if bucket_bytes is None:
            return None
        return max(int(round(bucket_bytes / self.dimension_scale)), 4)


@dataclass(frozen=True)
class KnobConstraint:
    """Declarative implication between two knobs.

    Whenever ``knob`` takes a value outside ``inactive``, ``target`` must be
    one of ``allowed`` — e.g. "sparse dedup (any non-``None`` assumption)
    requires the hierarchical all-gather".  Points violating the implication
    are dropped from the expanded grid.
    """

    name: str
    knob: str
    inactive: tuple
    target: str
    allowed: tuple

    def __post_init__(self) -> None:
        for knob in (self.knob, self.target):
            if knob not in SWEEP_KNOBS:
                raise ValueError(f"unknown knob {knob!r}; known: {list(SWEEP_KNOBS)}")

    def admits(self, config: Mapping) -> bool:
        if config[self.knob] in self.inactive:
            return True
        return config[self.target] in self.allowed


@dataclass(frozen=True)
class WorkerCountConstraint:
    """``backup_workers`` must leave at least one participant on the fabric.

    Cutting the ``k`` slowest workers only makes sense when the resolved
    topology has more than ``k`` workers — a single-worker "cluster" with
    ``backup_workers=1`` would drop its only gradient.  Ships the ISSUE's
    "``backup_workers`` requires ``num_workers > 1``" implication in the same
    ``admits(config)`` shape as :class:`KnobConstraint`, for constraints that
    need a resolved-topology fact rather than a knob-to-knob implication.
    """

    name: str = "backup-workers-fit-cluster"

    def admits(self, config: Mapping) -> bool:
        backups = config["backup_workers"]
        if backups == 0:
            return True
        topology = config["topology"]
        resolved = get_topology(topology) if isinstance(topology, str) else topology
        num_workers = getattr(resolved, "num_workers", None)
        return num_workers is None or num_workers > backups


#: Structural implications every default sweep honours: only the hierarchical
#: all-gather has a per-node reduce point to deduplicate at, only its
#: multi-link phases can chunk-pipeline, and the fault-mitigation knobs only
#: act under their own sync policy (on a fabric big enough to cut from).
DEFAULT_CONSTRAINTS: tuple = (
    KnobConstraint(
        name="dedup-requires-hierarchical-allgather",
        knob="dedup_assumption",
        inactive=(None,),
        target="allgather_algorithm",
        allowed=("hierarchical",),
    ),
    KnobConstraint(
        name="chunk-pipelining-requires-hierarchical-allgather",
        knob="pipeline_chunks",
        inactive=(1,),
        target="allgather_algorithm",
        allowed=("hierarchical",),
    ),
    KnobConstraint(
        name="backup-workers-requires-backup-policy",
        knob="backup_workers",
        inactive=(0,),
        target="sync_policy",
        allowed=("backup-workers",),
    ),
    KnobConstraint(
        name="time-window-requires-time-window-policy",
        knob="time_window_factor",
        inactive=(None,),
        target="sync_policy",
        allowed=("time-window",),
    ),
    WorkerCountConstraint(),
)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved (workload, config) grid point.

    ``knobs`` carries every knob in :data:`SWEEP_KNOBS` order, which makes
    points hashable (deduplication, cache keys) and their ordering
    deterministic.
    """

    workload: str
    knobs: tuple[tuple[str, object], ...]

    @property
    def config(self) -> dict:
        return dict(self.knobs)

    @property
    def key(self) -> str:
        """Stable human-readable identity, e.g. for provenance traces."""
        settings = ",".join(f"{name}={value}" for name, value in self.knobs)
        return f"{self.workload}|{settings}"

    @classmethod
    def from_config(cls, workload: str, config: Mapping) -> "SweepPoint":
        """Build a point from a config mapping, filling defaults, in knob order."""
        unknown = set(config) - set(SWEEP_KNOBS)
        if unknown:
            raise ValueError(f"unknown knobs {sorted(unknown)}; known: {list(SWEEP_KNOBS)}")
        return cls(
            workload=workload,
            knobs=tuple((k, config.get(k, DEFAULT_KNOBS[k])) for k in SWEEP_KNOBS),
        )


_KNOB_VALIDATORS: dict[str, Callable] = {
    "overlap": validate_overlap,
    "cross_bucket_pipeline": validate_cross_bucket,
    "scheduler_backend": validate_scheduler_backend,
    "pipeline_chunks": validate_pipeline_chunks,
    "topology": get_topology,
    "allreduce_algorithm": lambda name: get_collective_algorithm(name, op="allreduce"),
    "allgather_algorithm": lambda name: get_collective_algorithm(name, op="allgather"),
    "sync_policy": validate_sync_policy,
}


def _validate_knob_value(knob: str, value) -> None:
    """Fail fast on invalid axis values at spec-construction time."""
    validator = _KNOB_VALIDATORS.get(knob)
    if validator is not None:
        validator(value)
        return
    if knob == "compressor":
        if value not in available_compressors():
            raise ValueError(
                f"unknown compressor {value!r}; known: {available_compressors()}"
            )
    elif knob == "ratio":
        if not 0.0 < float(value) <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {value}")
    elif knob == "bucket_bytes":
        if value is not None and (not isinstance(value, int) or value < 1):
            raise ValueError(f"bucket_bytes must be a positive int or None, got {value!r}")
    elif knob == "dedup_assumption":
        if value is not None:
            SparseAggregateModel(value)
    elif knob == "backup_workers":
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"backup_workers must be a non-negative int, got {value!r}")
    elif knob == "time_window_factor":
        if value is not None and (not math.isfinite(float(value)) or float(value) < 1.0):
            raise ValueError(
                f"time_window_factor must be a finite factor >= 1 or None, got {value!r}"
            )
    elif knob in ("straggler_severity", "link_degradation"):
        if not math.isfinite(float(value)) or float(value) < 1.0:
            raise ValueError(f"{knob} must be a finite slowdown >= 1, got {value!r}")


@dataclass(frozen=True)
class SweepSpec:
    """Named workloads x a declarative knob grid, with constraints.

    ``axes`` maps knob names to the values to sweep; unswept knobs ride at
    their :data:`DEFAULT_KNOBS` value.  ``constraints`` is any iterable of
    objects with an ``admits(config) -> bool`` method (plain callables are
    also accepted); points any constraint rejects are dropped.
    """

    workloads: tuple[WorkloadSpec, ...]
    axes: Mapping[str, tuple]
    constraints: tuple = DEFAULT_CONSTRAINTS

    def __post_init__(self) -> None:
        workloads = tuple(self.workloads)
        if not workloads:
            raise ValueError("need at least one workload")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"workload names must be unique, got {names}")
        object.__setattr__(self, "workloads", workloads)
        axes = {name: tuple(values) for name, values in dict(self.axes).items()}
        unknown = set(axes) - set(SWEEP_KNOBS)
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; known: {list(SWEEP_KNOBS)}")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} must list at least one value")
            for value in values:
                _validate_knob_value(name, value)
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "constraints", tuple(self.constraints))

    def _admitted(self, config: Mapping) -> bool:
        for constraint in self.constraints:
            admits = getattr(constraint, "admits", constraint)
            if not admits(config):
                return False
        return True

    def expand(self) -> list[SweepPoint]:
        """The constrained cross-product, deduplicated, in deterministic order.

        Workloads vary slowest, then knobs in :data:`SWEEP_KNOBS` order with
        each axis traversed as given.  Duplicate points (an axis listing a
        value twice) collapse to their first occurrence.
        """
        grid = [self.axes.get(knob, (DEFAULT_KNOBS[knob],)) for knob in SWEEP_KNOBS]
        points: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for workload in self.workloads:
            for combo in itertools.product(*grid):
                config = dict(zip(SWEEP_KNOBS, combo))
                if not self._admitted(config):
                    continue
                point = SweepPoint(workload=workload.name, knobs=tuple(zip(SWEEP_KNOBS, combo)))
                if point not in seen:
                    seen.add(point)
                    points.append(point)
        return points


# -- memoization ---------------------------------------------------------------


@dataclass
class SweepCache:
    """Layered memo for sweep evaluation, shared across points and queries.

    Each layer caches one deterministic pure function of its key, so cached
    and uncached evaluation are bit-for-bit identical; ``hits``/``misses``
    decompose cache-warm vs cache-cold throughput in the sweep benchmark.
    """

    gradients: dict = field(default_factory=dict)
    compressions: dict = field(default_factory=dict)
    collective_costs: dict = field(default_factory=dict)
    phase_tables: dict = field(default_factory=dict)
    baselines: dict = field(default_factory=dict)
    points: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def fetch(self, store: dict, key, build: Callable):
        if key in store:
            self.hits += 1
            return store[key]
        self.misses += 1
        value = store[key] = build()
        return value

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "points": len(self.points),
            "compressions": len(self.compressions),
            "collective_costs": len(self.collective_costs),
            "phase_tables": len(self.phase_tables),
        }

    def clear(self) -> None:
        for store in (
            self.gradients,
            self.compressions,
            self.collective_costs,
            self.phase_tables,
            self.baselines,
            self.points,
        ):
            store.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache (each spawn-pool worker gets its own copy of
#: the module, hence its own cache).
_GLOBAL_CACHE = SweepCache()


def global_sweep_cache() -> SweepCache:
    """The process-wide cache :func:`run_sweep` uses when none is passed."""
    return _GLOBAL_CACHE


def clear_sweep_caches() -> None:
    """Reset the process-wide cache (e.g. to measure cache-cold throughput)."""
    _GLOBAL_CACHE.clear()


class _MemoizedCollective:
    """Duck-typed :class:`CollectiveModel` pricing through a :class:`SweepCache`.

    ``CollectiveCost``/``PhaseTable`` construction is keyed on (topology,
    algorithm, knobs, payload, density) — exactly the signature of the
    underlying pure pricing functions — so one cache serves every timeline,
    workload and sweep sharing a fabric.
    """

    def __init__(self, inner: CollectiveModel, cache: SweepCache) -> None:
        self._inner = inner
        self._cache = cache
        dedup = inner.allgather_dedup.assumption if inner.allgather_dedup else None
        self._key = (
            inner.topology.name or id(inner.topology),
            inner.allreduce_algorithm,
            inner.allgather_algorithm,
            inner.pipeline_chunks,
            dedup,
        )

    @property
    def topology(self):
        return self._inner.topology

    @property
    def num_workers(self) -> int:
        return self._inner.num_workers

    def allreduce_cost(self, num_bytes: float):
        key = (*self._key, "allreduce", num_bytes)
        return self._cache.fetch(
            self._cache.collective_costs, key, lambda: self._inner.allreduce_cost(num_bytes)
        )

    def allgather_cost(self, payload_bytes_per_worker: float, *, density: float | None = None):
        key = (*self._key, "allgather", payload_bytes_per_worker, density)
        return self._cache.fetch(
            self._cache.collective_costs,
            key,
            lambda: self._inner.allgather_cost(payload_bytes_per_worker, density=density),
        )

    def allgather_phase_table(self, payloads, densities):
        key = (*self._key, "table", tuple(np.asarray(payloads, dtype=float).tolist()),
               tuple(densities))
        return self._cache.fetch(
            self._cache.phase_tables,
            key,
            lambda: self._inner.allgather_phase_table(payloads, densities),
        )

    def allreduce_time(self, num_bytes: float) -> float:
        return self.allreduce_cost(num_bytes).total

    def allgather_time(self, payload_bytes_per_worker: float) -> float:
        return self.allgather_cost(payload_bytes_per_worker).total


# -- point evaluation ----------------------------------------------------------


def _proxy_gradient(workload: WorkloadSpec, cache: SweepCache | None) -> np.ndarray:
    key = (workload.proxy_elements, workload.seed)
    build = lambda: realistic_gradient(workload.proxy_elements, seed=workload.seed)  # noqa: E731
    if cache is None:
        return build()
    return cache.fetch(cache.gradients, key, build)


def _compress_proxy(workload: WorkloadSpec, config: Mapping, cache: SweepCache | None):
    """Compress the workload's proxy gradient under the point's pipeline knobs.

    A fresh compressor is built per (cache-miss) call so adaptive compressor
    state can never leak between points.
    """
    proxy_bucket = workload.proxy_bucket_bytes(config["bucket_bytes"])
    key = (workload.proxy_elements, workload.seed, config["compressor"], proxy_bucket,
           config["ratio"])

    def build():
        gradient = _proxy_gradient(workload, cache)
        compressor = create_compressor(config["compressor"])
        if proxy_bucket is not None:
            compressor = CompressionPipeline(compressor, bucket_bytes=proxy_bucket)
        return compressor.compress(gradient, config["ratio"])

    if cache is None:
        return build()
    return cache.fetch(cache.compressions, key, build)


def _build_timeline(workload: WorkloadSpec, config: Mapping, cache: SweepCache | None):
    topology = get_topology(config["topology"])
    collective = CollectiveModel(
        topology=topology,
        allreduce_algorithm=config["allreduce_algorithm"],
        allgather_algorithm=config["allgather_algorithm"],
        pipeline_chunks=config["pipeline_chunks"],
        allgather_dedup=(
            SparseAggregateModel(config["dedup_assumption"])
            if config["dedup_assumption"] is not None
            else None
        ),
    )
    if cache is not None:
        collective = _MemoizedCollective(collective, cache)
    compute = compute_time_for_overhead(
        topology.inter_node, topology.num_workers, workload.dimension, workload.comm_overhead
    )
    return TimelineModel(
        network=topology.inter_node,
        device=GPU_V100,
        compute_seconds=compute,
        num_workers=topology.num_workers,
        model_dimension=workload.proxy_elements,
        dimension_scale=workload.dimension_scale,
        overlap=config["overlap"],
        collective=collective,
        cross_bucket_pipeline=config["cross_bucket_pipeline"],
        scheduler_backend=config["scheduler_backend"],
    )


def _dense_baseline_seconds(
    workload: WorkloadSpec, config: Mapping, timeline: TimelineModel, cache: SweepCache | None
) -> float:
    key = (
        workload.dimension,
        workload.comm_overhead,
        workload.proxy_elements,
        config["topology"],
        config["allreduce_algorithm"],
        config["pipeline_chunks"],
    )
    build = lambda: timeline.baseline_iteration().total  # noqa: E731
    if cache is None:
        return build()
    return cache.fetch(cache.baselines, key, build)


def _faults_active(config: Mapping) -> bool:
    """True when any fault knob left its default — the fault layer prices only then."""
    return (
        config["sync_policy"] != "full-sync"
        or config["backup_workers"] != 0
        or config["time_window_factor"] is not None
        or config["straggler_severity"] != 1.0
        or config["link_degradation"] != 1.0
    )


def evaluate_point(
    workload: WorkloadSpec, point: SweepPoint, *, cache: SweepCache | None = None
) -> dict:
    """Price one sweep point; returns a flat metrics dict.

    Deterministic in its inputs: the proxy gradient is seeded, compression
    and collective pricing are pure, and the schedule simulator is
    event-driven — which is what makes both the memoized and the
    process-pool execution paths bit-for-bit equal to a serial
    memoization-off run.

    When any fault knob is off its default, the point is additionally priced
    through the :mod:`~repro.distributed.faults` layer: worker 0 becomes the
    straggler (``straggler_severity`` x compute, ``link_degradation`` x link
    time), the remaining workers run at nominal rates, and the configured
    sync policy prices the barrier.  ``iteration_seconds``,
    ``dense_baseline_seconds`` and ``speedup_vs_dense`` then reflect the
    policy-priced times (the dense baseline suffers the same cluster, so the
    speedup compares like with like), while the component metrics and
    ``clean_iteration_seconds`` keep the nominal schedule.  With every fault
    knob at its default this block is skipped entirely and the metrics are
    bit-for-bit the fault-free ones, with ``straggler_overhead == 1.0``.
    """
    if point.workload != workload.name:
        raise ValueError(
            f"point belongs to workload {point.workload!r}, not {workload.name!r}"
        )
    if cache is not None:
        cached = cache.points.get((workload, point))
        if cached is not None:
            cache.hits += 1
            return dict(cached)
    config = point.config
    result = _compress_proxy(workload, config, cache)
    timeline = _build_timeline(workload, config, cache)
    timing = timeline.compressed_iteration([result])
    baseline = _dense_baseline_seconds(workload, config, timeline, cache)
    metrics = {
        "iteration_seconds": timing.total,
        "serialized_seconds": timing.serialized,
        "overlap_saving": timing.overlap_saving,
        "compute_seconds": timing.compute,
        "compression_seconds": timing.compression,
        "communication_seconds": timing.communication,
        "dense_baseline_seconds": baseline,
        "speedup_vs_dense": baseline / timing.total if timing.total > 0.0 else float("inf"),
        "dedup_ratio": timing.dedup_ratio,
        "achieved_ratio": result.achieved_ratio,
        "num_buckets": int(result.metadata.get("num_buckets", 1)),
        "num_workers": timeline.num_workers,
        "clean_iteration_seconds": timing.total,
        "straggler_overhead": 1.0,
        "participating_workers": timeline.num_workers,
        "stragglers_cut": 0,
    }
    if _faults_active(config):
        policy = get_sync_policy(
            config["sync_policy"],
            backup_workers=config["backup_workers"],
            time_window_factor=config["time_window_factor"],
        )
        rates = ClusterProfile.degraded(
            timeline.num_workers,
            compute=config["straggler_severity"],
            link=config["link_degradation"],
        ).rates()

        def price_compressed(compute_scale: float, comm_scale: float) -> float:
            if compute_scale == 1.0 and comm_scale == 1.0:
                return timing.total
            return timeline.compressed_iteration(
                [result], compute_scale=compute_scale, comm_scale=comm_scale
            ).total

        def price_dense(compute_scale: float, comm_scale: float) -> float:
            if compute_scale == 1.0 and comm_scale == 1.0:
                return baseline
            return timeline.baseline_iteration(
                compute_scale=compute_scale, comm_scale=comm_scale
            ).total

        faulted = price_iteration(price_compressed, rates, policy)
        dense_faulted = price_iteration(price_dense, rates, policy)
        seconds = faulted.iteration_seconds
        metrics["iteration_seconds"] = seconds
        metrics["dense_baseline_seconds"] = dense_faulted.iteration_seconds
        metrics["speedup_vs_dense"] = (
            dense_faulted.iteration_seconds / seconds if seconds > 0.0 else float("inf")
        )
        metrics["straggler_overhead"] = (
            seconds / timing.total if timing.total > 0.0 else 1.0
        )
        metrics["participating_workers"] = faulted.outcome.num_participating
        metrics["stragglers_cut"] = faulted.outcome.stragglers_cut
    if cache is not None:
        cache.misses += 1
        cache.points[(workload, point)] = dict(metrics)
    return metrics


# -- execution -----------------------------------------------------------------


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated point: workload name, full config, flat metrics."""

    workload: str
    config: dict
    metrics: dict

    @property
    def point(self) -> SweepPoint:
        return SweepPoint.from_config(self.workload, self.config)


@dataclass
class SweepResult:
    """All records of one sweep, serializable onto the unified artifact schema."""

    workloads: tuple[WorkloadSpec, ...]
    records: list[SweepRecord]
    benchmark: str = "sweep"

    def to_json_dict(self) -> dict:
        """Versioned JSON payload in the shared ``BENCH_*`` envelope."""
        return bench_artifact(
            self.benchmark,
            params={
                "workloads": [
                    {
                        "name": w.name,
                        "dimension": w.dimension,
                        "comm_overhead": w.comm_overhead,
                        "proxy_elements": w.proxy_elements,
                        "seed": w.seed,
                    }
                    for w in self.workloads
                ],
            },
            records=[
                {"workload": r.workload, "config": dict(r.config), "metrics": dict(r.metrics)}
                for r in self.records
            ],
        )

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SweepResult":
        validate_bench_artifact(payload)
        workloads = tuple(
            WorkloadSpec(**entry) for entry in payload["params"].get("workloads", [])
        )
        records = [
            SweepRecord(
                workload=entry["workload"],
                config=dict(entry["config"]),
                metrics=dict(entry["metrics"]),
            )
            for entry in payload["records"]
        ]
        return cls(workloads=workloads, records=records, benchmark=payload["benchmark"])


def _evaluate_task(task: tuple[WorkloadSpec, SweepPoint, bool]) -> dict:
    """Pool-worker body (module-level so it pickles by reference)."""
    workload, point, memoize = task
    return evaluate_point(workload, point, cache=_GLOBAL_CACHE if memoize else None)


def run_sweep(
    spec: SweepSpec,
    *,
    backend: str = "serial",
    processes: int | None = None,
    memoize: bool = True,
    cache: SweepCache | None = None,
) -> SweepResult:
    """Expand ``spec`` and evaluate every point.

    ``backend="process"`` maps the points over a ``spawn`` process pool
    (ordered, chunked — the worker-compression machinery); each pool process
    memoizes into its own module-level cache.  ``memoize=False`` bypasses all
    caching; results are bit-for-bit identical either way.
    """
    if backend not in SWEEP_BACKENDS:
        raise ValueError(f"unknown sweep backend {backend!r}; known: {list(SWEEP_BACKENDS)}")
    points = spec.expand()
    by_name = {workload.name: workload for workload in spec.workloads}
    if backend == "process":
        pool = SpawnPool(processes)
        try:
            metrics = pool.map(
                _evaluate_task, [(by_name[p.workload], p, memoize) for p in points]
            )
        finally:
            pool.close()
    else:
        active = cache if cache is not None else (_GLOBAL_CACHE if memoize else None)
        metrics = [evaluate_point(by_name[p.workload], p, cache=active) for p in points]
    records = [
        SweepRecord(workload=p.workload, config=p.config, metrics=m)
        for p, m in zip(points, metrics)
    ]
    return SweepResult(workloads=spec.workloads, records=records)
