"""End-to-end training comparisons (Figures 3, 5, 6, 12, 13, 18).

``run_benchmark`` trains one Table 1 proxy benchmark with one compressor and
reports the paper's three headline metrics relative to the dense baseline:

* normalised training speed-up  — (final quality / total simulated time),
  normalised by the same quantity for the no-compression baseline,
* normalised average throughput — simulated samples/second over the baseline's,
* estimation quality            — mean achieved/target ratio with a 90% CI.

``compare_compressors`` sweeps a compressor line-up (sharing one baseline run)
and returns the rows a figure panel plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distributed.knobs import SimulationKnobs, apply_flat_overrides
from ..distributed.network import CLUSTER_ETHERNET_10G, NetworkModel
from ..distributed.topology import ClusterTopology, get_topology
from ..distributed.trainer import DistributedTrainer, TrainerConfig, TrainingRunResult
from ..gradients.capture import GradientCapture
from ..perfmodel.costs import DeviceProfile
from ..perfmodel.device import GPU_V100
from .configs import PAPER_NUM_WORKERS, BenchmarkConfig, get_benchmark


@dataclass(frozen=True)
class BenchmarkRunRow:
    """One (benchmark, compressor, ratio) result row."""

    benchmark: str
    compressor: str
    ratio: float
    final_quality: float
    final_loss: float
    total_time: float
    speedup_vs_baseline: float
    throughput_vs_baseline: float
    estimation_quality: float
    estimation_quality_ci: tuple[float, float]
    #: Overlap policy the run was priced under, its serialised-equivalent run
    #: time, and the fraction of that time the overlap policy saved.
    overlap: str = "none"
    serialized_time: float = 0.0
    overlap_saving: float = 0.0
    #: Cluster topology and sparse-collective algorithm the run was priced on.
    topology: str = "flat"
    allgather_algorithm: str = "flat-allgather"
    #: Chunk-pipelining / sparse-dedup knobs the collectives ran with, and the
    #: mean dedup ratio the run's compressed iterations actually achieved.
    pipeline_chunks: int = 1
    dedup_assumption: str = "off"
    dedup_ratio: float = 1.0
    #: Whether the run's schedule placed buckets on per-link network lanes
    #: (cross-bucket pipelining) instead of the serial PR-4 network lane.
    cross_bucket_pipeline: bool = False
    #: Scheduler implementation the run's iterations were priced with
    #: (``"loop"`` or ``"vectorized"`` — bit-identical results).
    scheduler_backend: str = "loop"
    #: Synchronization policy the run's barriers were priced under
    #: (``"full-sync"``, ``"backup-workers"`` or ``"time-window"``).
    sync_policy: str = "full-sync"


@dataclass
class BenchmarkComparison:
    """All rows for one benchmark plus the shared baseline run."""

    benchmark: str
    baseline: TrainingRunResult
    rows: list[BenchmarkRunRow] = field(default_factory=list)
    runs: dict[tuple[str, float], TrainingRunResult] = field(default_factory=dict)


def _topology_label(config: TrainerConfig | None) -> str:
    """Human-readable topology tag for a result row (``"flat"`` for single-level).

    ``TrainerConfig.__post_init__`` resolves preset names, so a set topology is
    always a :class:`ClusterTopology` here.
    """
    if config is None or config.topology is None:
        return "flat"
    return config.topology.name or (
        f"{config.topology.num_nodes}x{config.topology.devices_per_node}"
    )


def _quality_from_evaluation(config: BenchmarkConfig, evaluation: dict[str, float]) -> float:
    """Map the run's evaluation dict onto the benchmark's 'higher is better' quality metric."""
    if config.quality_metric == "perplexity":
        # Lower perplexity is better; invert so speed-up math stays "higher is better".
        return 1.0 / max(evaluation["perplexity"], 1e-12)
    return evaluation["accuracy"]


#: Legacy flat knob kwargs ``run_benchmark``/``compare_compressors`` still
#: accept for one release (``None`` = not passed); each passed one is folded
#: into the knob bundle by :func:`~repro.distributed.knobs.apply_flat_overrides`
#: with a :class:`DeprecationWarning`.
_LEGACY_FLAT_KNOBS: tuple[str, ...] = (
    "bucket_bytes",
    "overlap",
    "topology",
    "allreduce_algorithm",
    "allgather_algorithm",
    "pipeline_chunks",
    "dedup_assumption",
    "cross_bucket_pipeline",
    "scheduler_backend",
)


def _resolve_knobs(
    config: BenchmarkConfig,
    knobs: SimulationKnobs | None,
    flat_overrides: dict,
    caller: str,
) -> SimulationKnobs:
    """The run's knob bundle: ``knobs`` (or the benchmark's) + legacy flat kwargs."""
    base = knobs if knobs is not None else config.simulation_knobs()
    return apply_flat_overrides(base, flat_overrides, caller)


def _resolve_topology(
    topology: "str | ClusterTopology | None",
    num_workers: int,
) -> tuple["ClusterTopology | None", int]:
    """Resolve the knob bundle's topology and the run's worker count.

    A topology fixes the worker count (nodes x devices), so when one is set it
    wins over the ``num_workers`` argument.
    """
    if topology is None:
        return None, num_workers
    resolved = get_topology(topology) if isinstance(topology, str) else topology
    return resolved, resolved.num_workers


def _trainer_config(
    config: BenchmarkConfig,
    ratio: float,
    *,
    num_workers: int,
    iterations: int | None,
    seed: int,
    network: NetworkModel,
    knobs: SimulationKnobs,
) -> TrainerConfig:
    return TrainerConfig(
        num_workers=num_workers,
        batch_size=config.proxy_batch_size,
        iterations=iterations or config.proxy_iterations,
        ratio=ratio,
        lr=config.proxy_lr,
        momentum=config.proxy_momentum,
        nesterov=config.proxy_nesterov,
        clip_norm=config.proxy_clip_norm,
        use_error_feedback=True,
        seed=seed,
        compute_seconds=config.compute_seconds(network, num_workers),
        dimension_scale=config.dimension_scale(),
        knobs=knobs,
    )


def run_benchmark(
    benchmark: str | BenchmarkConfig,
    compressor: str,
    ratio: float,
    *,
    num_workers: int = PAPER_NUM_WORKERS,
    iterations: int | None = None,
    seed: int = 0,
    network: NetworkModel = CLUSTER_ETHERNET_10G,
    device: DeviceProfile = GPU_V100,
    capture: GradientCapture | None = None,
    knobs: SimulationKnobs | None = None,
    bucket_bytes: int | None = None,
    overlap: str | None = None,
    topology: "str | ClusterTopology | None" = None,
    allreduce_algorithm: str | None = None,
    allgather_algorithm: str | None = None,
    pipeline_chunks: int | None = None,
    dedup_assumption: str | None = None,
    cross_bucket_pipeline: bool | None = None,
    scheduler_backend: str | None = None,
) -> TrainingRunResult:
    """Train one Table 1 proxy benchmark with one compressor and evaluate it.

    Simulation knobs ride in the consolidated ``knobs`` bundle
    (:class:`~repro.distributed.SimulationKnobs`); when ``None``, the
    benchmark config's own knob settings apply.  ``knobs.bucket_bytes`` is
    stated in full-size-model bytes per gradient bucket (like
    ``BenchmarkConfig.bucket_bytes``) and rescaled to the proxy's dimension
    automatically; ``knobs.topology`` (a preset name or
    :class:`~repro.distributed.ClusterTopology`) fixes the worker count,
    overriding ``num_workers``.  The fault/policy knobs (``sync_policy``,
    ``backup_workers``, ``time_window_factor``, ``straggler_severity``,
    ``link_degradation``) thread into the trainer's fault layer
    (:mod:`repro.distributed.faults`).

    The flat knob kwargs (``bucket_bytes`` ... ``scheduler_backend``) are the
    pre-knobs API, kept for one release: each one passed emits a
    :class:`DeprecationWarning` and overrides the bundle's value.
    """
    config = benchmark if isinstance(benchmark, BenchmarkConfig) else get_benchmark(benchmark)
    flat = {name: value for name, value in locals().items() if name in _LEGACY_FLAT_KNOBS}
    resolved = _resolve_knobs(config, knobs, flat, "run_benchmark")
    resolved_topology, num_workers = _resolve_topology(resolved.topology, num_workers)
    dataset = config.build_proxy_dataset(seed=seed)
    model = config.build_proxy_model(seed=seed + 1)
    trainer_cfg = _trainer_config(
        config, ratio, num_workers=num_workers, iterations=iterations, seed=seed, network=network,
        knobs=resolved.replace(
            bucket_bytes=config.proxy_bucket_bytes(resolved.bucket_bytes),
            topology=resolved_topology,
        ),
    )
    trainer = DistributedTrainer(
        model,
        dataset,
        compressor,
        trainer_cfg,
        network=network,
        device=device,
        capture=capture,
    )
    return trainer.run(evaluate_on=dataset)


def compare_compressors(
    benchmark: str | BenchmarkConfig,
    compressors: tuple[str, ...],
    ratios: tuple[float, ...],
    *,
    num_workers: int = PAPER_NUM_WORKERS,
    iterations: int | None = None,
    seed: int = 0,
    network: NetworkModel = CLUSTER_ETHERNET_10G,
    device: DeviceProfile = GPU_V100,
    knobs: SimulationKnobs | None = None,
    bucket_bytes: int | None = None,
    overlap: str | None = None,
    topology: "str | ClusterTopology | None" = None,
    allreduce_algorithm: str | None = None,
    allgather_algorithm: str | None = None,
    pipeline_chunks: int | None = None,
    dedup_assumption: str | None = None,
    cross_bucket_pipeline: bool | None = None,
    scheduler_backend: str | None = None,
) -> BenchmarkComparison:
    """Run one benchmark for every (compressor, ratio) pair plus the dense baseline.

    Knobs ride in the consolidated ``knobs`` bundle (default: the benchmark
    config's settings); the flat knob kwargs are deprecated and fold into the
    bundle once here, so every underlying :func:`run_benchmark` call shares
    one resolved bundle and the deprecation warns once per comparison.
    """
    config = benchmark if isinstance(benchmark, BenchmarkConfig) else get_benchmark(benchmark)
    flat = {name: value for name, value in locals().items() if name in _LEGACY_FLAT_KNOBS}
    resolved = _resolve_knobs(config, knobs, flat, "compare_compressors")
    baseline = run_benchmark(
        config, "none", 1.0, num_workers=num_workers, iterations=iterations, seed=seed,
        network=network, device=device, knobs=resolved,
    )
    baseline_quality = _quality_from_evaluation(config, baseline.final_evaluation)
    baseline_rate = baseline_quality / max(baseline.metrics.total_time, 1e-12)
    baseline_throughput = baseline.metrics.average_throughput()

    comparison = BenchmarkComparison(benchmark=config.name, baseline=baseline)
    for name in compressors:
        for ratio in ratios:
            result = run_benchmark(
                config, name, ratio, num_workers=num_workers, iterations=iterations, seed=seed,
                network=network, device=device, knobs=resolved,
            )
            quality = _quality_from_evaluation(config, result.final_evaluation)
            rate = quality / max(result.metrics.total_time, 1e-12)
            est_quality, est_ci = result.metrics.estimation_quality()
            overlap_stats = result.metrics.overlap_summary()
            comparison.rows.append(
                BenchmarkRunRow(
                    benchmark=config.name,
                    compressor=name,
                    ratio=ratio,
                    final_quality=quality,
                    final_loss=result.metrics.final_loss,
                    total_time=result.metrics.total_time,
                    speedup_vs_baseline=rate / baseline_rate if baseline_rate > 0 else float("nan"),
                    throughput_vs_baseline=result.metrics.average_throughput() / baseline_throughput
                    if baseline_throughput > 0
                    else float("nan"),
                    estimation_quality=est_quality,
                    estimation_quality_ci=est_ci,
                    overlap=result.config.overlap if result.config else "none",
                    serialized_time=overlap_stats["serialized_seconds"],
                    overlap_saving=overlap_stats["overlap_saving"],
                    topology=_topology_label(result.config),
                    allgather_algorithm=result.config.allgather_algorithm
                    if result.config
                    else "flat-allgather",
                    pipeline_chunks=result.config.pipeline_chunks if result.config else 1,
                    dedup_assumption=(result.config.dedup_assumption or "off")
                    if result.config
                    else "off",
                    dedup_ratio=result.metrics.mean_dedup_ratio(),
                    cross_bucket_pipeline=result.config.cross_bucket_pipeline
                    if result.config
                    else False,
                    scheduler_backend=result.config.scheduler_backend
                    if result.config
                    else "loop",
                    sync_policy=result.config.sync_policy if result.config else "full-sync",
                )
            )
            comparison.runs[(name, ratio)] = result
    return comparison
