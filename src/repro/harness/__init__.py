"""Experiment harness: Table 1 configs, micro-benchmarks, training runs, reporting."""

from .configs import (
    PAPER_NUM_WORKERS,
    PAPER_RATIOS,
    TABLE1,
    BenchmarkConfig,
    get_benchmark,
    table1_rows,
)
from .experiments import (
    CompressibilityStudy,
    GradientStudy,
    SIDFitReport,
    TraceBundle,
    compressibility_study,
    extract_traces,
    gradient_fit_study,
)
from .microbench import (
    DEFAULT_COMPRESSORS,
    MicrobenchRow,
    quality_matrix,
    run_microbenchmark,
    run_model_microbenchmarks,
    run_synthetic_size_sweep,
    speedup_matrix,
)
from .reporting import (
    format_link_utilization,
    format_overlap_summary,
    format_phase_breakdown,
    format_series,
    format_speedup_summary,
    format_table,
)
from .training_runs import (
    BenchmarkComparison,
    BenchmarkRunRow,
    compare_compressors,
    run_benchmark,
)

__all__ = [
    "DEFAULT_COMPRESSORS",
    "PAPER_NUM_WORKERS",
    "PAPER_RATIOS",
    "TABLE1",
    "BenchmarkComparison",
    "BenchmarkConfig",
    "BenchmarkRunRow",
    "CompressibilityStudy",
    "GradientStudy",
    "MicrobenchRow",
    "SIDFitReport",
    "TraceBundle",
    "compare_compressors",
    "compressibility_study",
    "extract_traces",
    "format_link_utilization",
    "format_overlap_summary",
    "format_phase_breakdown",
    "format_series",
    "format_speedup_summary",
    "format_table",
    "get_benchmark",
    "gradient_fit_study",
    "quality_matrix",
    "run_benchmark",
    "run_microbenchmark",
    "run_model_microbenchmarks",
    "run_synthetic_size_sweep",
    "speedup_matrix",
    "table1_rows",
]
