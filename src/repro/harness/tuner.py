"""Auto-tuner over the what-if sweep engine.

:func:`autotune` answers the production-facing planning query: *given my
job's size and communication overhead, and this cluster fabric, which knob
settings minimize iteration time?*  The search is deliberately simple and
fully auditable:

1. **Coarse grid** — a declarative :class:`~repro.harness.sweep.SweepSpec`
   over the tuning axes (compressor, ratio, bucket bytes, overlap,
   collectives, dedup, scheduler) is expanded and evaluated through
   :func:`~repro.harness.sweep.run_sweep`.  With ``refine_rounds=0`` the
   result is exactly the exhaustive-enumeration argbest of the grid — the
   property the oracle tests pin.
2. **Local refinement** — the two continuous knobs (``ratio``,
   ``bucket_bytes``) are refined around the incumbent by multiplicative
   steps, shrinking the step factor whenever a round fails to improve.

Every evaluated point lands in the provenance ``trace`` (a
:class:`~repro.harness.sweep.SweepRecord` per unique config, in evaluation
order), so a tuning decision can always be replayed and audited.  Ties break
deterministically on the point's stable key.  Repeated queries share a
:class:`~repro.harness.sweep.SweepCache`, which is what makes a warm tuner
orders of magnitude faster than a cold one (ratcheted in
``benchmarks/test_sweep_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .sweep import (
    DEFAULT_CONSTRAINTS,
    SweepCache,
    SweepPoint,
    SweepRecord,
    SweepSpec,
    WorkloadSpec,
    evaluate_point,
    global_sweep_cache,
    run_sweep,
)

#: Metrics ``autotune`` knows how to rank, and the direction that is "better".
TUNE_TARGETS: dict[str, str] = {
    "iteration_seconds": "min",
    "serialized_seconds": "min",
    "communication_seconds": "min",
    "compression_seconds": "min",
    "speedup_vs_dense": "max",
    "overlap_saving": "max",
    "straggler_overhead": "min",
}

#: Default coarse grid: the knobs that dominate iteration time, at the
#: paper's ratios and the repo's algorithm/overlap options.
DEFAULT_TUNE_AXES: dict = {
    "compressor": ("topk", "dgc", "sidco-e"),
    "ratio": (0.1, 0.01, 0.001),
    "bucket_bytes": (2**20, 4 * 2**20, 16 * 2**20),
    "overlap": ("none", "comm", "comm+compress"),
    "allgather_algorithm": ("flat-allgather", "hierarchical"),
    "dedup_assumption": (None, "uniform"),
    "scheduler_backend": ("vectorized",),
}

#: Floors/ceilings for the refinement moves.
_MIN_RATIO = 1e-5
_MAX_RATIO = 1.0
_MIN_BUCKET_BYTES = 2**16


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`autotune` query, with full provenance.

    ``trace`` holds every unique point evaluated (coarse grid first, then
    refinement candidates, in evaluation order); ``queries`` is its length.
    ``best`` is the argbest of the whole trace under (``target``, ``mode``).
    """

    workload: WorkloadSpec
    target: str
    mode: str
    best: SweepRecord
    trace: tuple[SweepRecord, ...]
    refine_rounds: int

    @property
    def best_config(self) -> dict:
        return dict(self.best.config)

    @property
    def best_metric(self) -> float:
        return self.best.metrics[self.target]

    @property
    def queries(self) -> int:
        return len(self.trace)


def _rank_key(record: SweepRecord, target: str, mode: str):
    """Deterministic ordering: metric first, stable point key breaks ties."""
    value = record.metrics[target]
    return (-value if mode == "max" else value, record.point.key)


def _argbest(records: Sequence[SweepRecord], target: str, mode: str) -> SweepRecord:
    if not records:
        raise ValueError("no points satisfied the axes/constraints")
    return min(records, key=lambda r: _rank_key(r, target, mode))


def _admitted(config: Mapping, constraints) -> bool:
    return all(getattr(c, "admits", c)(config) for c in constraints)


def _refinement_candidates(config: Mapping, ratio_step: float, bucket_step: float) -> list[dict]:
    """Axis-parallel multiplicative neighbours of the incumbent config."""
    candidates: list[dict] = []
    for scale in (ratio_step, 1.0 / ratio_step):
        ratio = min(max(config["ratio"] * scale, _MIN_RATIO), _MAX_RATIO)
        if ratio != config["ratio"]:
            candidates.append({**config, "ratio": ratio})
    if config["bucket_bytes"] is not None:
        for scale in (bucket_step, 1.0 / bucket_step):
            bucket = max(int(round(config["bucket_bytes"] * scale)), _MIN_BUCKET_BYTES)
            if bucket != config["bucket_bytes"]:
                candidates.append({**config, "bucket_bytes": bucket})
    return candidates


def autotune(
    workload: WorkloadSpec | str,
    topology: str | Sequence[str],
    *,
    target: str = "iteration_seconds",
    axes: Mapping[str, tuple] | None = None,
    constraints: tuple = DEFAULT_CONSTRAINTS,
    refine_rounds: int = 2,
    ratio_step: float = 0.5,
    bucket_step: float = 0.5,
    cache: SweepCache | None = None,
    memoize: bool = True,
) -> TuneResult:
    """Best knob settings for ``workload`` on ``topology`` under ``target``.

    ``workload`` may be a :class:`WorkloadSpec` or a Table 1 benchmark name
    (resolved via :meth:`WorkloadSpec.from_benchmark`).  ``topology`` is a
    preset name, or several to let the tuner pick the fabric too.  With
    ``refine_rounds=0`` the answer is exactly the exhaustive argbest of the
    coarse grid; each refinement round then probes multiplicative
    ratio/bucket neighbours of the incumbent, halving the step whenever a
    round yields no improvement.
    """
    if isinstance(workload, str):
        workload = WorkloadSpec.from_benchmark(workload)
    if target not in TUNE_TARGETS:
        raise ValueError(f"unknown tuning target {target!r}; known: {list(TUNE_TARGETS)}")
    if refine_rounds < 0:
        raise ValueError(f"refine_rounds must be >= 0, got {refine_rounds}")
    for name, step in (("ratio_step", ratio_step), ("bucket_step", bucket_step)):
        if not 0.0 < step < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {step}")
    mode = TUNE_TARGETS[target]
    grid_axes = dict(DEFAULT_TUNE_AXES if axes is None else axes)
    grid_axes["topology"] = (topology,) if isinstance(topology, str) else tuple(topology)
    spec = SweepSpec(workloads=(workload,), axes=grid_axes, constraints=constraints)

    active_cache = cache if cache is not None else (global_sweep_cache() if memoize else None)
    coarse = run_sweep(spec, cache=active_cache, memoize=memoize)
    trace: list[SweepRecord] = list(coarse.records)
    seen: set[SweepPoint] = {record.point for record in trace}
    best = _argbest(trace, target, mode)

    for _ in range(refine_rounds):
        improved = False
        for config in _refinement_candidates(best.config, ratio_step, bucket_step):
            if not _admitted(config, spec.constraints):
                continue
            point = SweepPoint.from_config(workload.name, config)
            if point in seen:
                continue
            seen.add(point)
            metrics = evaluate_point(workload, point, cache=active_cache)
            record = SweepRecord(workload=workload.name, config=point.config, metrics=metrics)
            trace.append(record)
            if _rank_key(record, target, mode) < _rank_key(best, target, mode):
                best = record
                improved = True
        if not improved:
            # No neighbour beat the incumbent: tighten toward it.
            ratio_step = ratio_step**0.5
            bucket_step = bucket_step**0.5

    return TuneResult(
        workload=workload,
        target=target,
        mode=mode,
        best=best,
        trace=tuple(trace),
        refine_rounds=refine_rounds,
    )


__all__ = [
    "DEFAULT_TUNE_AXES",
    "TUNE_TARGETS",
    "TuneResult",
    "autotune",
]
