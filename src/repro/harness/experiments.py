"""Gradient-analysis experiments (Figures 2, 7, 8) and trace extraction (Figures 4, 9, 10, 11).

These experiments reproduce the paper's empirical validation of its two
modelling assumptions — gradients are compressible (Property 1 / Figure 7) and
well fitted by SIDs (Property 2 / Figures 2 and 8) — by training a proxy model
with Top-k compression, capturing uncompressed gradients at chosen iterations,
and running the compressibility / goodness-of-fit diagnostics on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gradients.capture import GradientCapture
from ..stats.compressibility import CompressibilityReport, fit_power_law_decay, sparsification_error_curve
from ..stats.distributions import Laplace, DoubleGamma, DoubleGeneralizedPareto
from ..stats.fitting import fit_absolute
from ..stats.goodness import FitQuality, evaluate_fit
from .configs import BenchmarkConfig, get_benchmark
from .training_runs import run_benchmark


@dataclass(frozen=True)
class SIDFitReport:
    """Goodness-of-fit of the three SIDs to one captured gradient snapshot."""

    iteration: int
    exponential: FitQuality
    gamma: FitQuality
    gpareto: FitQuality

    def best_sid(self) -> str:
        """SID with the smallest Kolmogorov-Smirnov distance for this snapshot."""
        candidates = {
            "exponential": self.exponential.ks_statistic,
            "gamma": self.gamma.ks_statistic,
            "gpareto": self.gpareto.ks_statistic,
        }
        return min(candidates, key=candidates.get)


@dataclass
class GradientStudy:
    """Captured gradients plus their SID-fit and compressibility diagnostics."""

    benchmark: str
    use_error_feedback: bool
    snapshots: dict[int, np.ndarray] = field(default_factory=dict)
    fits: dict[int, SIDFitReport] = field(default_factory=dict)
    compressibility: dict[int, CompressibilityReport] = field(default_factory=dict)


def _fit_snapshot(iteration: int, gradient: np.ndarray) -> SIDFitReport:
    abs_grad = np.abs(gradient)
    abs_nonzero = abs_grad[abs_grad > 0.0]
    exp_fit = fit_absolute(abs_nonzero, "exponential").distribution
    gamma_fit = fit_absolute(abs_nonzero, "gamma").distribution
    gp_fit = fit_absolute(abs_nonzero, "gpareto").distribution
    symmetric = {
        "exponential": Laplace(scale=exp_fit.scale),
        "gamma": DoubleGamma(shape=gamma_fit.shape, scale=gamma_fit.scale),
        "gpareto": DoubleGeneralizedPareto(shape=gp_fit.shape, scale=gp_fit.scale),
    }
    return SIDFitReport(
        iteration=iteration,
        exponential=evaluate_fit(gradient, symmetric["exponential"]),
        gamma=evaluate_fit(gradient, symmetric["gamma"]),
        gpareto=evaluate_fit(gradient, symmetric["gpareto"]),
    )


def gradient_fit_study(
    benchmark: str | BenchmarkConfig = "resnet20-cifar10",
    *,
    use_error_feedback: bool = False,
    capture_iterations: tuple[int, ...] = (5, 40),
    ratio: float = 0.001,
    iterations: int | None = None,
    num_workers: int = 4,
    seed: int = 0,
) -> GradientStudy:
    """Reproduce the Figure 2 (no EC) / Figure 8 (with EC) analysis on a proxy benchmark.

    Trains the benchmark with Top-k at ``ratio``, captures the (EC-corrected if
    enabled) gradient at the requested iterations, fits the three SIDs and the
    compressibility power law to each snapshot.
    """
    config = benchmark if isinstance(benchmark, BenchmarkConfig) else get_benchmark(benchmark)
    total_iterations = iterations or max(capture_iterations) + 10
    capture = GradientCapture(iterations=set(capture_iterations), normalize=True)

    run_config_iterations = max(total_iterations, max(capture_iterations) + 1)
    result = run_benchmark(
        config,
        "topk",
        ratio,
        num_workers=num_workers,
        iterations=run_config_iterations,
        seed=seed,
        capture=capture,
    )
    # Error feedback is always on in the trainer when requested; when the study
    # asks for the no-EC view we re-run with EC disabled.
    if not use_error_feedback:
        capture = GradientCapture(iterations=set(capture_iterations), normalize=True)
        from ..distributed.trainer import DistributedTrainer, TrainerConfig

        dataset = config.build_proxy_dataset(seed=seed)
        model = config.build_proxy_model(seed=seed + 1)
        trainer_cfg = TrainerConfig(
            num_workers=num_workers,
            batch_size=config.proxy_batch_size,
            iterations=run_config_iterations,
            ratio=ratio,
            lr=config.proxy_lr,
            momentum=config.proxy_momentum,
            nesterov=config.proxy_nesterov,
            clip_norm=config.proxy_clip_norm,
            use_error_feedback=False,
            seed=seed,
            compute_seconds=config.compute_seconds(),
            dimension_scale=config.dimension_scale(),
        )
        trainer = DistributedTrainer(model, dataset, "topk", trainer_cfg, capture=capture)
        result = trainer.run()

    study = GradientStudy(benchmark=config.name, use_error_feedback=use_error_feedback)
    for iteration in sorted(capture.snapshots):
        gradient = capture.snapshots[iteration]
        study.snapshots[iteration] = gradient
        study.fits[iteration] = _fit_snapshot(iteration, gradient)
        study.compressibility[iteration] = fit_power_law_decay(gradient)
    del result
    return study


@dataclass(frozen=True)
class CompressibilityStudy:
    """Figure 7 series: sorted-magnitude decay and best-k error curves per snapshot."""

    iterations: tuple[int, ...]
    reports: dict[int, CompressibilityReport]
    error_curves: dict[int, np.ndarray]
    ks: np.ndarray


def compressibility_study(
    benchmark: str | BenchmarkConfig = "resnet20-cifar10",
    *,
    capture_iterations: tuple[int, ...] = (2, 20, 40),
    num_ks: int = 50,
    num_workers: int = 4,
    seed: int = 0,
) -> CompressibilityStudy:
    """Reproduce Figure 7: power-law decay check and sigma_k curves across training."""
    study = gradient_fit_study(
        benchmark,
        use_error_feedback=False,
        capture_iterations=capture_iterations,
        num_workers=num_workers,
        seed=seed,
    )
    reports: dict[int, CompressibilityReport] = {}
    curves: dict[int, np.ndarray] = {}
    ks = None
    for iteration, gradient in study.snapshots.items():
        reports[iteration] = study.compressibility[iteration]
        if ks is None:
            ks = np.unique(np.linspace(0, gradient.size, num_ks, dtype=np.int64))
        curves[iteration] = sparsification_error_curve(gradient, ks)
    return CompressibilityStudy(
        iterations=tuple(sorted(study.snapshots)),
        reports=reports,
        error_curves=curves,
        ks=ks if ks is not None else np.array([], dtype=np.int64),
    )


@dataclass(frozen=True)
class TraceBundle:
    """Loss / ratio traces for one training run (Figures 4, 9, 10, 11)."""

    compressor: str
    ratio: float
    iterations: np.ndarray
    losses: np.ndarray
    wall_times: np.ndarray
    running_ratio: np.ndarray


def extract_traces(result, window: int = 20) -> TraceBundle:
    """Build the Figure 4/9/10 trace series from a finished training run."""
    metrics = result.metrics
    iterations, losses = metrics.loss_curve()
    return TraceBundle(
        compressor=result.compressor_name,
        ratio=result.config.ratio if result.config else float("nan"),
        iterations=iterations,
        losses=losses,
        wall_times=metrics.wall_times,
        running_ratio=metrics.running_average_ratio(window),
    )
