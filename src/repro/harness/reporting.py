"""Plain-text reporting of benchmark results.

The paper communicates its results as grouped bar charts and line plots; this
module renders the same numbers as aligned text tables so the benchmark
harness can print "the same rows/series the paper reports" without a plotting
dependency.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Iterable, Mapping


def _coerce_row(row) -> dict:
    if is_dataclass(row) and not isinstance(row, type):
        return asdict(row)
    if isinstance(row, Mapping):
        return dict(row)
    raise TypeError(f"cannot render row of type {type(row)!r}")


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_value(v) for v in value) + ")"
    return str(value)


def format_table(rows: Iterable, columns: list[str] | None = None, *, title: str | None = None) -> str:
    """Render rows (dicts or dataclasses) as an aligned text table."""
    dict_rows = [_coerce_row(r) for r in rows]
    if not dict_rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(dict_rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in dict_rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(name: str, xs, ys, *, max_points: int = 12) -> str:
    """Render an (x, y) series compactly, subsampling long series."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) > max_points:
        step = max(1, len(xs) // max_points)
        xs = xs[::step]
        ys = ys[::step]
    points = ", ".join(f"({_format_value(x)}, {_format_value(y)})" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def format_overlap_summary(rows) -> str:
    """Summarise overlapped vs serialised iteration time per compressor.

    Accepts :class:`~repro.harness.training_runs.BenchmarkRunRow` rows (or any
    mapping with ``compressor``, ``overlap``, ``total_time``,
    ``serialized_time`` and ``overlap_saving``) and renders the event-driven
    schedule's headline comparison: how much wall-clock the overlap policy
    recovered relative to serialising compute, compression and communication.
    """
    dict_rows = [_coerce_row(r) for r in rows]
    lines = []
    for row in dict_rows:
        serialized = row.get("serialized_time", 0.0) or row.get("total_time", 0.0)
        lines.append(
            f"  {row['compressor']:<12} overlap={row.get('overlap', 'none'):<13}"
            f" overlapped={_format_value(row['total_time'])}s"
            f"  serialized={_format_value(serialized)}s"
            f"  saved={_format_value(100.0 * row.get('overlap_saving', 0.0))}%"
        )
    return "\n".join(["overlapped vs serialized iteration time:", *lines])


def format_straggler_summary(rows) -> str:
    """Summarise straggler overhead and mitigation per evaluated point.

    Accepts :class:`~repro.harness.sweep.SweepRecord`-like rows (anything with
    ``config``/``metrics`` mappings — they are merged) or flat mappings
    carrying ``sync_policy``, ``straggler_severity``, ``link_degradation``,
    ``straggler_overhead``, ``participating_workers`` and ``stragglers_cut``,
    and renders the fault layer's headline comparison: how much slower the
    faulted iteration ran than the clean schedule, and what the sync policy
    cut to get there.
    """
    lines = []
    for row in rows:
        config = getattr(row, "config", None)
        metrics = getattr(row, "metrics", None)
        merged = {**config, **metrics} if config is not None and metrics is not None else _coerce_row(row)
        lines.append(
            f"  policy={merged.get('sync_policy', 'full-sync'):<15}"
            f" severity={_format_value(merged.get('straggler_severity', 1.0))}x"
            f" link={_format_value(merged.get('link_degradation', 1.0))}x"
            f"  overhead={_format_value(merged.get('straggler_overhead', 1.0))}x"
            f"  participants={merged.get('participating_workers', '?')}"
            f"  cut={merged.get('stragglers_cut', 0)}"
        )
    return "\n".join(["straggler overhead vs clean schedule:", *lines])


def format_phase_breakdown(cost) -> str:
    """Render a collective's per-phase cost breakdown as an aligned table.

    Accepts a :class:`~repro.distributed.CollectiveCost` (or any object with
    ``op``, ``algorithm``, ``num_workers`` and ``phases`` carrying ``name`` /
    ``link`` / ``seconds`` / ``volume_bytes``) and shows where each phase of
    the collective spends its time — the topology-aware counterpart of the
    single-number `allgather_time`.

    Serial phases render back-to-back and total to their sum.  Chunk-pipelined
    phases (``start``/``chunk`` set) additionally show their placement, the
    total is the makespan, and a headline line reports the chunk count and —
    when the cost carries one — the achieved sparse-dedup ratio.
    """
    header = f"{cost.op} via {cost.algorithm} over {cost.num_workers} workers:"
    if not cost.phases:
        return "\n".join([header, "  (free: single participant)"])
    lines = [header]
    pipelined = any(getattr(phase, "start", None) is not None for phase in cost.phases)
    deduped = getattr(cost, "dedup_ratio", 1.0) != 1.0
    if pipelined or deduped:
        notes = []
        if pipelined:
            notes.append(f"pipelined over {getattr(cost, 'pipeline_chunks', '?')} chunks")
        if deduped:
            notes.append(f"dedup ratio {_format_value(cost.dedup_ratio)}x")
        lines.append("  (" + ", ".join(notes) + ")")
    for phase in cost.phases:
        label = phase.name
        chunk = getattr(phase, "chunk", None)
        if chunk is not None:
            label = f"{phase.name}[c{chunk}]"
        line = (
            f"  {label:<20} link={phase.link:<16}"
            f" t={_format_value(phase.seconds)}s"
            f"  volume={_format_value(phase.volume_bytes)}B"
        )
        start = getattr(phase, "start", None)
        if start is not None:
            line += f"  @{_format_value(start)}s"
        lines.append(line)
    if pipelined:
        total = cost.total
        label = "makespan"
    else:
        total = sum(phase.seconds for phase in cost.phases)
        label = "total"
    lines.append(f"  {label:<20} {'':<21} t={_format_value(total)}s")
    return "\n".join(lines)


def format_link_utilization(schedule) -> str:
    """Render a schedule's per-link network utilisation as an aligned table.

    Accepts an :class:`~repro.distributed.IterationSchedule` (or any object
    with a ``link_utilization()`` method and ``policy``/``cross_bucket``
    attributes) and shows, for every fabric the collective phases named, how
    busy the link was over the window from the first to the last communication
    event.  This is the headline view of cross-bucket pipelining: the serial
    whole-occupancy lane leaves each fabric idle while the other works, the
    per-link lanes keep both busy.
    """
    lanes = "per-link lanes" if getattr(schedule, "cross_bucket", False) else "serial lane"
    lines = [f"network-link utilisation (overlap={schedule.policy}, {lanes}):"]
    utilization = schedule.link_utilization()
    if not utilization:
        lines.append("  (no communication events)")
        return "\n".join(lines)
    for link, stats in utilization.items():
        label = link or "(unattributed)"
        lines.append(
            f"  {label:<18} busy={_format_value(stats['busy_seconds'])}s"
            f"  window={_format_value(stats['window_seconds'])}s"
            f"  utilisation={_format_value(100.0 * stats['utilization'])}%"
        )
    return "\n".join(lines)


#: Metrics ``format_sweep_table`` shows when the caller does not choose.
_DEFAULT_SWEEP_METRICS = ("iteration_seconds", "speedup_vs_dense", "communication_seconds")


def format_sweep_table(
    result,
    *,
    metrics: tuple[str, ...] = _DEFAULT_SWEEP_METRICS,
    title: str | None = None,
) -> str:
    """Render a :class:`~repro.harness.sweep.SweepResult` as an aligned table.

    Columns are the workload, then only the knobs that actually vary across
    the sweep (constant knobs are noise in a what-if comparison), then the
    requested metric columns.  Accepts any object with ``records`` carrying
    ``workload`` / ``config`` / ``metrics``.
    """
    records = list(result.records)
    if not records:
        return (title + "\n" if title else "") + "(no rows)"
    varying = [
        knob
        for knob in records[0].config
        if len({record.config.get(knob) for record in records}) > 1
    ]
    rows = [
        {
            "workload": record.workload,
            **{knob: record.config.get(knob) for knob in varying},
            **{metric: record.metrics.get(metric) for metric in metrics},
        }
        for record in records
    ]
    return format_table(rows, ["workload", *varying, *metrics], title=title)


def format_speedup_summary(rows, *, group_by: str = "ratio") -> str:
    """Summarise benchmark-comparison rows grouped by ratio (the paper's bar groups)."""
    dict_rows = [_coerce_row(r) for r in rows]
    groups: dict = {}
    for row in dict_rows:
        groups.setdefault(row[group_by], []).append(row)
    lines = []
    for key in sorted(groups):
        lines.append(f"{group_by}={key}:")
        for row in groups[key]:
            lines.append(
                f"  {row['compressor']:<12} speedup={_format_value(row['speedup_vs_baseline'])}"
                f"  tput={_format_value(row['throughput_vs_baseline'])}"
                f"  est_quality={_format_value(row['estimation_quality'])}"
            )
    return "\n".join(lines)
