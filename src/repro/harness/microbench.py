"""Compression micro-benchmarks (Figures 1, 12, 14, 15, 16, 17).

These functions sweep compressors x ratios x devices over gradient vectors of
controlled dimension and produce the rows the paper's micro-benchmark figures
plot: modelled compression latency, speed-up normalised to Top-k, and
threshold-estimation quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compressors.registry import create_compressor
from ..gradients.synthetic import MODEL_DIMENSIONS, SYNTHETIC_TENSOR_SIZES, realistic_gradient
from ..perfmodel.costs import DeviceProfile
from ..perfmodel.device import CPU_XEON, GPU_V100
from ..perfmodel.estimator import estimate_latency_for_dimension

#: Compressor line-up of the micro-benchmark figures.
DEFAULT_COMPRESSORS: tuple[str, ...] = ("topk", "dgc", "redsync", "gaussiank", "sidco-e")

#: Default number of warm-up compressions so adaptive compressors (SIDCo)
#: reach their steady-state stage count before being timed.
DEFAULT_WARMUP_CALLS = 12


@dataclass(frozen=True)
class MicrobenchRow:
    """One (compressor, ratio, device, dimension) measurement."""

    compressor: str
    device: str
    dimension: int
    ratio: float
    latency_seconds: float
    speedup_over_topk: float
    estimation_quality: float


def _steady_state_compressor(name: str, sample: np.ndarray, ratio: float, warmup_calls: int):
    compressor = create_compressor(name)
    for _ in range(warmup_calls):
        compressor.compress(sample, ratio)
    return compressor


def run_microbenchmark(
    dimension: int,
    *,
    ratios: tuple[float, ...] = (0.1, 0.01, 0.001),
    compressors: tuple[str, ...] = DEFAULT_COMPRESSORS,
    devices: tuple[DeviceProfile, ...] = (GPU_V100, CPU_XEON),
    sample_size: int = 500_000,
    warmup_calls: int = DEFAULT_WARMUP_CALLS,
    seed: int = 0,
) -> list[MicrobenchRow]:
    """Latency / speed-up / quality rows for one gradient dimension (Figure 1 layout)."""
    if dimension < 1:
        raise ValueError("dimension must be positive")
    sample = realistic_gradient(min(dimension, sample_size), seed=seed)
    rows: list[MicrobenchRow] = []
    for device in devices:
        for ratio in ratios:
            latencies: dict[str, float] = {}
            qualities: dict[str, float] = {}
            for name in compressors:
                compressor = _steady_state_compressor(name, sample, ratio, warmup_calls)
                estimate = estimate_latency_for_dimension(compressor, sample, dimension, ratio, device)
                latencies[name] = estimate.seconds
                qualities[name] = estimate.achieved_ratio / ratio
            reference = latencies.get("topk")
            for name in compressors:
                speedup = reference / latencies[name] if reference else float("nan")
                rows.append(
                    MicrobenchRow(
                        compressor=name,
                        device=device.name,
                        dimension=dimension,
                        ratio=ratio,
                        latency_seconds=latencies[name],
                        speedup_over_topk=speedup,
                        estimation_quality=qualities[name],
                    )
                )
    return rows


def run_model_microbenchmarks(
    models: tuple[str, ...] = ("resnet20", "vgg16", "resnet50", "lstm-ptb"),
    **kwargs,
) -> dict[str, list[MicrobenchRow]]:
    """Micro-benchmark rows for real model dimensions (Figures 14 and 15)."""
    results: dict[str, list[MicrobenchRow]] = {}
    for model in models:
        key = model.lower()
        if key not in MODEL_DIMENSIONS:
            raise ValueError(f"unknown model {model!r}; known: {sorted(MODEL_DIMENSIONS)}")
        results[model] = run_microbenchmark(MODEL_DIMENSIONS[key], **kwargs)
    return results


def run_synthetic_size_sweep(
    sizes: tuple[int, ...] = SYNTHETIC_TENSOR_SIZES,
    **kwargs,
) -> dict[int, list[MicrobenchRow]]:
    """Micro-benchmark rows for synthetic tensor sizes (Figures 16 and 17)."""
    return {size: run_microbenchmark(size, **kwargs) for size in sizes}


def speedup_matrix(rows: list[MicrobenchRow], device_name: str) -> dict[tuple[str, float], float]:
    """Pivot rows into ``(compressor, ratio) -> speed-up`` for one device."""
    return {
        (row.compressor, row.ratio): row.speedup_over_topk
        for row in rows
        if row.device == device_name
    }


def quality_matrix(rows: list[MicrobenchRow]) -> dict[tuple[str, float], float]:
    """Pivot rows into ``(compressor, ratio) -> k_hat / k`` (device independent)."""
    out: dict[tuple[str, float], list[float]] = {}
    for row in rows:
        out.setdefault((row.compressor, row.ratio), []).append(row.estimation_quality)
    return {key: float(np.mean(values)) for key, values in out.items()}
