"""Unified ``BENCH_*.json`` artifact schema.

Every benchmark under ``benchmarks/`` persists its headline numbers as a JSON
artifact at the repository root.  Historically each module invented its own
top-level shape, which made the artifacts easy to write and impossible to
consume uniformly — a dashboard (or the sweep engine's own results) had to
know six ad-hoc layouts.

This module defines the one envelope they all share:

``schema`` / ``schema_version``
    Identifies the envelope (``"sidco.bench-artifact"``) and its revision, so
    consumers can dispatch without guessing.
``benchmark``
    The emitting benchmark's name (``"overlap_speedup"``, ``"sweep"``, ...).
``params``
    The knobs the benchmark ran with (dimension, ratios, topology, ...).
``metrics``
    Flat headline numbers — the values a ratchet or dashboard reads first.
``records``
    Uniform per-point rows (one dict per measured configuration) in the
    sweep-result idiom: ``{"workload": ..., "config": {...}, "metrics": {...}}``
    or any list of flat dicts.

Legacy keys ride along at the top level for one release (``legacy=`` merges
them in, envelope keys winning), so existing consumers keep working while
they migrate to ``metrics``/``records``.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Envelope identifier shared by every repo benchmark artifact.
BENCH_SCHEMA = "sidco.bench-artifact"
#: Current envelope revision.  Bump when envelope keys change meaning.
BENCH_SCHEMA_VERSION = 1

#: Keys owned by the envelope; legacy payloads cannot override them.
ENVELOPE_KEYS = ("schema", "schema_version", "benchmark", "params", "metrics", "records")


def bench_artifact(
    benchmark: str,
    *,
    params: dict | None = None,
    metrics: dict | None = None,
    records: list[dict] | None = None,
    legacy: dict | None = None,
) -> dict:
    """Assemble one schema-conformant artifact payload.

    ``legacy`` keys are merged at the top level (the pre-schema shape, kept
    for one release); envelope keys always win so a stale legacy dict can
    never corrupt the schema fields.
    """
    payload = dict(legacy or {})
    payload.update(
        {
            "schema": BENCH_SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "benchmark": benchmark,
            "params": dict(params or {}),
            "metrics": dict(metrics or {}),
            "records": list(records or []),
        }
    )
    return validate_bench_artifact(payload)


def validate_bench_artifact(payload: dict) -> dict:
    """Check the envelope invariants; return the payload for chaining."""
    if not isinstance(payload, dict):
        raise TypeError(f"artifact payload must be a dict, got {type(payload)!r}")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unknown artifact schema {payload.get('schema')!r}; expected {BENCH_SCHEMA!r}"
        )
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"schema_version must be a positive integer, got {version!r}")
    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ValueError(f"benchmark must be a non-empty string, got {benchmark!r}")
    for key in ("params", "metrics"):
        if not isinstance(payload.get(key), dict):
            raise ValueError(f"{key} must be a dict, got {type(payload.get(key))!r}")
    records = payload.get("records")
    if not isinstance(records, list) or any(not isinstance(r, dict) for r in records):
        raise ValueError("records must be a list of dicts")
    return payload


def write_bench_artifact(
    path: str | Path,
    benchmark: str,
    *,
    params: dict | None = None,
    metrics: dict | None = None,
    records: list[dict] | None = None,
    legacy: dict | None = None,
) -> dict:
    """Write one artifact to ``path`` and return the JSON round-trip.

    Returning the re-parsed payload (not the in-memory dict) lets emitters
    assert their ratchet bars against exactly what landed on disk.
    """
    payload = bench_artifact(
        benchmark, params=params, metrics=metrics, records=records, legacy=legacy
    )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return load_bench_artifact(path)


def load_bench_artifact(path: str | Path) -> dict:
    """Read and validate one artifact from ``path``."""
    return validate_bench_artifact(json.loads(Path(path).read_text()))
