"""A simulated data-parallel worker.

Each worker owns a data shard, a compressor instance (with its own adaptive
state) and an error-feedback memory.  Because the trainer applies identical
aggregated updates on every replica, the model object itself is shared across
workers (mathematically equivalent to N identical replicas and N times
cheaper to simulate); everything that genuinely differs per worker — data
order, residual memory, compressor state, local loss — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compressors.base import Compressor, CompressionResult
from ..data.loader import BatchIterator
from ..nn.losses import cross_entropy
from ..nn.module import Module
from ..optim.clip import clip_flat_by_norm
from ..optim.error_feedback import ErrorFeedback
from ..tensor.flatten import FlatSpec, flatten


@dataclass
class WorkerStep:
    """Everything one worker produced for one training iteration."""

    loss: float
    compression: CompressionResult
    gradient_norm: float
    corrected_gradient: np.ndarray


@dataclass
class PreparedGradient:
    """The pre-compression half of a worker step (compute + clip + EF correct).

    Splitting :meth:`Worker.step` at the compress call is what lets a
    compression backend dispatch the heavy middle to a process pool while the
    model-touching halves stay in-process.
    """

    loss: float
    gradient_norm: float
    corrected: np.ndarray


class Worker:
    """One data-parallel worker in the synchronous SGD simulation."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        batches: BatchIterator,
        compressor: Compressor,
        *,
        use_error_feedback: bool = True,
        clip_norm: float | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.model = model
        self.batches = batches
        self.compressor = compressor
        self.clip_norm = clip_norm
        #: Cluster membership this iteration, maintained by the trainer's
        #: fault layer (worker churn).  An inactive worker skips the step
        #: entirely: its batch stream does not advance and it contributes no
        #: gradient.  Always True on fault-free runs.
        self.active = True
        self.flat_spec: FlatSpec = FlatSpec.from_named_shapes(
            {name: p.shape for name, p in model.named_parameters().items()}
        )
        self.error_feedback = ErrorFeedback(self.flat_spec.total_size) if use_error_feedback else None

    def compute_gradient(self) -> tuple[float, np.ndarray]:
        """Run one forward/backward on the next local batch; return (loss, flat gradient)."""
        inputs, targets = self.batches.next_batch()
        self.model.zero_grad()
        logits = self.model(inputs)
        loss, grad_logits = cross_entropy(logits, targets)
        self.model.backward(grad_logits)
        flat, _ = flatten(self.model.gradient_dict(), self.flat_spec)
        return loss, flat

    def prepare(self) -> PreparedGradient:
        """Compute and (optionally) clip + error-correct this worker's gradient."""
        loss, flat = self.compute_gradient()
        if self.clip_norm is not None:
            flat, _ = clip_flat_by_norm(flat, self.clip_norm)
        gradient_norm = float(np.linalg.norm(flat))

        if self.error_feedback is not None:
            corrected = self.error_feedback.correct(flat)
        else:
            corrected = flat
        return PreparedGradient(loss=loss, gradient_norm=gradient_norm, corrected=corrected)

    def finalize(self, prepared: PreparedGradient, result: CompressionResult) -> WorkerStep:
        """Fold a compression result back into this worker's error-feedback memory."""
        if self.error_feedback is not None:
            self.error_feedback.update(prepared.corrected, result.sparse)
        return WorkerStep(
            loss=prepared.loss,
            compression=result,
            gradient_norm=prepared.gradient_norm,
            corrected_gradient=prepared.corrected,
        )

    def step(self, ratio: float) -> WorkerStep:
        """Compute, (optionally) error-correct, and compress this worker's gradient."""
        prepared = self.prepare()
        result = self.compressor.compress(prepared.corrected, ratio)
        return self.finalize(prepared, result)

    def reset(self) -> None:
        """Clear per-run state (compressor adaptation and residual memory)."""
        self.compressor.reset()
        if self.error_feedback is not None:
            self.error_feedback.reset()
