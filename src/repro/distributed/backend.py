"""Worker compression backends: in-process serial or a real process pool.

The simulated trainer runs every worker's compression in one Python process
by default.  That is bit-for-bit reproducible but leaves real cores idle
during the one genuinely heavy step of a simulated iteration — per-worker
gradient compression.  ``TrainerConfig(worker_backend="process")`` dispatches
each worker's compress call to a process pool instead:

* tasks are ``(compressor, gradient, ratio)`` triples — everything picklable —
  shipped in deterministic worker order and mapped back in the same order
  (``Pool.map`` preserves ordering regardless of completion order),
* the pool worker returns ``(result, compressor)`` so cross-iteration
  adaptive state (RNG streams, SIDCo stage controllers, adaptive threshold
  scales) round-trips through the pool and evolves exactly as it would
  in-process; the trainer stores the returned compressor back on the worker,
* tasks are chunked so each pool process receives a contiguous block of
  workers per iteration rather than one IPC round-trip per worker.

Because every task is self-contained and the map is order-preserving, the
process backend reproduces the serial backend's :class:`TrainingMetrics`
bit-for-bit on fixed seeds — the property the backend tests pin across 2 and
4 workers.  The ``spawn`` start method is used for portability (fork-safety
with threaded BLAS is not assumed); pool workers import :mod:`repro` from the
inherited environment.  As with any ``spawn``-based multiprocessing, a user
script that selects the process backend must guard its entry point with
``if __name__ == "__main__":``.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from ..compressors.base import Compressor, CompressionResult

#: Backends accepted by ``TrainerConfig.worker_backend``.
WORKER_BACKENDS: tuple[str, ...] = ("serial", "process")


class SpawnPool:
    """Lazily-created ``spawn`` process pool with ordered, chunked mapping.

    The reusable core of :class:`ProcessCompressionBackend`, also driving the
    sweep engine's parallel point evaluation: the pool is created on first
    use (sized to ``min(num_tasks, cpu_count)`` unless ``processes`` pins it),
    ``map`` ships contiguous task chunks and returns results in task order,
    and ``close`` tears the pool down so a later ``map`` lazily rebuilds it.

    Tasks and results must be picklable; the mapped function must be a
    module-level callable so it pickles by reference.
    """

    def __init__(self, processes: int | None = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._requested = processes
        self._pool = None
        self._processes = 0

    def _ensure_pool(self, num_tasks: int) -> None:
        if self._pool is not None:
            return
        import multiprocessing

        self._processes = self._requested or max(1, min(num_tasks, os.cpu_count() or 1))
        self._pool = multiprocessing.get_context("spawn").Pool(self._processes)

    @property
    def is_open(self) -> bool:
        """True while an OS process pool is alive (created lazily by ``map``)."""
        return self._pool is not None

    def map(self, fn, tasks: Sequence) -> list:
        """Apply ``fn`` to every task, one contiguous chunk per process."""
        tasks = list(tasks)
        if not tasks:
            return []
        self._ensure_pool(len(tasks))
        chunksize = max(1, len(tasks) // self._processes)
        return self._pool.map(fn, tasks, chunksize=chunksize)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def validate_worker_backend(name: str) -> str:
    """Fail fast on unknown backend names (mirrors the collective validators)."""
    if name not in WORKER_BACKENDS:
        raise ValueError(f"unknown worker backend {name!r}; known: {list(WORKER_BACKENDS)}")
    return name


def create_worker_backend(name: str, *, processes: int | None = None) -> "CompressionBackend":
    """Build the compression backend for a validated backend name."""
    validate_worker_backend(name)
    if name == "process":
        return ProcessCompressionBackend(processes=processes)
    return SerialCompressionBackend()


def _compress_task(
    task: tuple[Compressor, np.ndarray, float],
) -> tuple[CompressionResult, Compressor]:
    """Pool-worker body: compress one gradient, return result plus the
    state-evolved compressor (module-level so it pickles by reference)."""
    compressor, gradient, ratio = task
    return compressor.compress(gradient, ratio), compressor


class CompressionBackend:
    """Maps per-worker ``compress`` calls; results come back in worker order."""

    name = "base"

    def compress_all(
        self,
        compressors: Sequence[Compressor],
        gradients: Sequence[np.ndarray],
        ratio: float,
    ) -> list[tuple[CompressionResult, Compressor]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""


class SerialCompressionBackend(CompressionBackend):
    """The default: compress every worker's gradient in-process, in order."""

    name = "serial"

    def compress_all(self, compressors, gradients, ratio):
        return [(c.compress(g, ratio), c) for c, g in zip(compressors, gradients)]


class ProcessCompressionBackend(CompressionBackend):
    """Chunked process-pool dispatch of per-worker compression.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(num_workers, cpu_count)`` at first use.
    """

    name = "process"

    def __init__(self, processes: int | None = None) -> None:
        self._pool = SpawnPool(processes)

    def compress_all(self, compressors, gradients, ratio):
        # One contiguous chunk of workers per process and per iteration.
        tasks = [(c, g, ratio) for c, g in zip(compressors, gradients)]
        return self._pool.map(_compress_task, tasks)

    def close(self) -> None:
        self._pool.close()
