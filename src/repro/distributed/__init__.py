"""Distributed synchronous SGD simulator with gradient compression."""

from .collectives import CollectiveResult, allgather_sparse, allreduce_dense
from .metrics import IterationRecord, TrainingMetrics
from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NETWORKS,
    NODE_INFINIBAND_100G,
    NetworkModel,
    get_network,
)
from .schedule import (
    OVERLAP_POLICIES,
    BucketEvent,
    BucketTask,
    IterationSchedule,
    ready_times_from_fractions,
    simulate_iteration,
    validate_overlap,
)
from .timeline import IterationTiming, TimelineModel, compute_time_for_overhead
from .trainer import (
    DistributedTrainer,
    TrainerConfig,
    TrainingRunResult,
    train_baseline_and_compressed,
)
from .worker import Worker, WorkerStep

__all__ = [
    "CLUSTER_ETHERNET_10G",
    "CLUSTER_ETHERNET_25G",
    "NETWORKS",
    "NODE_INFINIBAND_100G",
    "OVERLAP_POLICIES",
    "BucketEvent",
    "BucketTask",
    "CollectiveResult",
    "DistributedTrainer",
    "IterationRecord",
    "IterationSchedule",
    "IterationTiming",
    "NetworkModel",
    "TimelineModel",
    "TrainerConfig",
    "TrainingMetrics",
    "TrainingRunResult",
    "Worker",
    "WorkerStep",
    "allgather_sparse",
    "allreduce_dense",
    "compute_time_for_overhead",
    "get_network",
    "ready_times_from_fractions",
    "simulate_iteration",
    "train_baseline_and_compressed",
    "validate_overlap",
]
