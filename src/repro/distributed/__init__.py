"""Distributed synchronous SGD simulator with gradient compression."""

from .collectives import CollectiveResult, allgather_sparse, allreduce_dense
from .metrics import IterationRecord, TrainingMetrics
from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NETWORKS,
    NODE_INFINIBAND_100G,
    NetworkModel,
    get_network,
)
from .schedule import (
    OVERLAP_POLICIES,
    BucketEvent,
    BucketTask,
    IterationSchedule,
    PhaseEvent,
    ready_times_from_fractions,
    simulate_iteration,
    validate_overlap,
)
from .timeline import IterationTiming, TimelineModel, compute_time_for_overhead
from .topology import (
    COLLECTIVE_ALGORITHMS,
    COLLECTIVE_OPS,
    DEDUP_ASSUMPTIONS,
    TOPOLOGIES,
    ClusterTopology,
    CollectiveCost,
    CollectiveModel,
    CollectivePhase,
    SparseAggregateModel,
    get_collective_algorithm,
    get_topology,
    hierarchical_crossover_factor,
    validate_pipeline_chunks,
)
from .trainer import (
    DistributedTrainer,
    TrainerConfig,
    TrainingRunResult,
    train_baseline_and_compressed,
)
from .worker import Worker, WorkerStep

__all__ = [
    "CLUSTER_ETHERNET_10G",
    "CLUSTER_ETHERNET_25G",
    "COLLECTIVE_ALGORITHMS",
    "COLLECTIVE_OPS",
    "DEDUP_ASSUMPTIONS",
    "NETWORKS",
    "NODE_INFINIBAND_100G",
    "OVERLAP_POLICIES",
    "TOPOLOGIES",
    "BucketEvent",
    "BucketTask",
    "ClusterTopology",
    "CollectiveCost",
    "CollectiveModel",
    "CollectivePhase",
    "CollectiveResult",
    "DistributedTrainer",
    "IterationRecord",
    "IterationSchedule",
    "IterationTiming",
    "NetworkModel",
    "PhaseEvent",
    "SparseAggregateModel",
    "TimelineModel",
    "TrainerConfig",
    "TrainingMetrics",
    "TrainingRunResult",
    "Worker",
    "WorkerStep",
    "allgather_sparse",
    "allreduce_dense",
    "compute_time_for_overhead",
    "get_collective_algorithm",
    "get_network",
    "get_topology",
    "hierarchical_crossover_factor",
    "ready_times_from_fractions",
    "simulate_iteration",
    "train_baseline_and_compressed",
    "validate_overlap",
    "validate_pipeline_chunks",
]
