"""Distributed synchronous SGD simulator with gradient compression."""

from .collectives import CollectiveResult, allgather_sparse, allreduce_dense
from .metrics import IterationRecord, TrainingMetrics
from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NETWORKS,
    NODE_INFINIBAND_100G,
    NetworkModel,
    get_network,
)
from .timeline import IterationTiming, TimelineModel, compute_time_for_overhead
from .trainer import (
    DistributedTrainer,
    TrainerConfig,
    TrainingRunResult,
    train_baseline_and_compressed,
)
from .worker import Worker, WorkerStep

__all__ = [
    "CLUSTER_ETHERNET_10G",
    "CLUSTER_ETHERNET_25G",
    "NETWORKS",
    "NODE_INFINIBAND_100G",
    "CollectiveResult",
    "DistributedTrainer",
    "IterationRecord",
    "IterationTiming",
    "NetworkModel",
    "TimelineModel",
    "TrainerConfig",
    "TrainingMetrics",
    "TrainingRunResult",
    "Worker",
    "WorkerStep",
    "allgather_sparse",
    "allreduce_dense",
    "compute_time_for_overhead",
    "get_network",
    "train_baseline_and_compressed",
]
