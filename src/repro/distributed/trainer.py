"""Synchronous data-parallel SGD with gradient compression (Algorithm 2).

``DistributedTrainer`` simulates the paper's training stack end-to-end:

1. every worker draws a mini-batch from its shard and computes a local
   gradient (forward/backward on the shared replica),
2. the gradient is error-feedback corrected and compressed by the worker's own
   compressor instance,
3. sparse contributions are aggregated with all-gather semantics (dense
   all-reduce for the no-compression baseline),
4. every replica applies the same averaged update (so one shared model object
   suffices),
5. the iteration is priced by the timeline model (compute + compression +
   communication) to produce simulated wall-clock time, from which
   throughput and time-to-quality speed-ups are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compressors.base import Compressor
from ..compressors.registry import create_compressor
from ..compressors.topk import NoCompression
from ..data.loader import BatchIterator, shard_dataset
from ..gradients.capture import GradientCapture
from ..nn.losses import accuracy, cross_entropy, perplexity
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.sgd import SGD
from ..perfmodel.costs import DeviceProfile
from ..perfmodel.device import GPU_V100
from ..pipeline import CompressionPipeline
from ..tensor.flatten import FlatSpec, unflatten
from .backend import create_worker_backend, validate_worker_backend
from .collectives import allgather_sparse, allreduce_dense
from .metrics import IterationRecord, TrainingMetrics
from .network import CLUSTER_ETHERNET_10G, NetworkModel
from .schedule import validate_cross_bucket, validate_overlap, validate_scheduler_backend
from .timeline import TimelineModel
from .topology import (
    ClusterTopology,
    CollectiveModel,
    SparseAggregateModel,
    get_collective_algorithm,
    get_topology,
    validate_pipeline_chunks,
)
from .worker import Worker


@dataclass
class TrainerConfig:
    """Hyper-parameters of one distributed training run."""

    num_workers: int = 8
    batch_size: int = 16
    iterations: int = 100
    ratio: float = 0.01
    lr: float = 0.1
    momentum: float = 0.0
    nesterov: bool = False
    weight_decay: float = 0.0
    use_error_feedback: bool = True
    clip_norm: float | None = None
    warmup_iterations: int = 0
    seed: int = 0
    compute_seconds: float = 0.01
    dimension_scale: float = 1.0
    #: When set, each worker's compressor runs inside a bucketed
    #: :class:`~repro.pipeline.CompressionPipeline` with this many bytes per
    #: bucket, and the timeline prices communication per bucket.
    bucket_bytes: int | None = None
    #: Overlap policy for the event-driven iteration schedule: ``"none"``
    #: serialises compute, compression and communication (the closed-form
    #: sum); ``"comm"`` overlaps each bucket's all-gather with later buckets'
    #: compression; ``"comm+compress"`` additionally starts compressing each
    #: bucket at its gradient-ready point during backprop.  Only bucketed runs
    #: (``bucket_bytes`` set) have per-bucket structure to overlap.
    overlap: str = "none"
    #: Snap bucket boundaries to the model's layer boundaries (DDP-style) and
    #: derive per-bucket gradient-ready times from reverse layer order.
    #: Ignored unless ``bucket_bytes`` is set.
    layer_aware_buckets: bool = True
    #: Cluster topology the collectives run over: a preset name (``"cluster1"``,
    #: ``"cluster2"``, ``"ethernet-4x8"``, ...), an explicit
    #: :class:`~repro.distributed.topology.ClusterTopology`, or ``None`` for the
    #: degenerate single-level topology over the trainer's network.  The
    #: topology's worker count must match ``num_workers``.
    topology: "str | ClusterTopology | None" = None
    #: Collective algorithm pricing the dense baseline all-reduce.
    allreduce_algorithm: str = "ring-allreduce"
    #: Collective algorithm pricing the sparse all-gather (``"flat-allgather"``,
    #: ``"recursive-doubling"`` or ``"hierarchical"``).
    allgather_algorithm: str = "flat-allgather"
    #: Payload chunks the hierarchical collective phases pipeline over —
    #: ``1`` serialises the intra/inter phases (the PR-3 pricing, reproduced
    #: bit-for-bit), larger values overlap them chunk-by-chunk.  A no-op for
    #: single-link collective algorithms.
    pipeline_chunks: int = 1
    #: Index-overlap assumption for per-node sparse-payload dedup (``"uniform"``,
    #: ``"identical"`` or ``"disjoint"``; see
    #: :class:`~repro.distributed.topology.SparseAggregateModel`), or ``None``
    #: to ship raw concatenated node aggregates (the PR-3 behaviour).
    dedup_assumption: str | None = None
    #: Schedule buckets on per-link network lanes so bucket *i+1*'s intra-node
    #: collective phase overlaps bucket *i*'s inter-node phase.  ``False``
    #: keeps the serial whole-occupancy network lane (the PR-4 scheduler).
    #: Only bucketed runs on a multi-link topology have anything to overlap.
    cross_bucket_pipeline: bool = False
    #: How per-worker compression executes: ``"serial"`` (in-process, the
    #: default) or ``"process"`` (chunked dispatch to a process pool so
    #: multi-worker runs use real cores).  Both are bit-for-bit identical on
    #: fixed seeds; see :mod:`repro.distributed.backend`.
    worker_backend: str = "serial"
    #: Scheduler implementation pricing/placing the bucketed iteration:
    #: ``"loop"`` (the scalar reference simulator) or ``"vectorized"``
    #: (batched NumPy pricing + array scheduling).  Bit-for-bit identical
    #: results; the vectorized backend defers to the loop whenever the
    #: batched contract cannot hold.  See
    #: :class:`~repro.distributed.timeline.TimelineModel`.
    scheduler_backend: str = "loop"

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be non-negative")
        if self.compute_seconds < 0.0:
            raise ValueError("compute_seconds must be non-negative")
        if self.bucket_bytes is not None and self.bucket_bytes < 1:
            raise ValueError("bucket_bytes must be positive when set")
        validate_overlap(self.overlap)
        validate_cross_bucket(self.cross_bucket_pipeline)
        validate_worker_backend(self.worker_backend)
        validate_scheduler_backend(self.scheduler_backend)
        get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        get_collective_algorithm(self.allgather_algorithm, op="allgather")
        validate_pipeline_chunks(self.pipeline_chunks)
        if self.dedup_assumption is not None:
            SparseAggregateModel(self.dedup_assumption)  # fail fast on unknown assumptions
        if self.topology is not None:
            # Fail fast like the algorithm fields: resolve preset names and
            # check the worker count here, not at trainer construction.
            resolved = (
                get_topology(self.topology) if isinstance(self.topology, str) else self.topology
            )
            if resolved.num_workers != self.num_workers:
                raise ValueError(
                    f"topology {resolved.name or resolved!r} has {resolved.num_workers} "
                    f"workers but num_workers is {self.num_workers}"
                )
            self.topology = resolved

    def resolve_topology(self, network: NetworkModel) -> ClusterTopology:
        """The cluster topology this config trains over.

        ``None`` builds the degenerate single-level topology: every worker on
        ``network``, which reproduces the pre-topology pricing exactly.
        """
        if self.topology is None:
            return ClusterTopology.flat(network, self.num_workers)
        return self.topology


@dataclass
class TrainingRunResult:
    """Output of one full training run."""

    metrics: TrainingMetrics
    final_evaluation: dict[str, float] = field(default_factory=dict)
    compressor_name: str = ""
    config: TrainerConfig | None = None


class DistributedTrainer:
    """Simulated synchronous data-parallel training with compressed gradients."""

    def __init__(
        self,
        model: Module,
        dataset,
        compressor: str | Compressor,
        config: TrainerConfig,
        *,
        network: NetworkModel = CLUSTER_ETHERNET_10G,
        device: DeviceProfile = GPU_V100,
        compressor_kwargs: dict | None = None,
        scheduler: LRScheduler | None = None,
        capture: GradientCapture | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.capture = capture
        self.scheduler = scheduler

        flat_spec = FlatSpec.from_named_shapes(
            {name: p.shape for name, p in model.named_parameters().items()}
        )
        shards = shard_dataset(dataset, config.num_workers, seed=config.seed)
        self.workers: list[Worker] = []
        for worker_id, shard in enumerate(shards):
            comp = self._make_compressor(
                compressor,
                compressor_kwargs,
                config.bucket_bytes,
                flat_spec=flat_spec if config.layer_aware_buckets else None,
            )
            batches = BatchIterator(shard, config.batch_size, seed=config.seed + 101 * worker_id)
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    batches,
                    comp,
                    use_error_feedback=config.use_error_feedback,
                    clip_norm=config.clip_norm,
                )
            )
        self.compressor_name = self.workers[0].compressor.name
        self.is_baseline = isinstance(self.workers[0].compressor, NoCompression)

        self.optimizer = SGD(
            model,
            lr=config.lr,
            momentum=config.momentum,
            nesterov=config.nesterov,
            weight_decay=config.weight_decay,
        )
        if scheduler is not None:
            scheduler.optimizer = self.optimizer

        dimension = self.workers[0].flat_spec.total_size
        self.collective = CollectiveModel(
            topology=config.resolve_topology(network),
            allreduce_algorithm=config.allreduce_algorithm,
            allgather_algorithm=config.allgather_algorithm,
            pipeline_chunks=config.pipeline_chunks,
            allgather_dedup=(
                SparseAggregateModel(config.dedup_assumption)
                if config.dedup_assumption is not None
                else None
            ),
        )
        self.timeline = TimelineModel(
            network=network,
            device=device,
            compute_seconds=config.compute_seconds,
            num_workers=config.num_workers,
            model_dimension=dimension,
            dimension_scale=config.dimension_scale,
            overlap=config.overlap,
            collective=self.collective,
            cross_bucket_pipeline=config.cross_bucket_pipeline,
            scheduler_backend=config.scheduler_backend,
        )
        self._warmup_compressor = NoCompression()
        self.backend = create_worker_backend(config.worker_backend)

    @staticmethod
    def _make_compressor(
        compressor: str | Compressor,
        kwargs: dict | None,
        bucket_bytes: int | None = None,
        flat_spec: FlatSpec | None = None,
    ) -> Compressor:
        if isinstance(compressor, Compressor):
            # A shared instance would entangle per-worker adaptive state, so a
            # pre-built compressor is only allowed for single-worker runs.
            built = compressor
        else:
            built = create_compressor(compressor, **(kwargs or {}))
        if bucket_bytes is None or isinstance(built, NoCompression):
            # The dense baseline all-reduces one fused buffer regardless.
            return built
        if isinstance(built, CompressionPipeline):
            # Already bucketed (e.g. a "sidco-*-bucketed" registry name): the
            # trainer config's bucket size and layer layout win over the
            # factory defaults.
            built.bucket_bytes = int(bucket_bytes)
            built.flat_spec = flat_spec
            return built
        return CompressionPipeline(built, bucket_bytes=bucket_bytes, flat_spec=flat_spec)

    # -- training ---------------------------------------------------------------

    def run(self, *, evaluate_on=None) -> TrainingRunResult:
        """Train for ``config.iterations`` iterations and return metrics."""
        cfg = self.config
        metrics = TrainingMetrics()
        wall_time = 0.0
        self.model.train()

        try:
            for iteration in range(cfg.iterations):
                wall_time = self._run_iteration(iteration, metrics, wall_time)
        finally:
            # Release the process pool (a no-op for the serial backend); a
            # later run() lazily rebuilds it.
            self.backend.close()

        evaluation = self.evaluate(evaluate_on) if evaluate_on is not None else {}
        return TrainingRunResult(
            metrics=metrics,
            final_evaluation=evaluation,
            compressor_name=self.compressor_name,
            config=cfg,
        )

    def _run_iteration(self, iteration: int, metrics: TrainingMetrics, wall_time: float) -> float:
        cfg = self.config
        in_warmup = iteration < cfg.warmup_iterations
        lr = self.scheduler.step() if self.scheduler is not None else self.optimizer.lr

        if in_warmup and not self.is_baseline:
            worker_steps = []
            for worker in self.workers:
                # Warm-up: train uncompressed (the paper's 5-epoch warm-up).
                loss, flat = worker.compute_gradient()
                result = self._warmup_compressor.compress(flat, 1.0)
                worker_steps.append((loss, result, flat))
        else:
            # Model-touching halves stay in-process; the compress calls in the
            # middle go through the configured backend (serial, or chunked
            # process-pool dispatch) in deterministic worker order.
            prepared = [worker.prepare() for worker in self.workers]
            compressed = self.backend.compress_all(
                [worker.compressor for worker in self.workers],
                [p.corrected for p in prepared],
                cfg.ratio,
            )
            worker_steps = []
            for worker, prep, (result, compressor) in zip(self.workers, prepared, compressed):
                # The returned compressor carries the state evolved by the
                # call (identity for the serial backend, a pickle round-trip
                # for the process pool); store it back so the next iteration
                # continues the stream.
                worker.compressor = compressor
                step = worker.finalize(prep, result)
                worker_steps.append((step.loss, step.compression, step.corrected_gradient))

        losses = [s[0] for s in worker_steps]
        results = [s[1] for s in worker_steps]

        if self.capture is not None:
            self.capture.record(iteration, worker_steps[0][2])

        if self.is_baseline or in_warmup:
            collective = allreduce_dense([s[2] for s in worker_steps])
            timing = self.timeline.baseline_iteration()
        else:
            collective = allgather_sparse([r.sparse for r in results])
            timing = self.timeline.compressed_iteration(results)

        aggregated = collective.aggregated
        named_grads = unflatten(aggregated, self.workers[0].flat_spec)
        self.optimizer.step(named_grads)

        wall_time += timing.total
        achieved_ratio = float(np.mean([r.achieved_ratio for r in results]))
        thresholds = [r.threshold for r in results if r.threshold is not None]
        metrics.append(
            IterationRecord(
                iteration=iteration,
                loss=float(np.mean(losses)),
                achieved_ratio=achieved_ratio,
                target_ratio=1.0 if (self.is_baseline or in_warmup) else cfg.ratio,
                threshold=float(np.mean(thresholds)) if thresholds else None,
                compute_time=timing.compute,
                compression_time=timing.compression,
                communication_time=timing.communication,
                iteration_time=timing.total,
                serialized_time=timing.serialized,
                wall_time=wall_time,
                samples=cfg.batch_size * cfg.num_workers,
                learning_rate=lr,
                dedup_ratio=timing.dedup_ratio,
            )
        )
        return wall_time

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, dataset, *, batch_size: int = 64) -> dict[str, float]:
        """Mean loss, top-1 accuracy and perplexity of the current model on ``dataset``."""
        self.model.eval()
        n = len(dataset)
        losses: list[float] = []
        accuracies: list[float] = []
        for start in range(0, n, batch_size):
            idx = np.arange(start, min(start + batch_size, n))
            subset = dataset.subset(idx)
            logits = self.model(subset.inputs)
            loss, _ = cross_entropy(logits, subset.targets)
            losses.append(loss)
            accuracies.append(accuracy(logits, subset.targets))
        self.model.train()
        mean_loss = float(np.mean(losses))
        return {
            "loss": mean_loss,
            "accuracy": float(np.mean(accuracies)),
            "perplexity": perplexity(mean_loss),
        }


def train_baseline_and_compressed(
    model_factory,
    dataset,
    compressors: list[str],
    config: TrainerConfig,
    **trainer_kwargs,
) -> dict[str, TrainingRunResult]:
    """Train the same task once per compressor (plus the dense baseline).

    ``model_factory`` must build a freshly initialised (but identically seeded)
    model per run so every compressor starts from the same weights.
    """
    results: dict[str, TrainingRunResult] = {}
    for name in ["none", *compressors]:
        model = model_factory()
        trainer = DistributedTrainer(model, dataset, name, config, **trainer_kwargs)
        results[name] = trainer.run()
    return results
