"""Synchronous data-parallel SGD with gradient compression (Algorithm 2).

``DistributedTrainer`` simulates the paper's training stack end-to-end:

1. every worker draws a mini-batch from its shard and computes a local
   gradient (forward/backward on the shared replica),
2. the gradient is error-feedback corrected and compressed by the worker's own
   compressor instance,
3. sparse contributions are aggregated with all-gather semantics (dense
   all-reduce for the no-compression baseline),
4. every replica applies the same averaged update (so one shared model object
   suffices),
5. the iteration is priced by the timeline model (compute + compression +
   communication) to produce simulated wall-clock time, from which
   throughput and time-to-quality speed-ups are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compressors.base import Compressor
from ..compressors.registry import create_compressor
from ..compressors.topk import NoCompression
from ..data.loader import BatchIterator, shard_dataset
from ..gradients.capture import GradientCapture
from ..nn.losses import accuracy, cross_entropy, perplexity
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.sgd import SGD
from ..perfmodel.costs import DeviceProfile
from ..perfmodel.device import GPU_V100
from ..pipeline import CompressionPipeline
from ..tensor.flatten import FlatSpec, unflatten
from .backend import create_worker_backend, validate_worker_backend
from .collectives import allgather_sparse, allreduce_dense
from .faults import ClusterProfile, FaultModel, get_sync_policy, price_iteration
from .knobs import KNOB_FIELDS, SimulationKnobs, knob_defaults
from .metrics import IterationRecord, TrainingMetrics
from .network import CLUSTER_ETHERNET_10G, NetworkModel
from .timeline import TimelineModel
from .topology import (
    ClusterTopology,
    CollectiveModel,
    SparseAggregateModel,
    get_topology,
)
from .worker import Worker

#: The shared knob-default table (single source of truth: ``SimulationKnobs``).
_KNOB_DEFAULTS = knob_defaults()


@dataclass
class TrainerConfig:
    """Hyper-parameters of one distributed training run."""

    num_workers: int = 8
    batch_size: int = 16
    iterations: int = 100
    ratio: float = 0.01
    lr: float = 0.1
    momentum: float = 0.0
    nesterov: bool = False
    weight_decay: float = 0.0
    use_error_feedback: bool = True
    clip_norm: float | None = None
    warmup_iterations: int = 0
    seed: int = 0
    compute_seconds: float = 0.01
    dimension_scale: float = 1.0
    #: When set, each worker's compressor runs inside a bucketed
    #: :class:`~repro.pipeline.CompressionPipeline` with this many bytes per
    #: bucket, and the timeline prices communication per bucket.
    bucket_bytes: int | None = _KNOB_DEFAULTS["bucket_bytes"]
    #: Overlap policy for the event-driven iteration schedule: ``"none"``
    #: serialises compute, compression and communication (the closed-form
    #: sum); ``"comm"`` overlaps each bucket's all-gather with later buckets'
    #: compression; ``"comm+compress"`` additionally starts compressing each
    #: bucket at its gradient-ready point during backprop.  Only bucketed runs
    #: (``bucket_bytes`` set) have per-bucket structure to overlap.
    overlap: str = _KNOB_DEFAULTS["overlap"]
    #: Snap bucket boundaries to the model's layer boundaries (DDP-style) and
    #: derive per-bucket gradient-ready times from reverse layer order.
    #: Ignored unless ``bucket_bytes`` is set.
    layer_aware_buckets: bool = True
    #: Cluster topology the collectives run over: a preset name (``"cluster1"``,
    #: ``"cluster2"``, ``"ethernet-4x8"``, ...), an explicit
    #: :class:`~repro.distributed.topology.ClusterTopology`, or ``None`` for the
    #: degenerate single-level topology over the trainer's network.  The
    #: topology's worker count must match ``num_workers``.
    topology: "str | ClusterTopology | None" = _KNOB_DEFAULTS["topology"]
    #: Collective algorithm pricing the dense baseline all-reduce.
    allreduce_algorithm: str = _KNOB_DEFAULTS["allreduce_algorithm"]
    #: Collective algorithm pricing the sparse all-gather (``"flat-allgather"``,
    #: ``"recursive-doubling"`` or ``"hierarchical"``).
    allgather_algorithm: str = _KNOB_DEFAULTS["allgather_algorithm"]
    #: Payload chunks the hierarchical collective phases pipeline over —
    #: ``1`` serialises the intra/inter phases (the PR-3 pricing, reproduced
    #: bit-for-bit), larger values overlap them chunk-by-chunk.  A no-op for
    #: single-link collective algorithms.
    pipeline_chunks: int = _KNOB_DEFAULTS["pipeline_chunks"]
    #: Index-overlap assumption for per-node sparse-payload dedup (``"uniform"``,
    #: ``"identical"`` or ``"disjoint"``; see
    #: :class:`~repro.distributed.topology.SparseAggregateModel`), or ``None``
    #: to ship raw concatenated node aggregates (the PR-3 behaviour).
    dedup_assumption: str | None = _KNOB_DEFAULTS["dedup_assumption"]
    #: Schedule buckets on per-link network lanes so bucket *i+1*'s intra-node
    #: collective phase overlaps bucket *i*'s inter-node phase.  ``False``
    #: keeps the serial whole-occupancy network lane (the PR-4 scheduler).
    #: Only bucketed runs on a multi-link topology have anything to overlap.
    cross_bucket_pipeline: bool = _KNOB_DEFAULTS["cross_bucket_pipeline"]
    #: How per-worker compression executes: ``"serial"`` (in-process, the
    #: default) or ``"process"`` (chunked dispatch to a process pool so
    #: multi-worker runs use real cores).  Both are bit-for-bit identical on
    #: fixed seeds; see :mod:`repro.distributed.backend`.
    worker_backend: str = "serial"
    #: Scheduler implementation pricing/placing the bucketed iteration:
    #: ``"loop"`` (the scalar reference simulator) or ``"vectorized"``
    #: (batched NumPy pricing + array scheduling).  Bit-for-bit identical
    #: results; the vectorized backend defers to the loop whenever the
    #: batched contract cannot hold.  See
    #: :class:`~repro.distributed.timeline.TimelineModel`.
    scheduler_backend: str = _KNOB_DEFAULTS["scheduler_backend"]
    #: Synchronization policy under faults (see
    #: :mod:`repro.distributed.faults`): ``"full-sync"`` waits for the slowest
    #: participant (today's barrier), ``"backup-workers"`` cuts the slowest
    #: ``backup_workers``, ``"time-window"`` keeps workers finishing within
    #: ``time_window_factor`` x the fastest finish.
    sync_policy: str = _KNOB_DEFAULTS["sync_policy"]
    #: Slowest workers the ``backup-workers`` policy cuts per iteration.
    backup_workers: int = _KNOB_DEFAULTS["backup_workers"]
    #: ``time-window`` window as a multiple of the fastest worker's finish
    #: time (``None`` = the policy default when that policy is selected).
    time_window_factor: float | None = _KNOB_DEFAULTS["time_window_factor"]
    #: Deterministic compute slowdown (>= 1) of worker 0 — the single-knob
    #: straggler.  For richer heterogeneity pass ``cluster_profile`` instead.
    straggler_severity: float = _KNOB_DEFAULTS["straggler_severity"]
    #: Deterministic link-time multiplier (>= 1) of worker 0.
    link_degradation: float = _KNOB_DEFAULTS["link_degradation"]
    #: Explicit per-worker heterogeneity (mutually exclusive with the two
    #: single-straggler knobs above); ``None`` = homogeneous.
    cluster_profile: "ClusterProfile | None" = None
    #: Fault injectors applied per iteration, in order (``StragglerInjector``,
    #: ``LinkDegradation``, ``WorkerChurn``, or anything with
    #: ``apply(iteration, rates)``).
    fault_injectors: tuple = ()
    #: The consolidated knob bundle.  When passed, its fields overwrite the
    #: corresponding flat fields above; after construction it always holds the
    #: validated, normalised bundle (single source of truth for every knob).
    knobs: "SimulationKnobs | None" = None

    def __post_init__(self) -> None:
        if self.knobs is not None:
            for name in KNOB_FIELDS:
                setattr(self, name, getattr(self.knobs, name))
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be non-negative")
        if self.compute_seconds < 0.0:
            raise ValueError("compute_seconds must be non-negative")
        validate_worker_backend(self.worker_backend)
        self.fault_injectors = tuple(self.fault_injectors)
        if self.cluster_profile is not None:
            if self.cluster_profile.num_workers != self.num_workers:
                raise ValueError(
                    f"cluster_profile has {self.cluster_profile.num_workers} workers "
                    f"but num_workers is {self.num_workers}"
                )
            if self.straggler_severity != 1.0 or self.link_degradation != 1.0:
                raise ValueError(
                    "pass either cluster_profile or the single-straggler knobs "
                    "(straggler_severity / link_degradation), not both"
                )
        if self.topology is not None:
            # Fail fast like the algorithm fields: resolve preset names and
            # check the worker count here, not at trainer construction.
            resolved = (
                get_topology(self.topology) if isinstance(self.topology, str) else self.topology
            )
            if resolved.num_workers != self.num_workers:
                raise ValueError(
                    f"topology {resolved.name or resolved!r} has {resolved.num_workers} "
                    f"workers but num_workers is {self.num_workers}"
                )
            self.topology = resolved
        # Every knob is validated once, by the consolidated bundle (including
        # cross-knob implications like backup_workers requiring its policy);
        # the snapshot is also what downstream surfaces should read.
        self.knobs = self.simulation_knobs()
        if self.backup_workers >= self.num_workers:
            raise ValueError(
                f"backup_workers ({self.backup_workers}) must leave at least one "
                f"participant out of num_workers ({self.num_workers})"
            )

    def simulation_knobs(self) -> SimulationKnobs:
        """The current knob fields as a validated :class:`SimulationKnobs` bundle."""
        return SimulationKnobs(**{name: getattr(self, name) for name in KNOB_FIELDS})

    @property
    def faulted(self) -> bool:
        """True when any heterogeneity/fault/policy configuration is active."""
        return (
            self.cluster_profile is not None
            or bool(self.fault_injectors)
            or self.knobs.faulted
        )

    def build_fault_model(self) -> FaultModel:
        """The fault model this config describes (homogeneous profile when clean)."""
        if self.cluster_profile is not None:
            profile = self.cluster_profile
        elif self.straggler_severity != 1.0 or self.link_degradation != 1.0:
            profile = ClusterProfile.degraded(
                self.num_workers,
                compute=self.straggler_severity,
                link=self.link_degradation,
            )
        else:
            profile = ClusterProfile.homogeneous(self.num_workers)
        return FaultModel(profile=profile, injectors=self.fault_injectors)

    def resolve_topology(self, network: NetworkModel) -> ClusterTopology:
        """The cluster topology this config trains over.

        ``None`` builds the degenerate single-level topology: every worker on
        ``network``, which reproduces the pre-topology pricing exactly.
        """
        if self.topology is None:
            return ClusterTopology.flat(network, self.num_workers)
        return self.topology


@dataclass
class TrainingRunResult:
    """Output of one full training run."""

    metrics: TrainingMetrics
    final_evaluation: dict[str, float] = field(default_factory=dict)
    compressor_name: str = ""
    config: TrainerConfig | None = None


class DistributedTrainer:
    """Simulated synchronous data-parallel training with compressed gradients."""

    def __init__(
        self,
        model: Module,
        dataset,
        compressor: str | Compressor,
        config: TrainerConfig,
        *,
        network: NetworkModel = CLUSTER_ETHERNET_10G,
        device: DeviceProfile = GPU_V100,
        compressor_kwargs: dict | None = None,
        scheduler: LRScheduler | None = None,
        capture: GradientCapture | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.capture = capture
        self.scheduler = scheduler

        flat_spec = FlatSpec.from_named_shapes(
            {name: p.shape for name, p in model.named_parameters().items()}
        )
        shards = shard_dataset(dataset, config.num_workers, seed=config.seed)
        self.workers: list[Worker] = []
        for worker_id, shard in enumerate(shards):
            comp = self._make_compressor(
                compressor,
                compressor_kwargs,
                config.bucket_bytes,
                flat_spec=flat_spec if config.layer_aware_buckets else None,
            )
            batches = BatchIterator(shard, config.batch_size, seed=config.seed + 101 * worker_id)
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    batches,
                    comp,
                    use_error_feedback=config.use_error_feedback,
                    clip_norm=config.clip_norm,
                )
            )
        self.compressor_name = self.workers[0].compressor.name
        self.is_baseline = isinstance(self.workers[0].compressor, NoCompression)

        self.optimizer = SGD(
            model,
            lr=config.lr,
            momentum=config.momentum,
            nesterov=config.nesterov,
            weight_decay=config.weight_decay,
        )
        if scheduler is not None:
            scheduler.optimizer = self.optimizer

        dimension = self.workers[0].flat_spec.total_size
        self.collective = CollectiveModel(
            topology=config.resolve_topology(network),
            allreduce_algorithm=config.allreduce_algorithm,
            allgather_algorithm=config.allgather_algorithm,
            pipeline_chunks=config.pipeline_chunks,
            allgather_dedup=(
                SparseAggregateModel(config.dedup_assumption)
                if config.dedup_assumption is not None
                else None
            ),
        )
        self.timeline = TimelineModel(
            network=network,
            device=device,
            compute_seconds=config.compute_seconds,
            num_workers=config.num_workers,
            model_dimension=dimension,
            dimension_scale=config.dimension_scale,
            overlap=config.overlap,
            collective=self.collective,
            cross_bucket_pipeline=config.cross_bucket_pipeline,
            scheduler_backend=config.scheduler_backend,
        )
        self._warmup_compressor = NoCompression()
        self.backend = create_worker_backend(config.worker_backend)
        # Fault layer: None on the clean path so the nominal iteration code is
        # exactly the pre-fault code (bit-for-bit schedules and timings).
        self.fault_model = config.build_fault_model() if config.faulted else None
        self.sync_policy = get_sync_policy(
            config.sync_policy,
            backup_workers=config.backup_workers,
            time_window_factor=config.time_window_factor,
        )

    @staticmethod
    def _make_compressor(
        compressor: str | Compressor,
        kwargs: dict | None,
        bucket_bytes: int | None = None,
        flat_spec: FlatSpec | None = None,
    ) -> Compressor:
        if isinstance(compressor, Compressor):
            # A shared instance would entangle per-worker adaptive state, so a
            # pre-built compressor is only allowed for single-worker runs.
            built = compressor
        else:
            built = create_compressor(compressor, **(kwargs or {}))
        if bucket_bytes is None or isinstance(built, NoCompression):
            # The dense baseline all-reduces one fused buffer regardless.
            return built
        if isinstance(built, CompressionPipeline):
            # Already bucketed (e.g. a "sidco-*-bucketed" registry name): the
            # trainer config's bucket size and layer layout win over the
            # factory defaults.
            built.bucket_bytes = int(bucket_bytes)
            built.flat_spec = flat_spec
            return built
        return CompressionPipeline(built, bucket_bytes=bucket_bytes, flat_spec=flat_spec)

    # -- training ---------------------------------------------------------------

    def run(self, *, evaluate_on=None) -> TrainingRunResult:
        """Train for ``config.iterations`` iterations and return metrics."""
        cfg = self.config
        metrics = TrainingMetrics()
        wall_time = 0.0
        self.model.train()

        try:
            for iteration in range(cfg.iterations):
                wall_time = self._run_iteration(iteration, metrics, wall_time)
        finally:
            # Release the process pool (a no-op for the serial backend); a
            # later run() lazily rebuilds it.
            self.backend.close()

        evaluation = self.evaluate(evaluate_on) if evaluate_on is not None else {}
        return TrainingRunResult(
            metrics=metrics,
            final_evaluation=evaluation,
            compressor_name=self.compressor_name,
            config=cfg,
        )

    def _run_iteration(self, iteration: int, metrics: TrainingMetrics, wall_time: float) -> float:
        cfg = self.config
        in_warmup = iteration < cfg.warmup_iterations
        lr = self.scheduler.step() if self.scheduler is not None else self.optimizer.lr

        # Fault layer: resolve this iteration's membership.  Inactive workers
        # (churn) skip the step entirely — their batch stream does not advance
        # and they contribute no gradient.  On the clean path `workers` is the
        # untouched full list and the code below is exactly the pre-fault path.
        if self.fault_model is None:
            rates = None
            workers = self.workers
        else:
            rates = self.fault_model.rates_for_iteration(iteration)
            flags = rates.active.tolist()
            for worker, flag in zip(self.workers, flags):
                worker.active = bool(flag)
            workers = [w for w, flag in zip(self.workers, flags) if flag]
            if not workers:
                raise RuntimeError("fault injection left no active workers this iteration")

        if in_warmup and not self.is_baseline:
            worker_steps = []
            for worker in workers:
                # Warm-up: train uncompressed (the paper's 5-epoch warm-up).
                loss, flat = worker.compute_gradient()
                result = self._warmup_compressor.compress(flat, 1.0)
                worker_steps.append((loss, result, flat))
        else:
            # Model-touching halves stay in-process; the compress calls in the
            # middle go through the configured backend (serial, or chunked
            # process-pool dispatch) in deterministic worker order.
            prepared = [worker.prepare() for worker in workers]
            compressed = self.backend.compress_all(
                [worker.compressor for worker in workers],
                [p.corrected for p in prepared],
                cfg.ratio,
            )
            worker_steps = []
            for worker, prep, (result, compressor) in zip(workers, prepared, compressed):
                # The returned compressor carries the state evolved by the
                # call (identity for the serial backend, a pickle round-trip
                # for the process pool); store it back so the next iteration
                # continues the stream.
                worker.compressor = compressor
                step = worker.finalize(prep, result)
                worker_steps.append((step.loss, step.compression, step.corrected_gradient))

        losses = [s[0] for s in worker_steps]
        results = [s[1] for s in worker_steps]

        if self.capture is not None:
            self.capture.record(iteration, worker_steps[0][2])

        # Nominal-rate timing: the components every record reports.  Under
        # faults it also seeds the per-worker pricing memo so the nominal
        # workers' finish time is bit-for-bit this number.
        if self.is_baseline or in_warmup:
            timing = self.timeline.baseline_iteration()

            def price(compute_scale: float, comm_scale: float) -> float:
                if compute_scale == 1.0 and comm_scale == 1.0:
                    return timing.total
                return self.timeline.baseline_iteration(
                    compute_scale=compute_scale, comm_scale=comm_scale
                ).total
        else:
            timing = self.timeline.compressed_iteration(results)

            def price(compute_scale: float, comm_scale: float) -> float:
                if compute_scale == 1.0 and comm_scale == 1.0:
                    return timing.total
                return self.timeline.compressed_iteration(
                    results, compute_scale=compute_scale, comm_scale=comm_scale
                ).total

        # Sync policy: which of the active workers' gradients aggregate, and
        # what the cluster-level iteration time is.
        if rates is None:
            faulted = None
            participating_steps = worker_steps
            iteration_seconds = timing.total
        else:
            faulted = price_iteration(price, rates, self.sync_policy)
            keep = faulted.outcome.participating
            participating_steps = [
                step for w, step in zip(rates.active_indices, worker_steps) if keep[w]
            ]
            iteration_seconds = faulted.iteration_seconds

        if self.is_baseline or in_warmup:
            collective = allreduce_dense([s[2] for s in participating_steps])
        else:
            collective = allgather_sparse([s[1].sparse for s in participating_steps])

        aggregated = collective.aggregated
        named_grads = unflatten(aggregated, self.workers[0].flat_spec)
        self.optimizer.step(named_grads)

        wall_time += iteration_seconds
        achieved_ratio = float(np.mean([r.achieved_ratio for r in results]))
        thresholds = [r.threshold for r in results if r.threshold is not None]
        metrics.append(
            IterationRecord(
                iteration=iteration,
                loss=float(np.mean(losses)),
                achieved_ratio=achieved_ratio,
                target_ratio=1.0 if (self.is_baseline or in_warmup) else cfg.ratio,
                threshold=float(np.mean(thresholds)) if thresholds else None,
                compute_time=timing.compute,
                compression_time=timing.compression,
                communication_time=timing.communication,
                iteration_time=iteration_seconds,
                serialized_time=timing.serialized,
                wall_time=wall_time,
                samples=cfg.batch_size * len(participating_steps),
                learning_rate=lr,
                dedup_ratio=timing.dedup_ratio,
                participating_workers=(
                    None if faulted is None else faulted.outcome.num_participating
                ),
                stragglers_cut=0 if faulted is None else faulted.outcome.stragglers_cut,
            )
        )
        return wall_time

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, dataset, *, batch_size: int = 64) -> dict[str, float]:
        """Mean loss, top-1 accuracy and perplexity of the current model on ``dataset``."""
        self.model.eval()
        n = len(dataset)
        losses: list[float] = []
        accuracies: list[float] = []
        for start in range(0, n, batch_size):
            idx = np.arange(start, min(start + batch_size, n))
            subset = dataset.subset(idx)
            logits = self.model(subset.inputs)
            loss, _ = cross_entropy(logits, subset.targets)
            losses.append(loss)
            accuracies.append(accuracy(logits, subset.targets))
        self.model.train()
        mean_loss = float(np.mean(losses))
        return {
            "loss": mean_loss,
            "accuracy": float(np.mean(accuracies)),
            "perplexity": perplexity(mean_loss),
        }


def train_baseline_and_compressed(
    model_factory,
    dataset,
    compressors: list[str],
    config: TrainerConfig,
    **trainer_kwargs,
) -> dict[str, TrainingRunResult]:
    """Train the same task once per compressor (plus the dense baseline).

    ``model_factory`` must build a freshly initialised (but identically seeded)
    model per run so every compressor starts from the same weights.
    """
    results: dict[str, TrainingRunResult] = {}
    for name in ["none", *compressors]:
        model = model_factory()
        trainer = DistributedTrainer(model, dataset, name, config, **trainer_kwargs)
        results[name] = trainer.run()
    return results
