"""Iteration-time model: compute + compression + communication.

The paper's speed-up and throughput numbers come from wall-clock iteration
times on real hardware; the simulator reconstructs them from three priced
components:

* ``compute``   — forward/backward time, a per-benchmark constant derived from
  Table 1's communication-overhead fraction (the fraction of the baseline
  iteration spent communicating),
* ``compression`` — the device cost model applied to the slowest worker's
  operation trace (workers compress in parallel, the ring waits for the last),
* ``communication`` — the network model applied to the gradient payload
  (dense all-reduce for the baseline, sparse all-gather otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compressors.base import CompressionResult
from ..perfmodel.costs import DeviceProfile
from ..tensor.sparse import FLOAT_BYTES
from .network import NetworkModel


@dataclass(frozen=True)
class IterationTiming:
    """Simulated duration of one synchronous training iteration (seconds)."""

    compute: float
    compression: float
    communication: float
    update: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.compression + self.communication + self.update


@dataclass(frozen=True)
class TimelineModel:
    """Prices one iteration of synchronous data-parallel training."""

    network: NetworkModel
    device: DeviceProfile
    compute_seconds: float
    num_workers: int
    model_dimension: int
    update_seconds: float = 0.0
    #: Scale factor mapping the proxy model's gradient dimension to the
    #: full-size model of Table 1 (wire volume and compression cost both scale
    #: linearly in the dimension).
    dimension_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_seconds < 0.0 or self.update_seconds < 0.0:
            raise ValueError("times must be non-negative")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.model_dimension < 1:
            raise ValueError("model_dimension must be >= 1")
        if self.dimension_scale <= 0.0:
            raise ValueError("dimension_scale must be positive")

    def baseline_iteration(self) -> IterationTiming:
        """Iteration timing with no compression (dense all-reduce)."""
        dense_bytes = self.model_dimension * self.dimension_scale * FLOAT_BYTES
        comm = self.network.allreduce_time(dense_bytes, self.num_workers)
        return IterationTiming(
            compute=self.compute_seconds,
            compression=0.0,
            communication=comm,
            update=self.update_seconds,
        )

    def compressed_iteration(self, worker_results: list[CompressionResult]) -> IterationTiming:
        """Iteration timing for a set of per-worker compression results.

        When every worker's result carries per-bucket payload sizes (the
        bucketed pipeline records them in ``metadata["bucket_payload_bytes"]``),
        communication is priced bucket by bucket: one all-gather per bucket,
        each bounded by the slowest worker's payload for that bucket.  This is
        how DDP-style stacks actually ship gradients, and it is the structure
        later compute/communication overlap modelling needs.
        """
        if not worker_results:
            raise ValueError("need at least one worker result")
        compression = max(self.device.trace_cost(self._scaled_ops(r)) for r in worker_results)
        bucket_times = self.bucket_communication_times(worker_results)
        if bucket_times is not None:
            comm = float(sum(bucket_times))
        else:
            payload = max(r.sparse.payload_bytes() for r in worker_results) * self.dimension_scale
            comm = self.network.allgather_time(payload, self.num_workers)
        return IterationTiming(
            compute=self.compute_seconds,
            compression=compression,
            communication=comm,
            update=self.update_seconds,
        )

    def bucket_communication_times(
        self, worker_results: list[CompressionResult]
    ) -> list[float] | None:
        """Per-bucket all-gather times, or ``None`` if the results are unbucketed.

        Bucket ``i`` of the synchronous all-gather completes when the slowest
        worker's bucket-``i`` payload has made it around the ring, so each
        bucket is priced at the per-bucket maximum across workers.
        """
        payload_lists = [r.metadata.get("bucket_payload_bytes") for r in worker_results]
        if any(p is None for p in payload_lists):
            return None
        if len({len(p) for p in payload_lists}) != 1:
            return None
        per_bucket_max = (max(worker[i] for worker in payload_lists) for i in range(len(payload_lists[0])))
        return [
            self.network.allgather_time(payload * self.dimension_scale, self.num_workers)
            for payload in per_bucket_max
        ]

    def _scaled_ops(self, result: CompressionResult):
        if self.dimension_scale == 1.0:
            return result.ops
        from ..perfmodel.costs import scale_ops

        return scale_ops(result.ops, self.dimension_scale)

    def communication_overhead_fraction(self) -> float:
        """Fraction of the baseline iteration spent communicating (Table 1's last column)."""
        baseline = self.baseline_iteration()
        if baseline.total == 0.0:
            return 0.0
        return baseline.communication / baseline.total


def compute_time_for_overhead(
    network: NetworkModel,
    num_workers: int,
    model_dimension: int,
    comm_overhead_fraction: float,
) -> float:
    """Back out the per-iteration compute time implied by a communication-overhead fraction.

    Table 1 reports, for each benchmark, the fraction of iteration time the
    baseline spends communicating.  Given the network model and model size,
    this returns the forward/backward compute time that produces that
    fraction — which is how the simulator matches each proxy benchmark's
    compute/communication balance to the paper's real one.
    """
    if not 0.0 < comm_overhead_fraction < 1.0:
        raise ValueError("comm_overhead_fraction must be in (0, 1)")
    dense_bytes = model_dimension * FLOAT_BYTES
    comm = network.allreduce_time(dense_bytes, num_workers)
    return comm * (1.0 - comm_overhead_fraction) / comm_overhead_fraction
