"""Iteration-time model: compute + compression + communication.

The paper's speed-up and throughput numbers come from wall-clock iteration
times on real hardware; the simulator reconstructs them from three priced
components:

* ``compute``   — forward/backward time, a per-benchmark constant derived from
  Table 1's communication-overhead fraction (the fraction of the baseline
  iteration spent communicating),
* ``compression`` — the device cost model applied to the slowest worker's
  operation trace (workers compress in parallel, the ring waits for the last),
* ``communication`` — the network model applied to the gradient payload
  (dense all-reduce for the baseline, sparse all-gather otherwise).

How the components compose is governed by the *overlap policy*.  The old
closed-form sum survives as ``overlap="none"``; with ``"comm"`` or
``"comm+compress"`` the iteration is priced by the event-driven schedule
simulator (:mod:`repro.distributed.schedule`), which overlaps bucket *i*'s
all-gather with bucket *i+1*'s compression (and, for ``"comm+compress"``, with
the tail of backpropagation) the way DDP/Horovod stacks actually run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..compressors.base import CompressionResult
from ..perfmodel.costs import DeviceProfile, distribute_cost
from ..tensor.sparse import FLOAT_BYTES, INDEX_BYTES
from .network import NetworkModel
from .schedule import (
    BucketTask,
    IterationSchedule,
    ScheduleArrays,
    ready_times_from_fractions,
    simulate_iteration,
    simulate_iteration_arrays,
    validate_cross_bucket,
    validate_overlap,
    validate_rate,
    validate_scheduler_backend,
)
from .topology import CollectiveCost, CollectiveModel, PhaseTable

#: One-shot-per-category guard so a long training run does not spam the
#: inconsistent-metadata warning every iteration, while a *different* kind of
#: misconfiguration later in the same process still warns.
_BUCKET_FALLBACK_WARNED: set[str] = set()


def _warn_bucket_fallback_once(category: str, reason: str) -> None:
    if category not in _BUCKET_FALLBACK_WARNED:
        warnings.warn(
            "falling back to single-payload all-gather pricing: " + reason,
            RuntimeWarning,
            stacklevel=3,
        )
        _BUCKET_FALLBACK_WARNED.add(category)


def reset_bucket_fallback_warnings() -> None:
    """Clear the warn-once guard so the next misconfiguration warns again.

    The guard is module-global process state: without a reset, a warning
    consumed (or swallowed) by one caller hides the same misconfiguration from
    every later caller in the process — including unrelated tests.  Test
    suites should call this between cases (the repo does so from an autouse
    fixture).
    """
    _BUCKET_FALLBACK_WARNED.clear()


def _payload_density(payload_bytes: float, dense_elements: float) -> float | None:
    """Non-zero fraction a sparse (index, value) payload covers of its dense span.

    Returns ``None`` (dedup unavailable) for empty payloads or unknown spans.
    """
    if payload_bytes <= 0.0 or dense_elements <= 0:
        return None
    elements = payload_bytes / (FLOAT_BYTES + INDEX_BYTES)
    return min(1.0, elements / dense_elements)


def _payload_weighted_dedup_ratio(bucket_costs: list["CollectiveCost"]) -> float:
    """Aggregate per-bucket dedup ratios, weighting each by its wire volume."""
    weights = [cost.volume_bytes for cost in bucket_costs]
    total = sum(weights)
    if total <= 0.0:
        return 1.0
    return float(sum(w * cost.dedup_ratio for w, cost in zip(weights, bucket_costs)) / total)


def _table_dedup_ratio(table: "PhaseTable") -> float:
    """:func:`_payload_weighted_dedup_ratio` over a batched phase table.

    Replays the per-cost arithmetic on the table's rows — Python sums in
    phase order, then the same weighted mean — so the result is bit-identical
    to pricing each bucket through :class:`CollectiveCost` objects.
    """
    weights = [sum(row) for row in table.volumes.tolist()]
    total = sum(weights)
    if total <= 0.0:
        return 1.0
    ratios = table.dedup_ratios.tolist()
    return float(sum(w * r for w, r in zip(weights, ratios)) / total)


def _bucket_layout(metadata: dict, num_buckets: int) -> tuple[list, list]:
    """Bucket sizes and gradient-ready fractions for scheduling, with fallbacks.

    Sizes fall back to an equal split when the layout is unknown; fractions
    fall back to reverse-order readiness derived from the sizes (backprop
    fills the flat gradient back-to-front, so bucket *i* is ready once all
    elements from its start offset onwards have gradients).
    """
    sizes = metadata.get("bucket_sizes")
    if sizes is None or len(sizes) != num_buckets:
        sizes = [1] * num_buckets  # equal split when the layout is unknown
    fractions = metadata.get("bucket_ready_fractions")
    if fractions is None or len(fractions) != num_buckets:
        total = float(sum(sizes))
        acc = 0.0
        fractions = []
        for size in sizes:
            fractions.append((total - acc) / total if total > 0.0 else 1.0)
            acc += size
    return sizes, fractions


def _comm_phase_entries(cost: "CollectiveCost") -> tuple[tuple, ...]:
    """Map a collective's phases onto placed :class:`BucketTask.comm_phases` entries.

    Every entry carries its explicit placement and link as ``(name, seconds,
    start, link)`` so :class:`~repro.distributed.schedule.PhaseEvent.link` is
    populated uniformly — serial phases get back-to-back cumulative starts
    (bit-identical to the tiled spans, since ``CollectiveCost.total``
    accumulates the same way), pipelined phases keep their scheduler
    placements with the chunk index folded into the name.
    """
    entries = []
    cursor = 0.0
    for phase in cost.phases:
        name = phase.name if phase.chunk is None else f"{phase.name}[c{phase.chunk}]"
        start = cursor if phase.start is None else phase.start
        entries.append((name, phase.seconds, start, phase.link))
        cursor = start + phase.seconds
    return tuple(entries)


@dataclass(frozen=True)
class IterationTiming:
    """Simulated duration of one synchronous training iteration (seconds).

    ``serialized`` is always the flat component sum; ``total`` is the
    critical-path time of the attached event schedule when an overlap policy
    produced one, and equals ``serialized`` otherwise.
    """

    compute: float
    compression: float
    communication: float
    update: float = 0.0
    overlap: str = "none"
    schedule: IterationSchedule | ScheduleArrays | None = None
    #: Payload-weighted achieved sparse-dedup ratio across the iteration's
    #: collectives (concatenated / deduplicated node-aggregate size); 1.0
    #: when no dedup model is configured or nothing could be deduplicated.
    dedup_ratio: float = 1.0
    #: True when the attached schedule placed buckets on per-link network
    #: lanes (cross-bucket pipelining) instead of one serial lane.
    cross_bucket_pipeline: bool = False

    @property
    def serialized(self) -> float:
        """The ``overlap="none"`` component sum."""
        return self.compute + self.compression + self.communication + self.update

    @property
    def total(self) -> float:
        if self.schedule is not None:
            return self.schedule.iteration_seconds
        return self.serialized

    @property
    def overlap_saving(self) -> float:
        """Fraction of the serialised iteration saved by overlapping."""
        if self.serialized <= 0.0:
            return 0.0
        return 1.0 - self.total / self.serialized


@dataclass(frozen=True)
class TimelineModel:
    """Prices one iteration of synchronous data-parallel training.

    Communication is priced by the collective-algorithm layer
    (:class:`~repro.distributed.topology.CollectiveModel`).  When no explicit
    ``collective`` is given, a degenerate single-level model over ``network``
    is built — which reproduces the pre-topology closed forms exactly.
    """

    network: NetworkModel
    device: DeviceProfile
    compute_seconds: float
    num_workers: int
    model_dimension: int
    update_seconds: float = 0.0
    #: Scale factor mapping the proxy model's gradient dimension to the
    #: full-size model of Table 1 (wire volume and compression cost both scale
    #: linearly in the dimension).
    dimension_scale: float = 1.0
    #: Default overlap policy for :meth:`compressed_iteration` — ``"none"``
    #: (serial closed-form sum), ``"comm"`` (communication overlaps
    #: compute/compression) or ``"comm+compress"`` (compression additionally
    #: overlaps backprop at per-bucket gradient-ready times).
    overlap: str = "none"
    #: Topology + collective algorithms pricing every collective.  ``None``
    #: builds the degenerate single-level model over ``network``.  When an
    #: explicit model is given it is the sole source of communication prices:
    #: ``network`` then only seeds helpers that predate the topology layer
    #: (e.g. :func:`compute_time_for_overhead`) and its links need not match
    #: the topology's.
    collective: CollectiveModel | None = None
    #: Schedule buckets on per-link network lanes so bucket *i+1*'s intra-node
    #: phase overlaps bucket *i*'s inter-node phase (see
    #: :func:`~repro.distributed.schedule.simulate_iteration`).  ``False``
    #: keeps the serial whole-occupancy network lane (the PR-4 scheduler,
    #: reproduced bit-for-bit).
    cross_bucket_pipeline: bool = False
    #: Scheduler implementation for bucketed iterations: ``"loop"`` runs the
    #: scalar reference simulator over per-bucket objects; ``"vectorized"``
    #: prices all buckets as one batched phase table and schedules them with
    #: :func:`~repro.distributed.schedule.simulate_iteration_arrays`.  The two
    #: produce bit-identical timings/schedules; ``"vectorized"`` silently
    #: defers to the loop whenever the batched contract cannot hold (mixed or
    #: unbucketed metadata, chunk pipelining, algorithms without batched
    #: pricing), so it is always safe to enable.
    scheduler_backend: str = "loop"

    def __post_init__(self) -> None:
        if self.compute_seconds < 0.0 or self.update_seconds < 0.0:
            raise ValueError("times must be non-negative")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.model_dimension < 1:
            raise ValueError("model_dimension must be >= 1")
        if self.dimension_scale <= 0.0:
            raise ValueError("dimension_scale must be positive")
        validate_overlap(self.overlap)
        validate_cross_bucket(self.cross_bucket_pipeline)
        validate_scheduler_backend(self.scheduler_backend)
        if self.collective is None:
            object.__setattr__(
                self, "collective", CollectiveModel.flat(self.network, self.num_workers)
            )
        elif self.collective.num_workers != self.num_workers:
            raise ValueError(
                f"collective topology has {self.collective.num_workers} workers "
                f"but the timeline models {self.num_workers}"
            )

    def baseline_iteration(
        self, *, compute_scale: float = 1.0, comm_scale: float = 1.0
    ) -> IterationTiming:
        """Iteration timing with no compression (dense all-reduce).

        The dense baseline ships one fused buffer, so there is no per-bucket
        structure to overlap and every policy prices it identically.

        ``compute_scale``/``comm_scale`` price the iteration at one worker's
        fault-layer lane rates (:mod:`repro.distributed.faults`).  1.0 is
        nominal, and multiplying by exactly 1.0 is an IEEE identity, so the
        default call is bit-for-bit the unscaled price.
        """
        compute_scale = validate_rate("compute_scale", compute_scale)
        comm_scale = validate_rate("comm_scale", comm_scale)
        dense_bytes = self.model_dimension * self.dimension_scale * FLOAT_BYTES
        comm = self.collective.allreduce_time(dense_bytes)
        return IterationTiming(
            compute=self.compute_seconds * compute_scale,
            compression=0.0,
            communication=comm * comm_scale,
            update=self.update_seconds * compute_scale,
        )

    def compressed_iteration(
        self,
        worker_results: list[CompressionResult],
        *,
        overlap: str | None = None,
        cross_bucket_pipeline: bool | None = None,
        compute_scale: float = 1.0,
        comm_scale: float = 1.0,
    ) -> IterationTiming:
        """Iteration timing for a set of per-worker compression results.

        When every worker's result carries per-bucket payload sizes (the
        bucketed pipeline records them in ``metadata["bucket_payload_bytes"]``),
        communication is priced bucket by bucket: one all-gather per bucket,
        each bounded by the slowest worker's payload for that bucket.  With an
        overlap policy other than ``"none"``, the per-bucket jobs are placed on
        compute/network lanes by the event-driven schedule simulator and
        ``total`` becomes the critical-path time; ``overlap="none"`` keeps the
        exact closed-form sum of the pre-schedule timeline.

        ``cross_bucket_pipeline`` overrides the model's default for this call:
        ``True`` schedules the buckets' per-link collective phases on
        independent fabric lanes so consecutive buckets overlap across links.

        ``compute_scale``/``comm_scale`` price the iteration at one worker's
        fault-layer lane rates: the compute lane (backprop, compression
        stream, update) is slowed by ``compute_scale`` and the network lane by
        ``comm_scale``, both in the reported components and inside the event
        schedule.  The nominal (1.0, 1.0) call is bit-for-bit the unscaled
        price (the schedulers skip their scaling branch and ``x * 1.0`` is an
        IEEE identity).
        """
        if not worker_results:
            raise ValueError("need at least one worker result")
        policy = validate_overlap(self.overlap if overlap is None else overlap)
        cross_bucket = (
            self.cross_bucket_pipeline if cross_bucket_pipeline is None else cross_bucket_pipeline
        )
        compute_scale = validate_rate("compute_scale", compute_scale)
        comm_scale = validate_rate("comm_scale", comm_scale)
        compression = max(self.device.trace_cost(self._scaled_ops(r)) for r in worker_results)
        if self.scheduler_backend == "vectorized":
            timing = self._vectorized_iteration(
                worker_results, compression, policy, cross_bucket, compute_scale, comm_scale
            )
            if timing is not None:
                return timing
        bucket_costs = self.bucket_communication_costs(worker_results)
        if bucket_costs is not None:
            comm = float(sum(cost.total for cost in bucket_costs))
            dedup_ratio = _payload_weighted_dedup_ratio(bucket_costs)
        else:
            slowest = max(worker_results, key=lambda r: r.sparse.payload_bytes())
            payload = slowest.sparse.payload_bytes() * self.dimension_scale
            cost = self.collective.allgather_cost(
                payload, density=slowest.sparse.density or None
            )
            comm = cost.total
            dedup_ratio = cost.dedup_ratio
        schedule = None
        if policy != "none" and bucket_costs is not None:
            schedule = self._bucket_schedule(
                worker_results[0].metadata,
                bucket_costs,
                compression,
                policy,
                cross_bucket,
                compute_scale=compute_scale,
                comm_scale=comm_scale,
            )
        return IterationTiming(
            compute=self.compute_seconds * compute_scale,
            compression=compression * compute_scale,
            communication=comm * comm_scale,
            update=self.update_seconds * compute_scale,
            overlap=policy,
            schedule=schedule,
            dedup_ratio=dedup_ratio,
            cross_bucket_pipeline=schedule.cross_bucket if schedule is not None else False,
        )

    def _vectorized_iteration(
        self,
        worker_results: list[CompressionResult],
        compression: float,
        policy: str,
        cross_bucket: bool,
        compute_scale: float = 1.0,
        comm_scale: float = 1.0,
    ) -> IterationTiming | None:
        """Batched-array pricing and scheduling; ``None`` defers to the loop path.

        Declines — returning ``None`` so the loop path (which owns the
        fallback warnings and single-payload pricing) handles the call —
        whenever the batched contract does not hold: unbucketed, mixed or
        count-mismatched worker metadata, an empty bucket list, or a
        collective that cannot price payload batches (chunk pipelining,
        algorithms without ``batched_allgather``).  When it does run, every
        number matches the loop path bit-for-bit: the batched phase table
        equals the per-bucket :class:`CollectiveCost` objects and the array
        scheduler replays the loop scheduler's arithmetic.
        """
        payload_lists = [r.metadata.get("bucket_payload_bytes") for r in worker_results]
        if any(p is None for p in payload_lists):
            return None
        if len({len(p) for p in payload_lists}) != 1:
            return None
        num_buckets = len(payload_lists[0])
        if num_buckets == 0:
            return None
        per_bucket = [max(worker[i] for worker in payload_lists) for i in range(num_buckets)]
        sizes = worker_results[0].metadata.get("bucket_sizes")
        if sizes is None or len(sizes) != num_buckets:
            sizes = [0] * num_buckets  # unknown layout: density (and dedup) unavailable
        densities = [_payload_density(payload, size) for payload, size in zip(per_bucket, sizes)]
        payloads = np.asarray(per_bucket, dtype=float) * self.dimension_scale
        table = self.collective.allgather_phase_table(payloads, densities)
        if table is None:
            return None
        communication = float(sum(table.totals.tolist()))
        dedup_ratio = _table_dedup_ratio(table)
        schedule = None
        if policy != "none":
            layout_sizes, fractions = _bucket_layout(worker_results[0].metadata, num_buckets)
            schedule = simulate_iteration_arrays(
                ready_seconds=ready_times_from_fractions(fractions, self.compute_seconds),
                compress_seconds=distribute_cost(compression, layout_sizes),
                phase_seconds=table.seconds,
                phase_names=table.names,
                phase_links=table.links,
                compute_seconds=self.compute_seconds,
                overlap=policy,
                update_seconds=self.update_seconds,
                cross_bucket_pipeline=cross_bucket,
                compute_scale=compute_scale,
                comm_scale=comm_scale,
            )
        return IterationTiming(
            compute=self.compute_seconds * compute_scale,
            compression=compression * compute_scale,
            communication=communication * comm_scale,
            update=self.update_seconds * compute_scale,
            overlap=policy,
            schedule=schedule,
            dedup_ratio=dedup_ratio,
            cross_bucket_pipeline=schedule.cross_bucket if schedule is not None else False,
        )

    def schedule_iteration(
        self,
        worker_results: list[CompressionResult],
        *,
        compression_seconds: float | None = None,
        overlap: str | None = None,
        cross_bucket_pipeline: bool | None = None,
    ) -> IterationSchedule | ScheduleArrays:
        """Build just the iteration schedule for bucketed worker results.

        This is the scheduler hot path the throughput benchmark times:
        pricing the per-bucket collectives and placing them on the lanes,
        routed by ``scheduler_backend``.  ``compression_seconds`` may be
        passed precomputed (e.g. once per sweep) to keep device-model pricing
        out of the timed region.  Raises for ``overlap="none"`` (no schedule
        exists there) and for unbucketed worker results.
        """
        if not worker_results:
            raise ValueError("need at least one worker result")
        policy = validate_overlap(self.overlap if overlap is None else overlap)
        if policy == "none":
            raise ValueError(
                'overlap="none" builds no schedule; use compressed_iteration for the flat sum'
            )
        cross_bucket = (
            self.cross_bucket_pipeline if cross_bucket_pipeline is None else cross_bucket_pipeline
        )
        if compression_seconds is None:
            compression_seconds = max(
                self.device.trace_cost(self._scaled_ops(r)) for r in worker_results
            )
        if self.scheduler_backend == "vectorized":
            timing = self._vectorized_iteration(
                worker_results, compression_seconds, policy, cross_bucket
            )
            if timing is not None and timing.schedule is not None:
                return timing.schedule
        bucket_costs = self.bucket_communication_costs(worker_results)
        if bucket_costs is None:
            raise ValueError("worker results carry no per-bucket payloads; nothing to schedule")
        return self._bucket_schedule(
            worker_results[0].metadata, bucket_costs, compression_seconds, policy, cross_bucket
        )

    def _bucket_schedule(
        self,
        metadata: dict,
        bucket_costs: list[CollectiveCost],
        compression_seconds: float,
        policy: str,
        cross_bucket_pipeline: bool = False,
        *,
        compute_scale: float = 1.0,
        comm_scale: float = 1.0,
    ) -> IterationSchedule:
        """Place per-bucket compress/all-gather jobs on the event timeline."""
        num_buckets = len(bucket_costs)
        sizes, fractions = _bucket_layout(metadata, num_buckets)
        compress_seconds = distribute_cost(compression_seconds, sizes)
        ready_seconds = ready_times_from_fractions(fractions, self.compute_seconds)
        tasks = [
            BucketTask(
                index=i,
                ready_seconds=ready_seconds[i],
                compress_seconds=float(compress_seconds[i]),
                comm_seconds=float(bucket_costs[i].total),
                comm_phases=_comm_phase_entries(bucket_costs[i]),
            )
            for i in range(num_buckets)
        ]
        return simulate_iteration(
            tasks,
            compute_seconds=self.compute_seconds,
            overlap=policy,
            update_seconds=self.update_seconds,
            cross_bucket_pipeline=cross_bucket_pipeline,
            compute_scale=compute_scale,
            comm_scale=comm_scale,
        )

    def bucket_communication_times(
        self, worker_results: list[CompressionResult]
    ) -> list[float] | None:
        """Per-bucket all-gather times, or ``None`` if the results are unbucketed."""
        costs = self.bucket_communication_costs(worker_results)
        if costs is None:
            return None
        return [cost.total for cost in costs]

    def bucket_communication_costs(
        self, worker_results: list[CompressionResult]
    ) -> list[CollectiveCost] | None:
        """Per-bucket all-gather cost breakdowns, or ``None`` if the results are unbucketed.

        Bucket ``i`` of the synchronous all-gather completes when the slowest
        worker's bucket-``i`` payload has made it around the ring, so each
        bucket is priced at the per-bucket maximum across workers.

        All workers compress replicas of the same gradient, so their results
        must agree on the bucket structure: a mix of bucketed and unbucketed
        results, or differing bucket counts, indicates a mis-assembled worker
        pool — those fall back to single-payload pricing with a one-time
        :class:`RuntimeWarning` instead of silently under-pricing.
        """
        payload_lists = [r.metadata.get("bucket_payload_bytes") for r in worker_results]
        missing = sum(p is None for p in payload_lists)
        if missing == len(payload_lists):
            return None  # plain unbucketed compressors: nothing to warn about
        if missing:
            _warn_bucket_fallback_once(
                "mixed",
                f"{missing}/{len(payload_lists)} worker results lack "
                "metadata['bucket_payload_bytes'] (mixed bucketed/unbucketed workers)",
            )
            return None
        if len({len(p) for p in payload_lists}) != 1:
            _warn_bucket_fallback_once(
                "mismatch",
                "worker results disagree on the number of buckets: "
                f"{sorted({len(p) for p in payload_lists})}",
            )
            return None
        num_buckets = len(payload_lists[0])
        per_bucket_max = [max(worker[i] for worker in payload_lists) for i in range(num_buckets)]
        # Per-bucket payload density feeds the sparse-dedup model: the
        # dimension scale multiplies payloads and bucket sizes alike, so the
        # density is scale-free and computed from the proxy-sized metadata.
        sizes = worker_results[0].metadata.get("bucket_sizes")
        if sizes is None or len(sizes) != num_buckets:
            sizes = [0] * num_buckets  # unknown layout: density (and dedup) unavailable
        return [
            self.collective.allgather_cost(
                payload * self.dimension_scale,
                density=_payload_density(payload, size),
            )
            for payload, size in zip(per_bucket_max, sizes)
        ]

    def _scaled_ops(self, result: CompressionResult):
        if self.dimension_scale == 1.0:
            return result.ops
        from ..perfmodel.costs import scale_ops

        return scale_ops(result.ops, self.dimension_scale)

    def communication_overhead_fraction(self) -> float:
        """Fraction of the baseline iteration spent communicating (Table 1's last column)."""
        baseline = self.baseline_iteration()
        if baseline.total == 0.0:
            return 0.0
        return baseline.communication / baseline.total


def compute_time_for_overhead(
    network: NetworkModel,
    num_workers: int,
    model_dimension: int,
    comm_overhead_fraction: float,
) -> float:
    """Back out the per-iteration compute time implied by a communication-overhead fraction.

    Table 1 reports, for each benchmark, the fraction of iteration time the
    baseline spends communicating.  Given the network model and model size,
    this returns the forward/backward compute time that produces that
    fraction — which is how the simulator matches each proxy benchmark's
    compute/communication balance to the paper's real one.
    """
    if not 0.0 < comm_overhead_fraction < 1.0:
        raise ValueError("comm_overhead_fraction must be in (0, 1)")
    dense_bytes = model_dimension * FLOAT_BYTES
    comm = network.allreduce_time(dense_bytes, num_workers)
    return comm * (1.0 - comm_overhead_fraction) / comm_overhead_fraction
